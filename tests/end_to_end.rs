//! End-to-end integration tests: the full MESA pipeline over the generated
//! datasets and knowledge graph, checked against the ground truth of the
//! world model.

use mesa_repro::datagen::{build_kg, generate_covid, generate_so, KgConfig, World, WorldConfig};
use mesa_repro::mesa::{Mesa, MesaConfig, SubgroupConfig};
use mesa_repro::tabular::{AggregateQuery, Predicate};

fn small_world() -> (World, mesa_repro::kg::KnowledgeGraph) {
    let world = World::generate(WorldConfig {
        n_countries: 80,
        n_cities: 30,
        n_airlines: 8,
        n_celebrities: 100,
        seed: 17,
    });
    // No random sparsity here: these tests check the explanation logic, the
    // missing-data path has its own integration test.
    let graph = build_kg(
        &world,
        KgConfig {
            random_missing: 0.02,
            biased_missing: 0.1,
            ..Default::default()
        },
    );
    (world, graph)
}

#[test]
fn covid_deaths_explained_by_economy_and_density() {
    let (world, graph) = small_world();
    let covid = generate_covid(&world, 3).unwrap();
    let query = AggregateQuery::avg("Country", "Deaths_per_100_cases");
    let mesa = Mesa::new();
    let report = mesa
        .explain(&covid, &query, Some(&graph), &["Country"])
        .unwrap();

    assert!(
        !report.explanation.is_empty(),
        "MESA should find an explanation for the Covid query"
    );
    // The death rate is generated from health quality (tracked by HDI / GDP /
    // Gini) and density; the explanation should name at least one of them.
    let plausible = ["HDI", "GDP", "Gini", "Density", "Population"];
    assert!(
        report
            .explanation
            .attributes
            .iter()
            .any(|a| plausible.iter().any(|p| a.contains(p))),
        "unexpected explanation: {:?}",
        report.explanation.attributes
    );
    // And it should actually reduce the correlation.
    assert!(report.explanation.explainability < report.explanation.baseline_cmi);
    // Key-like and constant KG attributes never survive.
    for a in &report.explanation.attributes {
        assert!(!a.contains("wikiID") && !a.contains("country code") && a != "type");
    }
}

#[test]
fn so_salaries_use_kg_attributes_and_beat_table_only() {
    let (world, graph) = small_world();
    let so = generate_so(&world, 4_000, 5).unwrap();
    let query = AggregateQuery::avg("Country", "Salary");
    let mesa = Mesa::new();

    let with_kg = mesa
        .explain(&so, &query, Some(&graph), &["Country"])
        .unwrap();
    let table_only = mesa.explain(&so, &query, None, &[]).unwrap();

    assert!(
        with_kg.n_extracted > 10,
        "KG extraction should add many candidates"
    );
    // With the KG the correlation must be substantially explained; the
    // table-only run has no access to the economic drivers, so it serves as a
    // sanity reference rather than a strict bound (plug-in CMI estimates are
    // not comparable across explanations of different sizes).
    assert!(
        with_kg.explanation.explainability < with_kg.explanation.baseline_cmi * 0.7,
        "KG-backed explanation should remove most of the correlation: {} -> {} (table-only: {})",
        with_kg.explanation.baseline_cmi,
        with_kg.explanation.explainability,
        table_only.explanation.explainability
    );
    // The explanation should include a KG-extracted attribute (salary is
    // driven by country economics, which only the KG knows).
    // Currency counts as economic: in the generated world the Euro is shared
    // exactly by the wealthy European countries, so it proxies GDP/HDI.
    assert!(
        with_kg
            .explanation
            .attributes
            .iter()
            .any(|a| ["GDP", "Gini", "HDI", "Currency"]
                .iter()
                .any(|p| a.contains(p))),
        "expected an economic attribute, got {:?}",
        with_kg.explanation.attributes
    );
}

#[test]
fn responsibilities_are_normalised_and_ranked() {
    let (world, graph) = small_world();
    let so = generate_so(&world, 3_000, 6).unwrap();
    let query = AggregateQuery::avg("Country", "Salary");
    let mesa = Mesa::new();
    let report = mesa
        .explain(&so, &query, Some(&graph), &["Country"])
        .unwrap();
    let e = &report.explanation;
    if e.len() >= 2 {
        let sum: f64 = e.responsibilities.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-6,
            "responsibilities must sum to 1, got {sum}"
        );
        let ranked = e.ranked_attributes();
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}

#[test]
fn context_refinement_changes_the_explanation_requirement() {
    let (world, graph) = small_world();
    let so = generate_so(&world, 4_000, 8).unwrap();
    let mesa = Mesa::new();

    // Global query and its restriction to Europe (SO Q1 vs SO Q3).
    let q_global = AggregateQuery::avg("Country", "Salary");
    let q_europe = q_global
        .clone()
        .with_context(Predicate::eq("Continent", "Europe"));
    let global = mesa
        .explain(&so, &q_global, Some(&graph), &["Country"])
        .unwrap();
    let europe = mesa
        .explain(&so, &q_europe, Some(&graph), &["Country"])
        .unwrap();
    // Both runs must succeed and produce valid reports; the European context
    // has fewer rows and a different correlation to explain.
    assert!(europe.explanation.baseline_cmi >= 0.0);
    assert!(global.explanation.baseline_cmi > 0.0);
}

#[test]
fn unexplained_subgroups_run_on_so_query() {
    let (world, graph) = small_world();
    let so = generate_so(&world, 4_000, 9).unwrap();
    let query = AggregateQuery::avg("Country", "Salary");
    let mesa = Mesa::new();
    let prepared = mesa
        .prepare(&so, &query, Some(&graph), &["Country"])
        .unwrap();
    let report = mesa.explain_prepared(&prepared).unwrap();
    let groups = mesa
        .unexplained_subgroups(
            &prepared,
            &report.explanation,
            &SubgroupConfig {
                top_k: 5,
                tau: 0.2,
                min_group_size: 50,
                ..Default::default()
            },
        )
        .unwrap();
    // The groups, if any, must be ordered by size and above the threshold.
    for w in groups.windows(2) {
        assert!(w[0].size >= w[1].size);
    }
    for g in &groups {
        assert!(g.score > 0.2);
        assert!(g.size >= 50);
    }
}

#[test]
fn mesa_minus_matches_mesa_quality_with_more_work() {
    let (world, graph) = small_world();
    let covid = generate_covid(&world, 4).unwrap();
    let query = AggregateQuery::avg("Country", "Deaths_per_100_cases");

    let mesa = Mesa::new();
    let minus = Mesa::with_config(MesaConfig::mesa_minus());
    let a = mesa
        .explain(&covid, &query, Some(&graph), &["Country"])
        .unwrap();
    let b = minus
        .explain(&covid, &query, Some(&graph), &["Country"])
        .unwrap();
    // Pruning must not change the explanation quality much (paper §5.1) ...
    assert!((a.explanation.explainability - b.explanation.explainability).abs() < 0.4);
    // ... while MESA- evaluates every candidate (no pruning).
    assert!(b.pruning.dropped.is_empty());
    assert!(!a.pruning.dropped.is_empty());
}
