//! Session cache semantics over the generated datasets: the warm (cached)
//! and batched paths must be byte-identical to the cold one-shot path, and
//! cache keys must never alias across hops / one-to-many policies / queries.

use std::sync::Arc;

use mesa_repro::datagen::{
    build_kg, generate_covid, generate_so, representative_queries_for, Dataset, KgConfig, World,
    WorldConfig,
};
use mesa_repro::kg::{KnowledgeGraph, OneToManyAgg};
use mesa_repro::mesa::{report_summary, Mesa, MesaConfig, MesaReport, PrepareConfig};
use mesa_repro::tabular::{AggregateQuery, DataFrame, Predicate};

fn fixture() -> (DataFrame, DataFrame, KnowledgeGraph) {
    let world = World::generate(WorldConfig {
        n_countries: 60,
        n_cities: 25,
        n_airlines: 6,
        n_celebrities: 80,
        seed: 23,
    });
    let graph = build_kg(&world, KgConfig::default());
    let covid = generate_covid(&world, 3).unwrap();
    let so = generate_so(&world, 2_500, 3).unwrap();
    (covid, so, graph)
}

/// Exact rendering of everything a caller can observe about a report: the
/// human summary plus the full-precision explanation (Debug renders every
/// f64 bit-exactly).
fn render(report: &MesaReport) -> String {
    format!("{}\n{:?}", report_summary(report), report.explanation)
}

#[test]
fn warm_explain_is_byte_identical_to_cold() {
    let (covid, so, graph) = fixture();
    let mesa = Mesa::new();
    let covid_queries: Vec<AggregateQuery> = representative_queries_for(Dataset::Covid)
        .into_iter()
        .map(|wq| wq.query)
        .collect();
    let so_queries = vec![
        AggregateQuery::avg("Country", "Salary"),
        AggregateQuery::avg("Continent", "Salary"),
        AggregateQuery::avg("Country", "Salary").with_context(Predicate::eq("Continent", "Europe")),
    ];
    for (df, cols, queries) in [
        (&covid, &["Country"][..], &covid_queries),
        (&so, &["Country", "Continent"][..], &so_queries),
    ] {
        let session = mesa.session(df, Some(&graph), cols);
        for q in queries {
            // cold: a fresh one-shot pipeline per call
            let cold = mesa.explain(df, q, Some(&graph), cols).unwrap();
            // session-cold: first time this session sees the query (the
            // extraction cache may already be warm from earlier queries)
            let first = session.explain(q).unwrap();
            // warm: served from the report memo
            let warm = session.explain(q).unwrap();
            assert_eq!(render(&cold), render(&first), "session-cold differs: {q}");
            assert_eq!(render(&first), render(&warm), "warm differs: {q}");
            assert_eq!(cold.explanation, first.explanation, "{q}");
        }
        // the SO workload shares extraction across its trivial-context
        // queries, so at least one lookup must have been served from cache
        let stats = session.stats();
        assert_eq!(stats.report_misses, queries.len());
        assert_eq!(stats.report_hits, queries.len());
    }
}

#[test]
fn explain_many_is_byte_identical_to_sequential_explain() {
    let (covid, _, graph) = fixture();
    let queries: Vec<AggregateQuery> = representative_queries_for(Dataset::Covid)
        .into_iter()
        .map(|wq| wq.query)
        .collect();
    let mesa = Mesa::new();

    // sequential on one session
    let sequential = mesa.session(&covid, Some(&graph), &["Country"]);
    let seq: Vec<Arc<MesaReport>> = queries
        .iter()
        .map(|q| sequential.explain(q).unwrap())
        .collect();

    // batched on a fresh (cold) session
    let batched_session = mesa.session(&covid, Some(&graph), &["Country"]);
    let batched = batched_session.explain_many(&queries);
    for (s, b) in seq.iter().zip(&batched) {
        let b = b.as_ref().unwrap();
        assert_eq!(render(s), render(b));
    }

    // batched again on the now-warm session: every report comes from the memo
    let warm = batched_session.explain_many(&queries);
    for (b, w) in batched.iter().zip(&warm) {
        assert!(Arc::ptr_eq(b.as_ref().unwrap(), w.as_ref().unwrap()));
    }
    assert_eq!(batched_session.stats().report_misses, queries.len());
}

#[test]
fn cache_keys_do_not_alias_across_hops_policy_or_query() {
    let (covid, _, graph) = fixture();
    let q = AggregateQuery::avg("Country", "Deaths_per_100_cases");

    let config_for = |hops: usize, agg: OneToManyAgg| MesaConfig {
        prepare: PrepareConfig {
            extraction: mesa_repro::kg::ExtractionConfig {
                hops,
                one_to_many: agg,
            },
            ..PrepareConfig::default()
        },
        ..MesaConfig::default()
    };

    // Each configuration must reproduce its own cold path exactly — a session
    // warmed under one config can never leak another config's extraction.
    for (hops, agg) in [
        (1, OneToManyAgg::Mean),
        (2, OneToManyAgg::Mean),
        (2, OneToManyAgg::Count),
    ] {
        let config = config_for(hops, agg);
        let mesa = Mesa::with_config(config);
        let session = mesa.session(&covid, Some(&graph), &["Country"]);
        let warm_prep = session.prepare(&q).unwrap();
        let cold_prep = mesa
            .prepare(&covid, &q, Some(&graph), &["Country"])
            .unwrap();
        assert_eq!(
            warm_prep.candidates, cold_prep.candidates,
            "hops={hops} agg={agg:?}"
        );
        assert_eq!(warm_prep.extracted, cold_prep.extracted);
        let warm = session.explain(&q).unwrap();
        let cold = mesa
            .explain(&covid, &q, Some(&graph), &["Country"])
            .unwrap();
        assert_eq!(render(&warm), render(&cold), "hops={hops} agg={agg:?}");
    }

    // Multi-hop extraction sees strictly more attributes than single-hop —
    // if the keys aliased, the two would collapse to whichever ran first.
    let one_hop = Mesa::with_config(config_for(1, OneToManyAgg::Mean));
    let two_hop = Mesa::with_config(config_for(2, OneToManyAgg::Mean));
    let s1 = one_hop.session(&covid, Some(&graph), &["Country"]);
    let s2 = two_hop.session(&covid, Some(&graph), &["Country"]);
    let p1 = s1.prepare(&q).unwrap();
    let p2 = s2.prepare(&q).unwrap();
    assert!(
        p2.extracted.len() > p1.extracted.len(),
        "2-hop ({}) should extract more than 1-hop ({})",
        p2.extracted.len(),
        p1.extracted.len()
    );

    // Distinct queries over one session stay distinct entries in the memo.
    let mesa = Mesa::new();
    let session = mesa.session(&covid, Some(&graph), &["Country"]);
    let q_europe = q
        .clone()
        .with_context(Predicate::eq("WHO-Region", "Europe"));
    let all = session.explain(&q).unwrap();
    let europe = session.explain(&q_europe).unwrap();
    assert_ne!(render(&all), render(&europe));
    let stats = session.stats();
    assert_eq!(stats.report_misses, 2);
    assert_eq!(stats.report_hits, 0);
}
