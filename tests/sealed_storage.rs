//! Property tests for the sealed column storage layer: `seal → view/decode`
//! must reproduce the mutable column exactly for every encoding and null
//! pattern, and the run-aware kernel paths must produce **bit-identical**
//! estimates to the dense reference oracle — on shuffled (bitpacked-leaning)
//! and adversarially runny (RLE-leaning) inputs alike.

use proptest::prelude::*;

use mesa_repro::infotheory::{
    conditional_mutual_information, conditional_mutual_information_views, entropy, entropy_view,
    mutual_information, mutual_information_views, JointTable,
};
use mesa_repro::tabular::{ColumnView, EncodedColumn, Encoding};

/// Strategy: per-row cells with `0` = missing and `v >= 1` = code `v - 1`
/// (same convention as `tests/kernel_equivalence.rs`).
fn cells(len: usize, card: u32) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0..=card, len)
}

/// Expands `(value, length)` pairs into adversarially runny cells — few long
/// runs of one value each, still covering nulls (`0`). The two vectors come
/// from independent strategies (the vendored proptest has no tuple strategy);
/// the shorter one bounds the number of runs.
fn expand_runs(vals: &[u32], lens: &[usize]) -> Vec<u32> {
    vals.iter()
        .zip(lens)
        .flat_map(|(&v, &n)| std::iter::repeat_n(v, n))
        .collect()
}

fn to_column(cells: &[u32], card: u32) -> EncodedColumn {
    let labels = (0..card.max(1)).map(|c| format!("v{c}")).collect();
    EncodedColumn::from_option_codes(cells.iter().map(|&v| v.checked_sub(1)), labels)
}

/// Asserts every observable of the sealed column matches the mutable one:
/// whole-column decode, per-row random access, and the run view.
fn assert_seal_round_trip(col: &EncodedColumn) {
    let sealed = col.seal();
    assert_eq!(sealed.len(), col.len());
    assert_eq!(sealed.cardinality(), col.cardinality());
    assert_eq!(sealed.null_count(), col.null_count());
    assert_eq!(&sealed.decode(), col, "decode() must round-trip exactly");
    for i in 0..col.len() {
        assert_eq!(sealed.code_at(i), col.code_at(i), "row {i}");
        assert_eq!(sealed.is_present(i), col.is_present(i), "row {i}");
    }
    // The run view must partition the column and agree with the raw codes
    // (code slots under nulls included — sealing preserves them).
    let mut pos = 0usize;
    for run in sealed.runs() {
        assert_eq!(run.start, pos, "runs must partition the column");
        assert!(run.end > run.start);
        for i in run.start..run.end {
            assert_eq!(col.codes()[i], run.value);
        }
        pos = run.end;
    }
    assert_eq!(pos, col.len());
}

/// Compares plain-vs-sealed estimates bit-for-bit at both kernel layouts
/// (dense mixed-radix and sparse hash), weighted and unweighted.
fn assert_bitwise_kernel_parity(cols: &[&EncodedColumn], weights: Option<&[f64]>) {
    let sealed: Vec<_> = cols.iter().map(|c| c.seal()).collect();
    let plain: Vec<ColumnView<'_>> = cols.iter().map(|&c| c.into()).collect();
    let views: Vec<ColumnView<'_>> = sealed.iter().map(ColumnView::from).collect();
    for dense_cells in [1usize << 20, 0] {
        let reference = JointTable::build_views_with_threshold(&plain, weights, dense_cells);
        let run_aware = JointTable::build_views_with_threshold(&views, weights, dense_cells);
        assert_eq!(reference.complete_cases(), run_aware.complete_cases());
        assert_eq!(reference.n_cells(), run_aware.n_cells());
        assert_eq!(reference.total().to_bits(), run_aware.total().to_bits());
        assert_eq!(reference.entropy().to_bits(), run_aware.entropy().to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random (shuffled-leaning) columns round-trip through seal/view.
    #[test]
    fn seal_round_trips_random_columns(xs in cells(90, 6)) {
        assert_seal_round_trip(&to_column(&xs, 6));
    }

    /// Adversarially runny columns round-trip through seal/view.
    #[test]
    fn seal_round_trips_runny_columns(
        vals in prop::collection::vec(0u32..=4, 1..12),
        lens in prop::collection::vec(1usize..40, 1..12),
    ) {
        let xs = expand_runs(&vals, &lens);
        assert_seal_round_trip(&to_column(&xs, 4));
    }

    /// Sorted fully-observed integer keys round-trip (the delta encoding).
    #[test]
    fn seal_round_trips_sorted_keys(ks in prop::collection::vec(0u32..5000, 1..120)) {
        let mut ks = ks.clone();
        ks.sort_unstable();
        let card = ks.last().copied().unwrap_or(0) + 1;
        let labels = (0..card).map(|c| c.to_string()).collect();
        let col = EncodedColumn::from_codes(ks, labels);
        let sealed = col.seal();
        // Non-decreasing fully observed keys must pick a run-iterable or
        // packed layout, never fall back to dense (beyond trivial columns).
        if col.len() > 8 {
            prop_assert!(sealed.encoding() != Encoding::Dense);
        }
        assert_seal_round_trip(&col);
    }

    /// Kernel parity on random columns: dense oracle vs run-aware fold,
    /// unweighted, both table layouts, bit-identical.
    #[test]
    fn sealed_kernel_matches_oracle_random(
        xs in cells(80, 5),
        ys in cells(80, 3),
    ) {
        let x = to_column(&xs, 5);
        let y = to_column(&ys, 3);
        assert_bitwise_kernel_parity(&[&x, &y], None);
    }

    /// Kernel parity on adversarially runny columns (RLE-heavy, unequal run
    /// boundaries between the two columns), weighted with zeros included.
    #[test]
    fn sealed_kernel_matches_oracle_runny(
        xvals in prop::collection::vec(0u32..=4, 1..10),
        xlens in prop::collection::vec(1usize..40, 1..10),
        yvals in prop::collection::vec(0u32..=3, 1..10),
        ylens in prop::collection::vec(1usize..40, 1..10),
    ) {
        let xs = expand_runs(&xvals, &xlens);
        let ys = expand_runs(&yvals, &ylens);
        let n = xs.len().min(ys.len());
        let x = to_column(&xs[..n], 4);
        let y = to_column(&ys[..n], 3);
        assert_bitwise_kernel_parity(&[&x, &y], None);
        let w: Vec<f64> = (0..n).map(|i| (i % 5) as f64 * 0.5).collect();
        assert_bitwise_kernel_parity(&[&x, &y], Some(&w));
    }

    /// Measure-level bit identity: entropy, MI, and CMI computed through
    /// sealed views equal the mutable-column estimates bit for bit.
    #[test]
    fn sealed_measures_are_bit_identical(
        xs in cells(70, 4),
        yvals in prop::collection::vec(0u32..=3, 1..9),
        ylens in prop::collection::vec(1usize..40, 1..9),
        zs in cells(70, 2),
    ) {
        let ys = expand_runs(&yvals, &ylens);
        let n = xs.len().min(ys.len()).min(zs.len());
        let x = to_column(&xs[..n], 4);
        let y = to_column(&ys[..n], 3);
        let z = to_column(&zs[..n], 2);
        let (sx, sy, sz) = (x.seal(), y.seal(), z.seal());
        prop_assert_eq!(
            entropy(&x, None).to_bits(),
            entropy_view(ColumnView::from(&sx), None).to_bits()
        );
        prop_assert_eq!(
            mutual_information(&x, &y, None).to_bits(),
            mutual_information_views((&sx).into(), (&sy).into(), None).to_bits()
        );
        prop_assert_eq!(
            conditional_mutual_information(&x, &y, &[&z], None).to_bits(),
            conditional_mutual_information_views(
                (&sx).into(),
                (&sy).into(),
                &[(&sz).into()],
                None
            )
            .to_bits()
        );
    }

    /// Mixed lifecycle states in one table (sealed exposure, mutable outcome)
    /// still match the all-mutable oracle bit for bit.
    #[test]
    fn mixed_states_match_oracle(
        xvals in prop::collection::vec(0u32..=3, 1..8),
        xlens in prop::collection::vec(1usize..40, 1..8),
        ys in cells(60, 4),
    ) {
        let xs = expand_runs(&xvals, &xlens);
        let n = xs.len().min(ys.len());
        let x = to_column(&xs[..n], 3);
        let y = to_column(&ys[..n], 4);
        let sx = x.seal();
        for dense_cells in [1usize << 20, 0] {
            let oracle =
                JointTable::build_views_with_threshold(&[(&x).into(), (&y).into()], None, dense_cells);
            let mixed =
                JointTable::build_views_with_threshold(&[(&sx).into(), (&y).into()], None, dense_cells);
            prop_assert_eq!(oracle.complete_cases(), mixed.complete_cases());
            prop_assert_eq!(oracle.entropy().to_bits(), mixed.entropy().to_bits());
        }
    }

    /// Footprint sanity: sealing never increases the code payload, and runny
    /// columns compress.
    #[test]
    fn sealing_never_grows_the_payload(
        vals in prop::collection::vec(0u32..=3, 1..6),
        lens in prop::collection::vec(1usize..40, 1..6),
    ) {
        let xs = expand_runs(&vals, &lens);
        let col = to_column(&xs, 3);
        let sealed = col.seal();
        let choice = sealed.choice();
        prop_assert!(choice.sealed_bytes <= choice.dense_bytes);
        if col.len() >= 64 {
            // six runs over 64+ rows must beat 4 bytes/row handily
            prop_assert!(choice.sealed_bytes * 2 <= choice.dense_bytes);
        }
    }
}
