//! Golden tests for KG attribute extraction.
//!
//! The interned/CSR extraction path (PR 3) must produce the *same bytes* as
//! the seed's string-keyed implementation: identical universal relations
//! (column names, row order, cell values down to the float bit pattern) and
//! identical [`kg::ExtractionStats`] on the Stack Overflow, Flights, and
//! Forbes quick fixtures, at 1 and 2 hops.
//!
//! The canonical dumps under `tests/golden/` were generated from the seed
//! implementation (commit 2b7bbc1). Regenerate with
//! `MESA_REGEN_GOLDEN=1 cargo test --test extraction_golden` — but only do
//! that deliberately: the whole point of the files is that they pre-date the
//! interned rewrite.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::OnceLock;

use bench::{ExperimentData, Scale};
use datagen::Dataset;
use kg::{extract_attributes, ExtractionConfig};
use tabular::Value;

fn fixture() -> &'static ExperimentData {
    static DATA: OnceLock<ExperimentData> = OnceLock::new();
    DATA.get_or_init(|| ExperimentData::generate(Scale::Quick))
}

/// Renders a cell so that equal bytes imply equal values, including the
/// exact bit pattern of floats (`Display` would round).
fn render_cell(v: &Value) -> String {
    match v {
        Value::Null => "∅".to_string(),
        Value::Int(i) => format!("i:{i}"),
        Value::Float(f) => format!("f:{:016x}", f.to_bits()),
        Value::Bool(b) => format!("b:{b}"),
        Value::Str(s) => format!("s:{s}"),
    }
}

/// Canonical dump of one extraction run: stats, column names, then every row.
fn dump_extraction(data: &ExperimentData, dataset: Dataset, hops: usize) -> String {
    let frame = data.frame(dataset);
    let mut out = String::new();
    for col in dataset.extraction_columns() {
        let values = frame.column(col).expect("column exists").encode();
        let values = values.labels();
        let config = ExtractionConfig {
            hops,
            ..Default::default()
        };
        let res = extract_attributes(&data.graph, values, "key", config).expect("extraction");
        let s = &res.stats;
        writeln!(
            out,
            "== {} / {col} / hops={hops} ==\nstats n_values={} n_linked={} n_ambiguous={} n_not_found={} n_attributes={}",
            dataset.name(),
            s.n_values,
            s.n_linked,
            s.n_ambiguous,
            s.n_not_found,
            s.n_attributes
        )
        .unwrap();
        let names = res.table.column_names();
        writeln!(out, "columns\t{}", names.join("\t")).unwrap();
        for row in 0..res.table.n_rows() {
            let cells: Vec<String> = names
                .iter()
                .map(|n| render_cell(&res.table.get(row, n).expect("cell")))
                .collect();
            writeln!(out, "{row}\t{}", cells.join("\t")).unwrap();
        }
    }
    out
}

/// FNV-1a 64-bit over the canonical dump; the golden files store the digest
/// plus the full stats/column header so mismatches are still diagnosable.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn golden_path(dataset: Dataset, hops: usize) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!(
            "extraction_{}_h{hops}.txt",
            dataset.name().replace('-', "")
        ))
}

/// The committed artifact: header section (everything before the first row
/// line of each block) in the clear, plus the digest of the full dump.
fn golden_body(dump: &str) -> String {
    let mut out = format!("fnv1a64 {:016x}\n", fnv1a(dump.as_bytes()));
    for line in dump.lines() {
        if line.starts_with("==") || line.starts_with("stats") || line.starts_with("columns") {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

fn check(dataset: Dataset, hops: usize) {
    let dump = dump_extraction(fixture(), dataset, hops);
    let body = golden_body(&dump);
    let path = golden_path(dataset, hops);
    if std::env::var("MESA_REGEN_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &body).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        expected,
        body,
        "extraction output for {}/hops={hops} drifted from the seed implementation",
        dataset.name()
    );
}

#[test]
fn so_extraction_matches_seed_1hop() {
    check(Dataset::StackOverflow, 1);
}

#[test]
fn so_extraction_matches_seed_2hop() {
    check(Dataset::StackOverflow, 2);
}

#[test]
fn flights_extraction_matches_seed_1hop() {
    check(Dataset::Flights, 1);
}

#[test]
fn flights_extraction_matches_seed_2hop() {
    check(Dataset::Flights, 2);
}

#[test]
fn forbes_extraction_matches_seed_1hop() {
    check(Dataset::Forbes, 1);
}

#[test]
fn forbes_extraction_matches_seed_2hop() {
    check(Dataset::Forbes, 2);
}
