//! Property tests asserting that the dense (mixed-radix flat vector) and
//! sparse (hash map) contingency kernels produce identical entropies, mutual
//! information, and table shapes on random columns — including all-missing
//! and single-category edge cases.

use proptest::prelude::*;

use mesa_repro::infotheory::JointTable;
use mesa_repro::tabular::EncodedColumn;

/// Strategy: per-row cells as `(code, present)` pairs encoded in one integer:
/// value `0` is a missing cell, `v >= 1` is code `v - 1`.
fn cells(len: usize, card: u32) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0..=card, len)
}

fn to_column(cells: &[u32], card: u32) -> EncodedColumn {
    let labels = (0..card.max(1)).map(|c| format!("v{c}")).collect();
    EncodedColumn::from_option_codes(cells.iter().map(|&v| v.checked_sub(1)), labels)
}

/// Entropy of the joint table of `cols` built with an explicit dense-cell
/// threshold (`0` forces the sparse hash path).
fn entropy_with(cols: &[&EncodedColumn], weights: Option<&[f64]>, dense_cells: usize) -> f64 {
    JointTable::build_with_threshold(cols, weights, dense_cells).entropy()
}

/// `I(X;Y)` computed from one joint table built at the given threshold.
fn mi_with(
    x: &EncodedColumn,
    y: &EncodedColumn,
    weights: Option<&[f64]>,
    dense_cells: usize,
) -> f64 {
    let joint = JointTable::build_with_threshold(&[x, y], weights, dense_cells);
    let hx = joint.marginal(&[0]).entropy();
    let hy = joint.marginal(&[1]).entropy();
    (hx + hy - joint.entropy()).max(0.0)
}

const DENSE: usize = 1 << 20;
const SPARSE: usize = 0;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Joint entropy is identical between the two layouts, with and without
    /// missing values.
    #[test]
    fn entropies_agree(
        xs in cells(70, 5),
        ys in cells(70, 3),
    ) {
        let x = to_column(&xs, 5);
        let y = to_column(&ys, 3);
        let dense = entropy_with(&[&x, &y], None, DENSE);
        let sparse = entropy_with(&[&x, &y], None, SPARSE);
        prop_assert!((dense - sparse).abs() < 1e-12, "dense={dense} sparse={sparse}");
        // single columns too
        prop_assert!((entropy_with(&[&x], None, DENSE) - entropy_with(&[&x], None, SPARSE)).abs() < 1e-12);
    }

    /// Mutual information is identical between the two layouts.
    #[test]
    fn mutual_information_agrees(
        xs in cells(80, 4),
        ys in cells(80, 4),
    ) {
        let x = to_column(&xs, 4);
        let y = to_column(&ys, 4);
        let dense = mi_with(&x, &y, None, DENSE);
        let sparse = mi_with(&x, &y, None, SPARSE);
        prop_assert!((dense - sparse).abs() < 1e-12, "dense={dense} sparse={sparse}");
    }

    /// Positive random IPW weights do not break the equivalence.
    #[test]
    fn weighted_builds_agree(
        xs in cells(60, 4),
        ys in cells(60, 2),
        ws in prop::collection::vec(0.0f64..5.0, 60),
    ) {
        let x = to_column(&xs, 4);
        let y = to_column(&ys, 2);
        let dense = JointTable::build_with_threshold(&[&x, &y], Some(&ws), DENSE);
        let sparse = JointTable::build_with_threshold(&[&x, &y], Some(&ws), SPARSE);
        prop_assert!((dense.total() - sparse.total()).abs() < 1e-9);
        prop_assert_eq!(dense.complete_cases(), sparse.complete_cases());
        prop_assert_eq!(dense.n_cells(), sparse.n_cells());
        prop_assert!((dense.entropy() - sparse.entropy()).abs() < 1e-12);
    }

    /// Table shape invariants agree: totals, complete cases, observed cells,
    /// and marginals.
    #[test]
    fn table_shapes_agree(
        xs in cells(50, 3),
        ys in cells(50, 3),
        zs in cells(50, 2),
    ) {
        let x = to_column(&xs, 3);
        let y = to_column(&ys, 3);
        let z = to_column(&zs, 2);
        let dense = JointTable::build_with_threshold(&[&x, &y, &z], None, DENSE);
        let sparse = JointTable::build_with_threshold(&[&x, &y, &z], None, SPARSE);
        prop_assert!(dense.is_dense());
        prop_assert!(!sparse.is_dense());
        prop_assert_eq!(dense.complete_cases(), sparse.complete_cases());
        prop_assert_eq!(dense.n_cells(), sparse.n_cells());
        prop_assert!((dense.total() - sparse.total()).abs() < 1e-12);
        for dims in [vec![0], vec![2], vec![0, 2], vec![2, 1]] {
            let dm = dense.marginal(&dims);
            let sm = sparse.marginal(&dims);
            prop_assert_eq!(dm.n_cells(), sm.n_cells());
            prop_assert!((dm.entropy() - sm.entropy()).abs() < 1e-12, "dims {:?}", dims);
        }
    }

    /// All-missing columns: both layouts produce the empty table, alone and
    /// jointly with an observed column.
    #[test]
    fn all_missing_edge_case(xs in cells(40, 4)) {
        let x = to_column(&xs, 4);
        let all_missing = to_column(&[0; 40], 4);
        for threshold in [DENSE, SPARSE] {
            let t = JointTable::build_with_threshold(&[&all_missing], None, threshold);
            prop_assert!(t.is_empty());
            prop_assert_eq!(t.entropy(), 0.0);
            let joint = JointTable::build_with_threshold(&[&x, &all_missing], None, threshold);
            prop_assert!(joint.is_empty());
            prop_assert_eq!(joint.complete_cases(), 0);
        }
    }

    /// Single-category columns: zero entropy, zero MI against anything, in
    /// both layouts.
    #[test]
    fn single_category_edge_case(xs in cells(50, 4)) {
        let x = to_column(&xs, 4);
        let constant = to_column(&[1; 50], 1);
        for threshold in [DENSE, SPARSE] {
            prop_assert_eq!(entropy_with(&[&constant], None, threshold), 0.0);
            let mi = mi_with(&x, &constant, None, threshold);
            prop_assert!(mi.abs() < 1e-12);
        }
    }
}
