//! Regression tests for the sparse-kernel determinism fix: sparse joint
//! tables fold their cells with a fixed-state hasher, so every entropy/CMI is
//! bit-stable across independent builds, and exact CMI ties in the
//! Brute-Force / MCIMR searches break by candidate name instead of by
//! whatever 1e-15 noise the old per-process-seeded hash map injected.

use std::collections::HashMap;

use mesa_repro::infotheory::{conditional_mutual_information, EncodedFrame, JointTable};
use mesa_repro::mesa::baselines::brute_force;
use mesa_repro::mesa::{mcimr, prepare_query, McimrConfig, PrepareConfig, PreparedQuery};
use mesa_repro::tabular::{AggregateQuery, Column, DataFrameBuilder};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A high-cardinality column over rows inserted in shuffled order, so the
/// sparse map sees keys in a scrambled sequence (the regime where the old
/// random-state hasher scrambled the summation order run to run).
fn shuffled_column(name: &str, cardinality: u32, rows: usize, seed: u64) -> Column {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut values: Vec<Option<String>> = (0..rows)
        .map(|i| {
            if i % 17 == 0 {
                None
            } else {
                Some(format!("{name}-{}", rng.gen_range(0..cardinality)))
            }
        })
        .collect();
    values.shuffle(&mut rng);
    Column::from_str_values(name, values.iter().map(|v| v.as_deref()).collect())
}

#[test]
fn sparse_entropy_is_bit_stable_across_independent_builds() {
    let x = shuffled_column("x", 60, 500, 7).encode();
    let y = shuffled_column("y", 60, 500, 8).encode();
    // Threshold 0 forces the sparse hash path.
    let reference = JointTable::build_with_threshold(&[&x, &y], None, 0);
    assert!(!reference.is_dense());
    for _ in 0..5 {
        let rebuilt = JointTable::build_with_threshold(&[&x, &y], None, 0);
        assert_eq!(
            reference.entropy().to_bits(),
            rebuilt.entropy().to_bits(),
            "sparse entropy must be bit-identical across builds"
        );
        for dims in [vec![0], vec![1]] {
            assert_eq!(
                reference.marginal(&dims).entropy().to_bits(),
                rebuilt.marginal(&dims).entropy().to_bits()
            );
        }
        // The cell iteration order itself is deterministic (fixed hasher).
        let a: Vec<(Vec<u32>, f64)> = reference.iter().collect();
        let b: Vec<(Vec<u32>, f64)> = rebuilt.iter().collect();
        assert_eq!(a, b);
    }
}

#[test]
fn sparse_cmi_is_bit_stable_across_independent_builds() {
    // Cardinalities chosen so the cross product (80 × 80) exceeds the
    // adaptive dense threshold for 400 rows (8·400 + 1024), exercising the
    // sparse path through the public measures.
    let x = shuffled_column("x", 80, 400, 21).encode();
    let y = shuffled_column("y", 80, 400, 22).encode();
    let z = shuffled_column("z", 4, 400, 23).encode();
    let first = conditional_mutual_information(&x, &y, &[&z], None);
    for _ in 0..5 {
        let again = conditional_mutual_information(&x, &y, &[&z], None);
        assert_eq!(first.to_bits(), again.to_bits());
    }
}

/// A prepared query whose candidate columns `Zed` and `Alpha` are exact
/// duplicates: every subset score involving one ties bitwise with the other,
/// so the searches must fall back to the name tie-break.
fn tied_prepared() -> PreparedQuery {
    let n = 240;
    let mut country = Vec::new();
    let mut dup_a = Vec::new();
    let mut dup_b = Vec::new();
    let mut salary = Vec::new();
    for i in 0..n {
        let cid = i % 4;
        country.push(Some(["A", "B", "C", "D"][cid]));
        let level = if cid < 2 { "hi" } else { "lo" };
        dup_a.push(Some(level));
        dup_b.push(Some(level));
        salary.push(Some(if cid < 2 { 80.0 } else { 30.0 } + (i % 5) as f64));
    }
    let df = DataFrameBuilder::new()
        .cat("Country", country)
        // Deliberately ordered so the *later* name sorts lexicographically
        // first: a positional tie-break would pick Zed, the name tie-break
        // picks Alpha.
        .cat("Zed", dup_b)
        .cat("Alpha", dup_a)
        .float("Salary", salary)
        .build()
        .unwrap();
    prepare_query(
        &df,
        &AggregateQuery::avg("Country", "Salary"),
        None,
        &[],
        PrepareConfig::default(),
    )
    .unwrap()
}

#[test]
fn brute_force_breaks_exact_ties_by_name_and_is_stable() {
    let p = tied_prepared();
    let cands: Vec<String> = vec!["Zed".to_string(), "Alpha".to_string()];
    let first = brute_force(&p, &cands, 2).unwrap();
    let second = brute_force(&p, &cands, 2).unwrap();
    assert_eq!(first.attributes, second.attributes);
    assert_eq!(
        first.attributes,
        vec!["Alpha".to_string()],
        "exact ties must resolve to the lexicographically smaller subset"
    );
}

#[test]
fn mcimr_breaks_exact_ties_by_name_and_is_stable() {
    let p = tied_prepared();
    let cands: Vec<String> = vec!["Zed".to_string(), "Alpha".to_string()];
    let (first, _) = mcimr(&p, &cands, &HashMap::new(), McimrConfig::default()).unwrap();
    let (second, _) = mcimr(&p, &cands, &HashMap::new(), McimrConfig::default()).unwrap();
    assert_eq!(first.attributes, second.attributes);
    assert_eq!(
        first.attributes.first().map(String::as_str),
        Some("Alpha"),
        "the greedy round must prefer the lexicographically smaller name on an exact tie"
    );
}

#[test]
fn sparse_and_dense_paths_agree_on_the_shuffled_table() {
    // Sanity companion to the bit-stability tests: forcing sparse storage
    // does not change the estimate relative to the dense layout beyond
    // floating-point reassociation.
    let x = shuffled_column("x", 12, 600, 31).encode();
    let y = shuffled_column("y", 9, 600, 32).encode();
    let dense = JointTable::build_with_threshold(&[&x, &y], None, 1 << 20);
    let sparse = JointTable::build_with_threshold(&[&x, &y], None, 0);
    assert!(dense.is_dense() && !sparse.is_dense());
    assert!((dense.entropy() - sparse.entropy()).abs() < 1e-12);
}

/// A representative explain + `explain_many` workload rendered to exact
/// bytes (summary + full-precision `Debug` floats), run entirely under one
/// thread cap.
fn render_workload_at(cap: usize) -> String {
    use mesa_repro::datagen::{
        build_kg, generate_covid, representative_queries_for, Dataset, KgConfig, World, WorldConfig,
    };
    use mesa_repro::mesa::{parallel, report_summary, Mesa};

    parallel::with_thread_cap(cap, || {
        let world = World::generate(WorldConfig {
            n_countries: 60,
            n_cities: 25,
            n_airlines: 6,
            n_celebrities: 80,
            seed: 23,
        });
        let graph = build_kg(&world, KgConfig::default());
        let covid = generate_covid(&world, 3).unwrap();
        let queries: Vec<AggregateQuery> = representative_queries_for(Dataset::Covid)
            .into_iter()
            .map(|wq| wq.query)
            .collect();
        let mesa = Mesa::new();
        let mut out = String::new();
        // Cold one-shot explains: candidate scoring and extraction fan out
        // inside each call.
        let session = mesa.session(&covid, Some(&graph), &["Country"]);
        for q in &queries {
            let report = session.explain(q).unwrap();
            out.push_str(&report_summary(&report));
            out.push_str(&format!("\n{:?}\n", report.explanation));
        }
        // Batched misses on a fresh session: the batch-level fan-out nests
        // the per-query pipelines' fan-outs on the same pool.
        let batched = mesa.session(&covid, Some(&graph), &["Country"]);
        for result in batched.explain_many(&queries) {
            let report = result.unwrap();
            out.push_str(&report_summary(&report));
            out.push_str(&format!("\n{:?}\n", report.explanation));
        }
        out
    })
}

#[test]
fn reports_are_byte_identical_across_thread_counts() {
    // Force a 4-thread pool even on a single-core host so caps 2 and 4
    // genuinely schedule across workers (`MESA_THREADS`, when set, takes
    // precedence; CI additionally runs the whole suite at MESA_THREADS=4).
    let pool = mesa_repro::mesa::parallel::set_threads(4);
    let reference = render_workload_at(1);
    assert!(!reference.is_empty());
    for cap in [2usize, 4] {
        if cap > pool {
            continue; // MESA_THREADS forced a smaller pool for the process
        }
        assert_eq!(
            render_workload_at(cap),
            reference,
            "workload output must be byte-identical at {cap} threads vs serial"
        );
    }
}

/// The covid workload through a session whose every cache tier holds a
/// single entry, so each query after the first evicts and re-warms — the
/// regime where a non-deterministic rebuild would show up as byte drift.
fn render_evict_rewarm_at(cap: usize) -> String {
    use mesa_repro::datagen::{
        build_kg, generate_covid, representative_queries_for, Dataset, KgConfig, World, WorldConfig,
    };
    use mesa_repro::mesa::{
        parallel, report_summary, CacheBudget, MesaConfig, Session, SessionLimits,
    };

    parallel::with_thread_cap(cap, || {
        let world = World::generate(WorldConfig {
            n_countries: 60,
            n_cities: 25,
            n_airlines: 6,
            n_celebrities: 80,
            seed: 23,
        });
        let graph = build_kg(&world, KgConfig::default());
        let covid = generate_covid(&world, 3).unwrap();
        let limits = SessionLimits {
            prepared: CacheBudget::entries(1),
            reports: CacheBudget::entries(1),
            extraction: CacheBudget::entries(1),
        };
        let session = Session::with_limits(
            &covid,
            Some(&graph),
            &["Country"],
            MesaConfig::default(),
            limits,
        );
        let queries: Vec<AggregateQuery> = representative_queries_for(Dataset::Covid)
            .into_iter()
            .map(|wq| wq.query)
            .collect();
        let mut out = String::new();
        for round in 0..3 {
            for q in &queries {
                let report = session.explain(q).unwrap();
                out.push_str(&report_summary(&report));
                out.push_str(&format!("\n{round} {:?}\n", report.explanation));
            }
        }
        assert!(
            session.cache_stats().reports.evictions > 0,
            "the 1-entry budget must actually evict"
        );
        out
    })
}

#[test]
fn evict_then_rewarm_is_byte_identical_across_thread_counts() {
    let pool = mesa_repro::mesa::parallel::set_threads(4);
    let reference = render_evict_rewarm_at(1);
    assert!(!reference.is_empty());
    for cap in [2usize, 4] {
        if cap > pool {
            continue; // MESA_THREADS forced a smaller pool for the process
        }
        assert_eq!(
            render_evict_rewarm_at(cap),
            reference,
            "evict/rewarm workload must be byte-identical at {cap} threads vs serial"
        );
    }
}

#[test]
fn encoded_frame_cmi_is_reproducible_via_prepare() {
    // End-to-end: the prepared query's scores are bit-stable across two
    // independent prepare + score passes over the same frame.
    let p1 = tied_prepared();
    let p2 = tied_prepared();
    assert_eq!(p1.baseline_cmi().to_bits(), p2.baseline_cmi().to_bits());
    let e1 = p1.explanation_cmi(&["Alpha".to_string()], None).unwrap();
    let e2 = p2.explanation_cmi(&["Alpha".to_string()], None).unwrap();
    assert_eq!(e1.to_bits(), e2.to_bits());
    let _ = EncodedFrame::from_frame(&p1.frame); // exercised for coverage
}
