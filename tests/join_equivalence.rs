//! Property tests asserting that the code-based gather join produces the
//! same relation as the rendered-string reference join (`join_rendered`) on
//! random frames — same column names, same row count, same cell values —
//! across string, int, and bool keys, null keys, duplicate right keys,
//! unmatched rows, and both join kinds.
//!
//! Float keys are deliberately out of scope: the code-based join matches
//! them by canonical encoding label (`-0.0 == 0.0`, no forced `.0` suffix),
//! which is a documented divergence from the reference's rendered strings.

use proptest::prelude::*;

use mesa_repro::tabular::{join, join_rendered, Column, DataFrame, JoinKind};

/// Key cells encoded as integers: 0 = null, `v >= 1` = key `v - 1` drawn
/// from a small domain so left/right overlap and duplicates are common.
fn keys(len: usize, domain: u32) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0..=domain, len)
}

fn str_key_column(name: &str, cells: &[u32]) -> Column {
    Column::from_str_values(
        name,
        cells
            .iter()
            .map(|&v| v.checked_sub(1).map(|k| format!("k{k}")))
            .collect(),
    )
}

fn int_key_column(name: &str, cells: &[u32]) -> Column {
    Column::from_i64(
        name,
        cells
            .iter()
            .map(|&v| v.checked_sub(1).map(|k| k as i64))
            .collect(),
    )
}

/// A right frame with one value column per dtype, all derived from the row
/// index so every cell is distinguishable.
fn right_frame(key: Column) -> DataFrame {
    let n = key.len();
    let mut cols = vec![key];
    cols.push(Column::from_i64(
        "ints",
        (0..n)
            .map(|i| (i % 3 != 0).then_some(i as i64 * 3))
            .collect(),
    ));
    cols.push(Column::from_f64(
        "floats",
        (0..n).map(|i| Some(i as f64 + 0.5)).collect(),
    ));
    cols.push(Column::from_bool(
        "bools",
        (0..n).map(|i| Some(i % 2 == 0)).collect(),
    ));
    cols.push(Column::from_str_values(
        "cats",
        (0..n)
            .map(|i| (i % 4 != 0).then(|| format!("c{i}")))
            .collect(),
    ));
    DataFrame::from_columns(cols).unwrap()
}

fn left_frame(key: Column) -> DataFrame {
    let n = key.len();
    let payload = Column::from_f64("payload", (0..n).map(|i| Some(i as f64)).collect());
    DataFrame::from_columns(vec![key, payload]).unwrap()
}

/// Asserts both join implementations produce the same relation (panics on
/// divergence; the vendored proptest reports the generated case).
fn assert_equivalent(left: &DataFrame, right: &DataFrame, kind: JoinKind) {
    let code = join(left, right, "k", "rk", kind).unwrap();
    let reference = join_rendered(left, right, "k", "rk", kind).unwrap();
    assert_eq!(code.column_names(), reference.column_names());
    assert_eq!(code.n_rows(), reference.n_rows());
    for name in code.column_names() {
        for row in 0..code.n_rows() {
            assert_eq!(
                code.get(row, name).unwrap(),
                reference.get(row, name).unwrap(),
                "row {row} column {name}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// String keys: the pipeline's real case (entity names).
    #[test]
    fn string_key_joins_are_equivalent(
        lk in keys(40, 6),
        rk in keys(25, 6),
    ) {
        let left = left_frame(str_key_column("k", &lk));
        let right = right_frame(str_key_column("rk", &rk));
        assert_equivalent(&left, &right, JoinKind::Left);
        assert_equivalent(&left, &right, JoinKind::Inner);
    }

    /// Int keys render identically to their encoding labels, so the two
    /// implementations must agree exactly.
    #[test]
    fn int_key_joins_are_equivalent(
        lk in keys(35, 5),
        rk in keys(30, 5),
    ) {
        let left = left_frame(int_key_column("k", &lk));
        let right = right_frame(int_key_column("rk", &rk));
        assert_equivalent(&left, &right, JoinKind::Left);
        assert_equivalent(&left, &right, JoinKind::Inner);
    }

    /// Mixed: categorical left key against a categorical right key rendered
    /// from the same alphabet but with many duplicates (first match must win
    /// identically), plus a colliding column name (`payload`).
    #[test]
    fn duplicate_keys_and_collisions_are_equivalent(
        lk in keys(30, 3),
        rk in keys(40, 3),
    ) {
        let left = left_frame(str_key_column("k", &lk));
        let mut right = right_frame(str_key_column("rk", &rk));
        // A name collision with the left frame: both joins must suffix it.
        right
            .add_column(Column::from_i64(
                "payload",
                (0..right.n_rows()).map(|i| Some(i as i64)).collect(),
            ))
            .unwrap();
        assert_equivalent(&left, &right, JoinKind::Left);
        assert_equivalent(&left, &right, JoinKind::Inner);
    }
}
