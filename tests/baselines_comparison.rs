//! Integration test of the baseline roster: on data with known ground truth,
//! the quality ordering reported by the paper must emerge
//! (Brute-Force ≈ MESA ≥ Top-K, and every method beats doing nothing).

use mesa_repro::datagen::{build_kg, generate_covid, KgConfig, World, WorldConfig};
use mesa_repro::mesa::baselines::{brute_force, hypdb, linear_regression, top_k, HypDbConfig};
use mesa_repro::mesa::{prune, Mesa, PruningConfig};
use mesa_repro::tabular::AggregateQuery;

#[test]
fn method_ordering_on_covid_query() {
    let world = World::generate(WorldConfig {
        n_countries: 100,
        n_cities: 20,
        n_airlines: 6,
        n_celebrities: 50,
        seed: 23,
    });
    let graph = build_kg(
        &world,
        KgConfig {
            random_missing: 0.05,
            biased_missing: 0.1,
            ..Default::default()
        },
    );
    let covid = generate_covid(&world, 2).unwrap();
    let query = AggregateQuery::avg("Country", "Deaths_per_100_cases");

    let mesa = Mesa::new();
    let prepared = mesa
        .prepare(&covid, &query, Some(&graph), &["Country"])
        .unwrap();
    let pruned = prune(
        &prepared.encoded,
        &prepared.candidates,
        prepared.exposure(),
        prepared.outcome(),
        &PruningConfig::default(),
    )
    .unwrap();
    assert!(
        pruned.kept.len() >= 3,
        "pruning should leave real candidates: {:?}",
        pruned.kept
    );

    let mesa_result = mesa.explain_prepared(&prepared).unwrap().explanation;
    let capped: Vec<String> = pruned.kept.iter().take(12).cloned().collect();
    let brute = brute_force(&prepared, &capped, 3).unwrap();
    let topk = top_k(&prepared, &pruned.kept, 3).unwrap();
    let lr = linear_regression(&prepared, &pruned.kept, 3).unwrap();
    let table_only: Vec<String> = pruned
        .kept
        .iter()
        .filter(|c| !prepared.extracted.contains(c))
        .cloned()
        .collect();
    let hyp = hypdb(&prepared, &table_only, HypDbConfig::default()).unwrap();

    let baseline = prepared.baseline_cmi();
    // Everything is bounded by the unconditioned correlation.
    for (name, e) in [
        ("brute", &brute),
        ("mesa", &mesa_result),
        ("topk", &topk),
        ("lr", &lr),
        ("hypdb", &hyp),
    ] {
        assert!(
            e.explainability <= baseline + 1e-9,
            "{name} has explainability above the baseline"
        );
    }
    // Brute force is optimal for its (capped) candidate pool, so MESA — which
    // searches the full pruned pool greedily — must end up close to it or
    // better, never far worse.
    assert!(
        mesa_result.explainability <= brute.explainability + 0.35,
        "MESA ({:.3}) should be close to Brute-Force ({:.3})",
        mesa_result.explainability,
        brute.explainability
    );
    // HypDB never uses KG attributes.
    for a in &hyp.attributes {
        assert!(!prepared.extracted.contains(a));
    }
}
