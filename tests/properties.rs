//! Property-based tests (proptest) for the core invariants the system relies
//! on: information-theoretic identities, binning monotonicity, dataframe
//! round-trips, and explanation invariants.

use proptest::prelude::*;

use mesa_repro::infotheory::{
    conditional_entropy, conditional_mutual_information, entropy, joint_entropy, mutual_information,
};
use mesa_repro::tabular::{bin_column, BinStrategy, Column, DataFrame, Value};

/// Strategy: a small categorical column as integer codes in 0..card.
fn coded_column(len: usize, card: u32) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0..card, len)
}

fn to_encoded(codes: &[u32]) -> mesa_repro::tabular::EncodedColumn {
    Column::from_i64("c", codes.iter().map(|&c| Some(c as i64)).collect()).encode()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// H(X) is non-negative and bounded by log2(cardinality).
    #[test]
    fn entropy_bounds(codes in coded_column(60, 5)) {
        let x = to_encoded(&codes);
        let h = entropy(&x, None);
        prop_assert!(h >= 0.0);
        prop_assert!(h <= (x.cardinality().max(1) as f64).log2() + 1e-9);
    }

    /// I(X;Y) is symmetric, non-negative, and bounded by min(H(X), H(Y)).
    #[test]
    fn mutual_information_symmetry_and_bounds(
        xs in coded_column(80, 4),
        ys in coded_column(80, 4),
    ) {
        let x = to_encoded(&xs);
        let y = to_encoded(&ys);
        let ixy = mutual_information(&x, &y, None);
        let iyx = mutual_information(&y, &x, None);
        prop_assert!((ixy - iyx).abs() < 1e-9);
        prop_assert!(ixy >= 0.0);
        prop_assert!(ixy <= entropy(&x, None).min(entropy(&y, None)) + 1e-9);
    }

    /// H(X,Y) = H(X) + H(Y|X) (chain rule) on fully observed data.
    #[test]
    fn entropy_chain_rule(
        xs in coded_column(70, 3),
        ys in coded_column(70, 4),
    ) {
        let x = to_encoded(&xs);
        let y = to_encoded(&ys);
        let joint = joint_entropy(&[&x, &y], None);
        let chained = entropy(&x, None) + conditional_entropy(&y, &[&x], None);
        prop_assert!((joint - chained).abs() < 1e-9, "joint={joint}, chained={chained}");
    }

    /// I(X;Y|Z) is non-negative, and conditioning on X itself yields zero.
    #[test]
    fn cmi_non_negative_and_self_conditioning(
        xs in coded_column(80, 3),
        ys in coded_column(80, 3),
        zs in coded_column(80, 3),
    ) {
        let x = to_encoded(&xs);
        let y = to_encoded(&ys);
        let z = to_encoded(&zs);
        prop_assert!(conditional_mutual_information(&x, &y, &[&z], None) >= 0.0);
        prop_assert!(conditional_mutual_information(&x, &y, &[&x], None) < 1e-9);
    }

    /// Uniform per-row weights leave every estimate unchanged.
    #[test]
    fn uniform_weights_are_a_noop(
        xs in coded_column(60, 4),
        ys in coded_column(60, 4),
        scale in 0.1f64..10.0,
    ) {
        let x = to_encoded(&xs);
        let y = to_encoded(&ys);
        let w = vec![scale; xs.len()];
        let unweighted = mutual_information(&x, &y, None);
        let weighted = mutual_information(&x, &y, Some(&w));
        prop_assert!((unweighted - weighted).abs() < 1e-9);
    }

    /// Binning never increases the number of distinct values and preserves
    /// the value ordering (monotone bin assignment).
    #[test]
    fn binning_is_monotone(values in prop::collection::vec(-1e6f64..1e6, 5..80), bins in 2usize..10) {
        let col = Column::from_f64("x", values.iter().map(|&v| Some(v)).collect());
        let binned = bin_column(&col, bins, BinStrategy::EqualWidth).unwrap();
        prop_assert!(binned.n_distinct() <= bins);
        for i in 0..values.len() {
            for j in 0..values.len() {
                if values[i] <= values[j] {
                    let bi = binned.get(i).unwrap().as_i64().unwrap();
                    let bj = binned.get(j).unwrap().as_i64().unwrap();
                    prop_assert!(bi <= bj);
                }
            }
        }
    }

    /// take + filter round-trip: filtering with an all-true mask is identity,
    /// and take preserves cell values at the selected indices.
    #[test]
    fn frame_take_preserves_cells(values in prop::collection::vec(0i64..100, 2..40)) {
        let df = DataFrame::from_columns(vec![
            Column::from_i64("a", values.iter().map(|&v| Some(v)).collect()),
            Column::from_i64("b", values.iter().map(|&v| Some(v * 2)).collect()),
        ]).unwrap();
        let all = df.filter_mask(&vec![true; values.len()]).unwrap();
        prop_assert_eq!(all.n_rows(), df.n_rows());
        let idx: Vec<usize> = (0..values.len()).rev().collect();
        let rev = df.take(&idx);
        for (new_row, &old_row) in idx.iter().enumerate() {
            prop_assert_eq!(rev.get(new_row, "a").unwrap(), Value::Int(values[old_row]));
        }
    }

    /// CSV round-trip preserves the shape and the integer cell values.
    #[test]
    fn csv_roundtrip(values in prop::collection::vec(-1000i64..1000, 1..50)) {
        let df = DataFrame::from_columns(vec![
            Column::from_i64("x", values.iter().map(|&v| Some(v)).collect()),
        ]).unwrap();
        let text = mesa_repro::tabular::write_csv_str(&df);
        let back = mesa_repro::tabular::read_csv_str(&text).unwrap();
        prop_assert_eq!(back.n_rows(), df.n_rows());
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(back.get(i, "x").unwrap(), Value::Int(v));
        }
    }
}
