//! Permanent tier-1 replay of fuzzer-surfaced and hand-built scenarios.
//!
//! Every seed here runs the full differential harness — all six oracle
//! families over the complete prepare → extract → kernel → MCIMR → session
//! pipeline. The hand cases pin known-nasty shapes (an all-null column, a
//! cardinality-1 join key, a 5-hop extraction chain); the fixed seeds pin a
//! spread of generated scenarios so oracle regressions surface in `cargo
//! test` without running the fuzz binary. When the fuzzer finds a new
//! counterexample, append its minimized seed to `REGRESSION_SEEDS` with a
//! comment saying what it caught.

use mesa_repro::fuzz::{check, HandCase, Sabotage, Scenario, ORACLE_FAMILIES};

/// Generated-scenario seeds replayed forever. The first three are the fixed
/// smoke spread from PR 10; none has ever failed — they are here so any
/// future oracle break on these shapes is caught at tier 1.
const REGRESSION_SEEDS: [u64; 5] = [
    0xECA1_1071_3326_69D7, // scenario 0 of the canonical --seed 0xMESA run
    0xDEAD_BEEF,           // minimizer acceptance scenario (sealed sabotage)
    0x0000_0000_0000_0007, // small smoke seed used by the harness unit tests
    0x5EED_CAFE_F00D_0001, // mixed dtype spread
    0x5EED_CAFE_F00D_0002, // mixed dtype spread
];

fn assert_scenario_clean(s: &Scenario) {
    match check(s, Sabotage::None) {
        Ok(families) => {
            // Every family except fault-recovery must have actually run;
            // fault-recovery needs the feature flag.
            for family in ORACLE_FAMILIES {
                if family == "fault-recovery" && !cfg!(feature = "fault-injection") {
                    continue;
                }
                assert!(
                    families.contains(&family),
                    "{}: family {family} did not run",
                    s.label
                );
            }
        }
        Err(failure) => panic!(
            "{failure}\nreplay: cargo run --release -p fuzz -- --seed {:#x} --scenarios 1\n{}",
            s.seed,
            s.describe()
        ),
    }
}

#[test]
fn hand_case_all_null_column_passes_every_oracle() {
    assert_scenario_clean(&Scenario::hand(HandCase::AllNullColumn));
}

#[test]
fn hand_case_cardinality_one_key_passes_every_oracle() {
    assert_scenario_clean(&Scenario::hand(HandCase::CardinalityOneKey));
}

#[test]
fn hand_case_five_hop_chain_passes_every_oracle() {
    assert_scenario_clean(&Scenario::hand(HandCase::FiveHopChain));
}

#[test]
fn regression_seeds_pass_every_oracle() {
    for seed in REGRESSION_SEEDS {
        assert_scenario_clean(&Scenario::from_seed(seed));
    }
}

#[test]
fn regression_seeds_replay_identically() {
    // The whole file is meaningless unless seeds reproduce bit-identical
    // scenarios across runs and processes.
    for seed in REGRESSION_SEEDS {
        let a = Scenario::from_seed(seed);
        let b = Scenario::from_seed(seed);
        assert_eq!(a.df, b.df, "seed {seed:#x} dataframe not deterministic");
        assert_eq!(
            a.queries, b.queries,
            "seed {seed:#x} queries not deterministic"
        );
        assert_eq!(
            a.graph.n_triples(),
            b.graph.n_triples(),
            "seed {seed:#x} graph not deterministic"
        );
    }
}
