//! Workspace smoke test: the full pipeline — synthetic world, knowledge
//! graph, dataset generation, KG extraction, pruning, MCIMR — on a world
//! small enough that tier-1 exercises every layer in well under a second.

use mesa_repro::datagen::{build_kg, generate_covid, KgConfig, World, WorldConfig};
use mesa_repro::mesa::{report_summary, Mesa};
use mesa_repro::tabular::AggregateQuery;

#[test]
fn facade_explains_tiny_world() {
    let world = World::generate(WorldConfig {
        n_countries: 40,
        n_cities: 8,
        n_airlines: 3,
        n_celebrities: 10,
        seed: 5,
    });
    let graph = build_kg(
        &world,
        KgConfig {
            random_missing: 0.0,
            biased_missing: 0.0,
            ..Default::default()
        },
    );
    let covid = generate_covid(&world, 2).unwrap();
    assert_eq!(covid.n_rows(), 40, "one row per country");

    let query = AggregateQuery::avg("Country", "Deaths_per_100_cases");
    let report = Mesa::new()
        .explain(&covid, &query, Some(&graph), &["Country"])
        .unwrap();

    assert!(
        !report.explanation.is_empty(),
        "smoke world should yield a non-empty explanation"
    );
    assert!(
        report.n_extracted > 0,
        "the knowledge graph should contribute candidate attributes"
    );
    assert!(
        report.explanation.explainability <= report.explanation.baseline_cmi + 1e-9,
        "conditioning on the explanation must not increase the CMI"
    );
    // The human-readable rendering works and mentions the selected attributes.
    let summary = report_summary(&report);
    for attr in &report.explanation.attributes {
        assert!(summary.contains(attr), "summary should mention {attr}");
    }
}

#[test]
fn facade_is_deterministic_across_runs() {
    let run = || {
        let world = World::generate(WorldConfig {
            n_countries: 40,
            n_cities: 8,
            n_airlines: 3,
            n_celebrities: 10,
            seed: 5,
        });
        let graph = build_kg(&world, KgConfig::default());
        let covid = generate_covid(&world, 2).unwrap();
        let query = AggregateQuery::avg("Country", "Deaths_per_100_cases");
        let report = Mesa::new()
            .explain(&covid, &query, Some(&graph), &["Country"])
            .unwrap();
        (
            report.explanation.attributes.clone(),
            report.explanation.explainability,
        )
    };
    assert_eq!(run(), run(), "same seeds must give the same explanation");
}
