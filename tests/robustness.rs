//! Serving-grade robustness of the session layer: per-request deadlines,
//! panic containment at the session boundary, in-flight miss deduplication,
//! cache consistency under LRU eviction storms, and — with the
//! `fault-injection` feature — deterministic faults at every named pipeline
//! point, after each of which the session must stay fully usable and serve
//! results byte-identical to a fresh cold session.
//!
//! The fault-injection registry is process-global, so every test that
//! touches it (or that runs a session while another test might be arming
//! faults) serialises on one lock and resets the registry on scope exit.

use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use mesa_repro::datagen::{
    build_kg, generate_covid, representative_queries_for, Dataset, KgConfig, World, WorldConfig,
};
use mesa_repro::kg::KnowledgeGraph;
use mesa_repro::mesa::{
    report_summary, CacheBudget, MesaConfig, MesaError, MesaReport, Session, SessionLimits,
};
use mesa_repro::tabular::{AggregateQuery, DataFrame};

/// Every named injection point the pipeline declares, outermost first.
#[allow(dead_code)]
const FAULT_POINTS: &[&str] = &[
    "mesa.session.fill_report",
    "mesa.session.fill_prepared",
    "mesa.session.fill_extraction",
    "mesa.join",
    "kg.extract.expand",
    "infotheory.kernel.accumulate",
];

/// The coverage list above must track the documented registry verbatim —
/// same points, same order. `mesa-lint`'s fault-point-registry rule checks
/// the same invariant statically (plus the call sites); this runtime mirror
/// catches it even in builds that never run the lint.
#[cfg(feature = "fault-injection")]
#[test]
fn fault_points_match_the_documented_registry() {
    use mesa_repro::mesa::faults;
    assert_eq!(FAULT_POINTS, faults::NAMED_POINTS);
}

static SERIAL: Mutex<()> = Mutex::new(());

/// Serialises tests sharing the process-global fault registry. Poisoning is
/// ignorable: a previous test's failed assertion leaves no shared state
/// behind beyond the registry, which every scope resets.
fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(feature = "fault-injection")]
mod scope {
    use super::*;
    use mesa_repro::mesa::faults;

    /// Holds the serial lock and guarantees a disarmed registry on both
    /// entry and exit (even when the test panics mid-way).
    pub struct FaultScope(#[allow(dead_code)] MutexGuard<'static, ()>);

    impl Drop for FaultScope {
        fn drop(&mut self) {
            faults::reset();
        }
    }

    pub fn fault_scope() -> FaultScope {
        let guard = serial();
        faults::reset();
        FaultScope(guard)
    }
}

/// Shared small fixture (the `tests/session.rs` world): generated once per
/// process, borrowed by every session in this suite.
fn fixture() -> &'static (DataFrame, KnowledgeGraph) {
    static FIXTURE: OnceLock<(DataFrame, KnowledgeGraph)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let world = World::generate(WorldConfig {
            n_countries: 60,
            n_cities: 25,
            n_airlines: 6,
            n_celebrities: 80,
            seed: 23,
        });
        let graph = build_kg(&world, KgConfig::default());
        let covid = generate_covid(&world, 3).unwrap();
        (covid, graph)
    })
}

fn covid_session() -> Session<'static> {
    let (covid, graph) = fixture();
    Session::new(covid, Some(graph), &["Country"], MesaConfig::default())
}

fn covid_queries() -> Vec<AggregateQuery> {
    representative_queries_for(Dataset::Covid)
        .into_iter()
        .map(|wq| wq.query)
        .collect()
}

/// Exact observable content of a report: summary plus full-precision floats.
fn render(report: &MesaReport) -> String {
    format!("{}\n{:?}", report_summary(report), report.explanation)
}

#[test]
fn ten_ms_deadline_on_flights_returns_deadline_exceeded_without_hanging() {
    let _guard = serial();
    let world = World::generate(WorldConfig {
        n_countries: 60,
        n_cities: 25,
        n_airlines: 6,
        n_celebrities: 80,
        seed: 23,
    });
    let graph = build_kg(&world, KgConfig::default());
    let flights = Dataset::Flights.generate(&world, 20_000, 1234).unwrap();
    let session = Session::new(
        &flights,
        Some(&graph),
        Dataset::Flights.extraction_columns(),
        MesaConfig::default(),
    );
    let q = representative_queries_for(Dataset::Flights)[0]
        .query
        .clone();

    let t0 = Instant::now();
    let result = session.explain_with_deadline(&q, Duration::from_millis(10));
    let elapsed = t0.elapsed();
    assert_eq!(
        result.unwrap_err(),
        MesaError::DeadlineExceeded,
        "a 10 ms budget cannot cover a cold 20k-row explain"
    );
    assert!(
        elapsed < Duration::from_secs(30),
        "cancellation must be prompt, took {elapsed:?}"
    );

    // The failed attempt left nothing behind: the session still serves, and
    // its answer is byte-identical to a session that never saw a deadline.
    let report = session.explain(&q).unwrap();
    let fresh = Session::new(
        &flights,
        Some(&graph),
        Dataset::Flights.extraction_columns(),
        MesaConfig::default(),
    );
    assert_eq!(render(&report), render(&fresh.explain(&q).unwrap()));

    // A memoised result is served even under an already-expired budget.
    let warm = session
        .explain_with_deadline(&q, Duration::from_millis(0))
        .unwrap();
    assert!(Arc::ptr_eq(&report, &warm));
}

#[test]
fn concurrent_same_fingerprint_misses_run_the_cold_pipeline_once() {
    let _guard = serial();
    let session = covid_session();
    let q = &covid_queries()[0];
    let reports: Vec<Arc<MesaReport>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| s.spawn(|| session.explain(q).unwrap()))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for r in &reports[1..] {
        assert!(Arc::ptr_eq(&reports[0], r), "all callers share one report");
    }
    let stats = session.cache_stats();
    assert_eq!(stats.reports.misses, 1, "cold pipeline ran exactly once");
    assert_eq!(stats.prepared.misses, 1);
    assert_eq!(
        stats.reports.hits + stats.reports.coalesced,
        7,
        "the other seven callers were served without recomputing"
    );
}

#[test]
fn eviction_storm_keeps_results_byte_identical() {
    let _guard = serial();
    let (covid, graph) = fixture();
    let tight = SessionLimits {
        prepared: CacheBudget::entries(1),
        reports: CacheBudget::entries(1),
        extraction: CacheBudget::entries(1),
    };
    let bounded = Session::with_limits(
        covid,
        Some(graph),
        &["Country"],
        MesaConfig::default(),
        tight,
    );
    let reference = covid_session();
    let queries = covid_queries();
    // Four rounds over the workload: every explain on the bounded session
    // after the first query is a re-computation of an evicted entry.
    for round in 0..4 {
        for q in &queries {
            let evicted = bounded.explain(q).unwrap();
            let kept = reference.explain(q).unwrap();
            assert_eq!(
                render(&evicted),
                render(&kept),
                "round {round}: rewarmed result diverged for {q}"
            );
        }
    }
    let stats = bounded.cache_stats();
    assert!(stats.reports.evictions > 0, "the storm must actually evict");
    assert!(stats.reports.entries <= 1);
    assert_eq!(reference.cache_stats().reports.evictions, 0);
}

#[cfg(feature = "fault-injection")]
mod faults_suite {
    use super::scope::fault_scope;
    use super::*;
    use mesa_repro::mesa::faults::{self, FaultKind};
    use proptest::prelude::*;

    /// The clean answer for query `i`, from a session that never faulted.
    fn clean_render(i: usize) -> String {
        let session = covid_session();
        render(&session.explain(&covid_queries()[i]).unwrap())
    }

    #[test]
    fn a_panic_at_every_named_point_is_contained_and_the_session_recovers() {
        let _scope = fault_scope();
        let q = &covid_queries()[0];
        let clean = clean_render(0);
        for point in FAULT_POINTS {
            faults::reset();
            let session = covid_session();
            faults::arm(point, FaultKind::Panic, 1);
            let err = session.explain(q).unwrap_err();
            match &err {
                MesaError::Internal(msg) => assert!(
                    msg.contains(point),
                    "{point}: payload message lost, got {msg:?}"
                ),
                other => panic!("{point}: expected Internal, got {other:?}"),
            }
            assert!(
                faults::hits(point) >= 1,
                "{point}: the armed point was never reached"
            );
            // Nothing poisoned: the same session serves the query cold again
            // and matches a session that never faulted, byte for byte.
            let recovered = session.explain(q).unwrap();
            assert_eq!(render(&recovered), clean, "{point}: recovery diverged");
            let stats = session.cache_stats();
            assert_eq!(stats.reports.entries, 1, "{point}: failed fill was cached");
        }
    }

    #[test]
    fn oom_shaped_allocation_failures_are_contained() {
        let _scope = fault_scope();
        let q = &covid_queries()[0];
        let session = covid_session();
        faults::arm("mesa.session.fill_prepared", FaultKind::AllocFail, 1);
        let err = session.explain(q).unwrap_err();
        match &err {
            MesaError::Internal(msg) => {
                assert!(msg.contains("allocation of"), "got {msg:?}");
            }
            other => panic!("expected Internal, got {other:?}"),
        }
        assert_eq!(render(&session.explain(q).unwrap()), clean_render(0));
    }

    #[test]
    fn latency_faults_change_timing_but_never_results() {
        let _scope = fault_scope();
        let q = &covid_queries()[0];
        let session = covid_session();
        faults::arm(
            "mesa.join",
            FaultKind::Latency(Duration::from_millis(20)),
            1,
        );
        let t0 = Instant::now();
        let slow = session.explain(q).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(20));
        assert_eq!(render(&slow), clean_render(0));
    }

    #[test]
    fn a_faulted_fill_never_breaks_the_pool_for_later_batches() {
        let _scope = fault_scope();
        let queries = covid_queries();
        let session = covid_session();
        faults::arm("infotheory.kernel.accumulate", FaultKind::Panic, 1);
        let first = session.explain_many(&queries);
        // At least the faulted query failed; the batch itself completed.
        assert_eq!(first.len(), queries.len());
        assert!(first.iter().any(|r| r.is_err()));
        faults::reset();
        // The same session immediately serves the whole batch, matching a
        // fault-free session.
        let reference = covid_session();
        let again = session.explain_many(&queries);
        for (i, (r, q)) in again.iter().zip(&queries).enumerate() {
            let clean = reference.explain(q).unwrap();
            assert_eq!(
                render(r.as_ref().unwrap()),
                render(&clean),
                "query {i} diverged after the faulted batch"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Cache consistency under faults: whatever single fault fires (any
        /// point, any of the first few hits, panic or OOM-shaped), every
        /// subsequent explain is byte-identical to a fresh cold session.
        #[test]
        fn explains_after_any_single_fault_match_a_cold_session(
            point_idx in 0usize..FAULT_POINTS.len(),
            nth in 1u64..4,
            oom in 0u8..2,
            query_idx in 0usize..2,
        ) {
            let _scope = fault_scope();
            let point = FAULT_POINTS[point_idx];
            let queries = covid_queries();
            let q = &queries[query_idx];
            let session = covid_session();
            let kind = if oom == 1 { FaultKind::AllocFail } else { FaultKind::Panic };
            faults::arm(point, kind, nth);
            // The faulted attempt may fail (the nth hit was reached) or
            // succeed (it wasn't); both are legal. What is not legal is any
            // divergence afterwards.
            let _ = session.explain(q);
            faults::reset();
            let warm = session.explain(q).unwrap();
            let cold = covid_session();
            prop_assert_eq!(render(&warm), render(&cold.explain(q).unwrap()));
            // And the *other* query, computed entirely post-fault, matches too.
            let other = &queries[1 - query_idx];
            prop_assert_eq!(
                render(&session.explain(other).unwrap()),
                render(&cold.explain(other).unwrap())
            );
        }
    }
}
