//! Vendored stand-in for the `criterion` crate.
//!
//! The build environment has no network access to a crate registry, so this
//! crate implements the subset of the `criterion 0.5` API the workspace's
//! benches use — [`Criterion`], [`BenchmarkId`], benchmark groups with
//! `sample_size` / `warm_up_time` / `measurement_time`, `bench_function`,
//! `bench_with_input`, `iter`, [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — as a plain wall-clock
//! harness: each benchmark is warmed up, then timed for the configured
//! measurement window, and the **median**, min, max, and interquartile
//! spread of the per-iteration times are printed. The median is robust to
//! scheduler noise and GC-like stalls in a way a plain mean is not; compare
//! medians across commits, and treat runs whose IQR is a large fraction of
//! the median as too noisy to conclude anything from.
//!
//! ## Measurement protocol
//!
//! For stable numbers on Linux:
//!
//! * pin the process to one core — `taskset -c 2 cargo bench ...` — so the
//!   scheduler cannot migrate it mid-sample;
//! * disable frequency scaling on that core if possible
//!   (`cpupower frequency-set -g performance`), or at least let the warm-up
//!   window (default 300 ms) bring the core to its sustained clock;
//! * close other CPU consumers; on shared CI runners expect the IQR to be
//!   wide and compare medians only across runs of the same machine.
//!
//! No plots or baselines; swap the real crate back in for those.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group: a function name, an optional
/// parameter, or both.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A benchmark named `function_name` at parameter `parameter`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// A benchmark identified by its parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Calls `routine` repeatedly — first for the warm-up window, then for
    /// the measurement window — and records one duration per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warm_until = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_until {
            black_box(routine());
        }
        let measure_until = Instant::now() + self.measurement_time;
        while self.samples.len() < self.sample_size || Instant::now() < measure_until {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Shared knobs for a [`Criterion`] instance or a benchmark group.
#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

/// The benchmark manager: entry point handed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    config: Config,
    /// True when the binary was invoked by `cargo test`'s `--test` pass-through;
    /// benchmarks then run a single iteration as a smoke test.
    test_mode: bool,
}

impl Criterion {
    /// Applies command-line arguments (`--test` switches to one-shot smoke
    /// mode; everything else is accepted and ignored).
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    /// Sets the target number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up window.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            config: None,
        }
    }

    /// Benchmarks `f` under `name` (ungrouped).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let config = self.config.clone();
        let test_mode = self.test_mode;
        run_one(name, &config, test_mode, f);
        self
    }

    /// Prints the closing line after all groups have run.
    pub fn final_summary(&self) {
        println!("benchmark run complete");
    }
}

/// A named collection of benchmarks sharing configuration overrides.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    config: Option<Config>,
}

impl BenchmarkGroup<'_> {
    fn config_mut(&mut self) -> &mut Config {
        let base = self.criterion.config.clone();
        self.config.get_or_insert(base)
    }

    /// Sets the target number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config_mut().sample_size = n.max(1);
        self
    }

    /// Sets the warm-up window for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config_mut().warm_up_time = d;
        self
    }

    /// Sets the measurement window for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config_mut().measurement_time = d;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        let config = self
            .config
            .clone()
            .unwrap_or_else(|| self.criterion.config.clone());
        run_one(&label, &config, self.criterion.test_mode, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through to the closure.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        let config = self
            .config
            .clone()
            .unwrap_or_else(|| self.criterion.config.clone());
        run_one(&label, &config, self.criterion.test_mode, |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// The duration at rank `q` (in `[0, 1]`) of an ascending-sorted sample set,
/// interpolating linearly between neighbours.
fn quantile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        return sorted[lo];
    }
    let frac = pos - lo as f64;
    let a = sorted[lo].as_secs_f64();
    let b = sorted[hi].as_secs_f64();
    Duration::from_secs_f64(a + (b - a) * frac)
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, config: &Config, test_mode: bool, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        warm_up_time: if test_mode {
            Duration::ZERO
        } else {
            config.warm_up_time
        },
        measurement_time: if test_mode {
            Duration::ZERO
        } else {
            config.measurement_time
        },
        sample_size: if test_mode { 1 } else { config.sample_size },
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort();
    let median = quantile(&sorted, 0.5);
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    // Interquartile range: the spread of the central half of the samples.
    let iqr = quantile(&sorted, 0.75).saturating_sub(quantile(&sorted, 0.25));
    println!(
        "{label:<50} median {median:>12?}  min {min:>12?}  max {max:>12?}  iqr {iqr:>10?}  ({} samples)",
        sorted.len()
    );
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_interpolates() {
        let samples: Vec<Duration> = (1..=5).map(Duration::from_secs).collect();
        assert_eq!(quantile(&samples, 0.5), Duration::from_secs(3));
        assert_eq!(quantile(&samples, 0.0), Duration::from_secs(1));
        assert_eq!(quantile(&samples, 1.0), Duration::from_secs(5));
        let two: Vec<Duration> = vec![Duration::from_secs(1), Duration::from_secs(2)];
        assert_eq!(quantile(&two, 0.5), Duration::from_millis(1500));
        assert_eq!(quantile(&[], 0.5), Duration::ZERO);
    }
}
