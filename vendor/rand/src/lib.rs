//! Vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access to a crate registry, so this
//! crate provides the (small) subset of the `rand 0.8` API the workspace
//! actually uses: the [`Rng`] / [`SeedableRng`] traits, a deterministic
//! [`rngs::StdRng`], uniform ranges for the primitive types, `gen_bool`, and
//! [`seq::SliceRandom`] (Fisher–Yates shuffle / choose).
//!
//! The generator is SplitMix64: tiny, fast, and — crucially for the test
//! suite — **deterministic for a given seed on every platform**. It is *not*
//! the same stream as the real `StdRng` (ChaCha12), so swapping the real
//! crate back in will change the generated worlds but not any API.

#![warn(missing_docs)]

/// A source of 64-bit random words. Object-safe core of [`Rng`].
pub trait RngCore {
    /// Returns the next 64 random bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits of the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random number generator: user-facing sampling methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64` in `[0, 1)`, full-range integers, fair-coin `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator seeded from a single `u64`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that have a "standard" distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value from the standard distribution of `Self`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types that can be sampled uniformly from a range.
///
/// The blanket [`SampleRange`] impls below tie the generic parameter of
/// [`Rng::gen_range`] to the range's element type, which is what lets
/// `rng.gen_range(0.5..1.5)` infer `f64` the way the real crate does.
pub trait SampleUniform: Sized + PartialOrd + Copy {
    /// Uniform sample from the half-open interval `[low, high)`.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;

    /// Uniform sample from the closed interval `[low, high]`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u128;
                // Modulo bias is < span/2^64 — irrelevant for test data.
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low <= high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "cannot sample empty range");
                let u = <$t>::sample_standard(rng);
                low + u * (high - low)
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low <= high, "cannot sample empty range");
                let u = <$t>::sample_standard(rng);
                low + u * (high - low)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Ranges that can be sampled uniformly to produce a `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014). Full 2^64 period.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Extension trait on slices: shuffle and random choice.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..5).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..5).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = StdRng::seed_from_u64(43).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let i = r.gen_range(3..17);
            assert!((3..17).contains(&i));
            let f = r.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
            let n = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&n));
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits={hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
        assert!(v.choose(&mut r).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
