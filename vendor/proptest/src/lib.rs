//! Vendored stand-in for the `proptest` crate.
//!
//! The build environment has no network access to a crate registry, so this
//! crate implements the subset of the `proptest 1.x` API the workspace's
//! property tests use: the [`Strategy`] trait, uniform range strategies for
//! the primitive types, `prop::collection::vec`, [`ProptestConfig`], the
//! [`proptest!`] macro, and the `prop_assert*` macros.
//!
//! Inputs are generated from a **fixed per-test seed** (derived from the test
//! function's name), so runs are fully reproducible. There is no shrinking:
//! a failing case panics with the offending assertion directly.

#![warn(missing_docs)]

use rand::rngs::StdRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value using `rng`.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// `Just`-style constant strategy: always yields a clone of the value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Number-of-elements specification for collection strategies: either an
/// exact size or a half-open range of sizes.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy modules mirroring `proptest`'s namespaces (`prop::collection`).
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A strategy producing `Vec<S::Value>` with a size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// is drawn uniformly from `size` (a `usize` or a range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.min == self.size.max {
                self.size.min
            } else {
                rng.gen_range(self.size.min..=self.size.max)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Derives a stable 64-bit seed from a test name (FNV-1a).
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Everything a property test needs in scope: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};

    /// Namespace alias so `prop::collection::vec(...)` works as in proptest.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property test, reporting the generated case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    // With a leading #![proptest_config(...)] attribute.
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@tests $config; $($rest)*);
    };
    // Without: use the default config.
    ($(#[$meta:meta])* fn $($rest:tt)*) => {
        $crate::proptest!(@tests $crate::ProptestConfig::default(); $(#[$meta])* fn $($rest)*);
    };
    (@tests $config:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            // The captured metas include the conventional `#[test]` attribute
            // written inside the proptest! block, so none is added here.
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(
                    $crate::seed_for(stringify!($name)),
                );
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let run = || {
                        $body
                    };
                    if let Err(panic) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)) {
                        eprintln!(
                            "proptest case {case}/{} failed for {}",
                            config.cases,
                            stringify!($name),
                        );
                        $(eprintln!("  {} = {:?}", stringify!($arg), $arg);)+
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(crate::seed_for("a"), crate::seed_for("a"));
        assert_ne!(crate::seed_for("a"), crate::seed_for("b"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Vec strategy respects the requested length range.
        #[test]
        fn vec_lengths(v in prop::collection::vec(0u32..5, 2usize..9)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(x in -3i64..7, f in 0.25f64..0.75) {
            prop_assert!((-3..7).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
        }
    }
}
