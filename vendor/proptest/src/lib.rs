//! Vendored stand-in for the `proptest` crate.
//!
//! The build environment has no network access to a crate registry, so this
//! crate implements the subset of the `proptest 1.x` API the workspace's
//! property tests use: the [`Strategy`] trait, uniform range strategies for
//! the primitive types, `prop::collection::vec`, [`ProptestConfig`], the
//! [`proptest!`] macro, and the `prop_assert*` macros.
//!
//! Inputs are generated from a **fixed per-test seed** (derived from the test
//! function's name), so runs are fully reproducible. Failing cases are
//! **minimized** before being reported: integer strategies shrink toward the
//! low end of their range by binary search, vector strategies shrink by
//! dropping elements (halves first, then single elements) and by shrinking
//! individual elements. The greedy loop in [`shrink_to_minimal`] adopts any
//! candidate that still fails and repeats until a fixpoint (or a step budget),
//! then re-runs the minimal case so the test fails with its actual panic.

#![warn(missing_docs)]

use rand::rngs::StdRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value using `rng`.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Proposes strictly "smaller" variants of `value` to try during
    /// minimization. An empty vector means the value is already minimal (the
    /// default for strategies with no meaningful shrink order).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

/// Shrink candidates for an integer `current`, anchored at the range's `low`
/// end: the full bisection ladder `current - gap/2^k` for k = 0.. (i.e. the
/// low end, the midpoint, the three-quarter point, ..., `current - 1`). The
/// greedy loop in [`shrink_to_minimal`] adopts the first failing rung, so the
/// distance to the true failure boundary at least halves per pass — a
/// stateless binary search.
macro_rules! int_shrink_candidates {
    ($t:ty, $low:expr, $current:expr) => {{
        let low: $t = $low;
        let current: $t = $current;
        let mut out: Vec<$t> = Vec::new();
        let gap = current as i128 - low as i128;
        let mut step = gap;
        while step > 0 {
            let candidate = (current as i128 - step) as $t;
            if out.last() != Some(&candidate) {
                out.push(candidate);
            }
            step /= 2;
        }
        out
    }};
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_shrink_candidates!($t, self.start, *value)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_shrink_candidates!($t, *self.start(), *value)
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Floats generate uniformly but do not shrink: there is no discrete "one
// smaller" step, and the workspace's float proptests assert range/structure
// properties where minimization buys nothing.
macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}
impl_float_range_strategy!(f64);

/// `Just`-style constant strategy: always yields a clone of the value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
        (**self).shrink(value)
    }
}

/// Tuples of strategies generate component-wise in declaration order (so the
/// RNG stream matches drawing each component separately) and shrink one
/// component at a time, holding the others fixed.
macro_rules! impl_tuple_strategy {
    ($(($($S:ident . $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+)
        where
            $($S::Value: Clone),+
        {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut tuple = value.clone();
                        tuple.$idx = candidate;
                        out.push(tuple);
                    }
                )+
                out
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Number-of-elements specification for collection strategies: either an
/// exact size or a half-open range of sizes.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy modules mirroring `proptest`'s namespaces (`prop::collection`).
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A strategy producing `Vec<S::Value>` with a size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// is drawn uniformly from `size` (a `usize` or a range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.min == self.size.max {
                self.size.min
            } else {
                rng.gen_range(self.size.min..=self.size.max)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out: Vec<Vec<S::Value>> = Vec::new();
            let len = value.len();
            // Element dropping: second half, first half, then each single
            // element — never below the strategy's minimum length.
            let half = len / 2;
            if half >= self.size.min && half < len {
                out.push(value[..half].to_vec());
                out.push(value[len - half..].to_vec());
            }
            if len > self.size.min {
                for i in 0..len {
                    let mut v = value.clone();
                    v.remove(i);
                    out.push(v);
                }
            }
            // Element shrinking: one position at a time, keeping the length.
            for (i, elem) in value.iter().enumerate() {
                for candidate in self.element.shrink(elem) {
                    let mut v = value.clone();
                    v[i] = candidate;
                    out.push(v);
                }
            }
            out
        }
    }
}

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Derives a stable 64-bit seed from a test name (FNV-1a).
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Cap on candidate evaluations per shrink session, so a pathological
/// predicate (e.g. one that fails for *every* candidate of a huge vector)
/// cannot stall a test run. 1024 evaluations is enough for binary search over
/// any 64-bit range plus element dropping on the workspace's vector sizes.
pub const MAX_SHRINK_EVALS: usize = 1024;

/// Greedily minimizes `current` under `strategy`'s shrink order: any proposed
/// candidate for which `fails` returns `true` is adopted and shrinking
/// restarts from it, until no candidate fails (a local minimum) or
/// [`MAX_SHRINK_EVALS`] candidate evaluations have been spent.
///
/// Returns the minimal failing value and the number of candidates evaluated.
pub fn shrink_to_minimal<S: Strategy>(
    strategy: &S,
    mut current: S::Value,
    mut fails: impl FnMut(&S::Value) -> bool,
) -> (S::Value, usize)
where
    S::Value: Clone,
{
    let mut evals = 0usize;
    'outer: loop {
        for candidate in strategy.shrink(&current) {
            if evals >= MAX_SHRINK_EVALS {
                break 'outer;
            }
            evals += 1;
            if fails(&candidate) {
                current = candidate;
                continue 'outer;
            }
        }
        break;
    }
    (current, evals)
}

/// Runs `f` with this thread's panic messages suppressed, so the many
/// intentionally-failing candidate runs during shrinking do not spam the test
/// output. Panics on *other* threads still print normally, and the hook
/// chain is installed once per process.
pub fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    use std::cell::Cell;
    use std::sync::Once;

    thread_local! {
        static QUIET: Cell<bool> = const { Cell::new(false) };
    }
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET.with(|q| q.get()) {
                previous(info);
            }
        }));
    });
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            QUIET.with(|q| q.set(false));
        }
    }
    QUIET.with(|q| q.set(true));
    let _reset = Reset;
    f()
}

/// Drives one generated case for the [`proptest!`] macro: run it, and if it
/// fails, shrink it to a local minimum (quietly), report the minimal
/// arguments via `report`, and re-run the minimal case so the test fails
/// with its actual panic. Returns normally when the case passes.
///
/// This lives in the library rather than in the macro expansion so the
/// `runner`/`report` closures get their parameter types pinned by this
/// function's signature (closure bodies that destructure the generated tuple
/// cannot be type-checked otherwise).
pub fn run_proptest_case<S, F>(
    name: &str,
    case: u32,
    cases: u32,
    strategy: &S,
    vals: S::Value,
    mut runner: F,
    report: impl FnOnce(&S::Value),
) where
    S: Strategy,
    S::Value: Clone,
    F: FnMut(S::Value) -> Result<(), Box<dyn std::any::Any + Send>>,
{
    let first_panic = match runner(vals.clone()) {
        Ok(()) => return,
        Err(panic) => panic,
    };
    let (minimal, evals) = with_quiet_panics(|| {
        shrink_to_minimal(strategy, vals, |candidate| {
            runner(candidate.clone()).is_err()
        })
    });
    eprintln!("proptest case {case}/{cases} failed for {name}; minimal case after {evals} candidate run(s):");
    report(&minimal);
    // Re-run un-silenced so the test fails with the minimal case's actual
    // panic; if the body is flaky and no longer fails, fall back to the
    // original panic.
    match runner(minimal) {
        Err(panic) => std::panic::resume_unwind(panic),
        Ok(()) => std::panic::resume_unwind(first_panic),
    }
}

/// Everything a property test needs in scope: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};

    /// Namespace alias so `prop::collection::vec(...)` works as in proptest.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property test, reporting the generated case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases, shrinking
/// any failing case to a local minimum before reporting it.
#[macro_export]
macro_rules! proptest {
    // With a leading #![proptest_config(...)] attribute.
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@tests $config; $($rest)*);
    };
    // Without: use the default config.
    ($(#[$meta:meta])* fn $($rest:tt)*) => {
        $crate::proptest!(@tests $crate::ProptestConfig::default(); $(#[$meta])* fn $($rest)*);
    };
    (@tests $config:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            // The captured metas include the conventional `#[test]` attribute
            // written inside the proptest! block, so none is added here.
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(
                    $crate::seed_for(stringify!($name)),
                );
                // One tuple strategy over all the arguments: generation draws
                // components in declaration order, exactly as the pre-shrink
                // macro did, so existing per-test streams are unchanged.
                let strategy = ($(($strategy),)+);
                for case in 0..config.cases {
                    let vals = $crate::Strategy::generate(&strategy, &mut rng);
                    $crate::run_proptest_case(
                        stringify!($name),
                        case,
                        config.cases,
                        &strategy,
                        vals,
                        |vals| {
                            let ($($arg,)+) = vals;
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                                $body
                            }))
                            .map(|_| ())
                        },
                        |minimal| {
                            let ($($arg,)+) = ::std::clone::Clone::clone(minimal);
                            $(eprintln!("  {} = {:?}", stringify!($arg), $arg);)+
                        },
                    );
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::{shrink_to_minimal, with_quiet_panics};

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(crate::seed_for("a"), crate::seed_for("a"));
        assert_ne!(crate::seed_for("a"), crate::seed_for("b"));
    }

    #[test]
    fn integer_shrink_converges_by_binary_search() {
        // Failing iff v >= 37: the minimum must land exactly on 37, and in
        // far fewer evaluations than the 963 a linear scan would need.
        let strategy = 0u32..1000;
        let (minimal, evals) = shrink_to_minimal(&strategy, 912u32, |v| *v >= 37);
        assert_eq!(minimal, 37);
        assert!(evals < 64, "binary search took {evals} evals");
    }

    #[test]
    fn integer_shrink_reaches_range_low_end() {
        let strategy = -8i64..=100;
        let (minimal, _) = shrink_to_minimal(&strategy, 73i64, |_| true);
        assert_eq!(minimal, -8);
    }

    #[test]
    fn integer_shrink_keeps_already_minimal_value() {
        let strategy = 5u8..20;
        let (minimal, evals) = shrink_to_minimal(&strategy, 5u8, |v| *v >= 5);
        assert_eq!(minimal, 5);
        assert_eq!(evals, 0, "no candidates should be proposed for the low end");
    }

    #[test]
    fn vec_shrink_drops_elements_and_shrinks_survivors() {
        // Failing iff any element >= 50: minimal case is a single element
        // shrunk down to exactly 50.
        let strategy = prop::collection::vec(0u32..100, 0usize..=10);
        let value = vec![5, 80, 3, 99, 4];
        let (minimal, _) = shrink_to_minimal(&strategy, value, |v| v.iter().any(|&x| x >= 50));
        assert_eq!(minimal, vec![50]);
    }

    #[test]
    fn vec_shrink_respects_min_size() {
        let strategy = prop::collection::vec(0u32..10, 2usize..=5);
        let (minimal, _) = shrink_to_minimal(&strategy, vec![7, 7, 7, 7, 7], |_| true);
        assert_eq!(minimal.len(), 2, "shrink must not go below the min size");
    }

    #[test]
    fn tuple_shrink_minimizes_each_component() {
        let strategy = (0u32..100, 0u32..100);
        let (minimal, _) = shrink_to_minimal(&strategy, (60u32, 90u32), |&(a, b)| a + b >= 10);
        // Greedy per-component shrink lands on a Pareto-minimal pair.
        assert_eq!(minimal.0 + minimal.1, 10);
    }

    #[test]
    fn shrink_eval_budget_is_respected() {
        // Every candidate fails and the range is enormous, but the budget
        // bounds the work.
        let strategy = 0u64..u64::MAX;
        let (_, evals) = shrink_to_minimal(&strategy, u64::MAX - 1, |_| false);
        assert!(evals <= crate::MAX_SHRINK_EVALS);
    }

    #[test]
    fn quiet_panics_still_catches_and_returns() {
        let caught = with_quiet_panics(|| {
            std::panic::catch_unwind(|| panic!("silenced candidate panic")).is_err()
        });
        assert!(caught);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Vec strategy respects the requested length range.
        #[test]
        fn vec_lengths(v in prop::collection::vec(0u32..5, 2usize..9)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(x in -3i64..7, f in 0.25f64..0.75) {
            prop_assert!((-3..7).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
        }
    }
}
