//! The `fuzz` runner: generates adversarial scenarios, checks every oracle
//! family, minimizes any failure, and records throughput to
//! `BENCH_fuzz.json`.
//!
//! ```text
//! cargo run --release -p fuzz -- --seed 0xMESA --scenarios 200
//! cargo run --release -p fuzz -- --seed <failing> --scenarios 1   # replay
//! cargo run --release -p fuzz -- --sabotage sealed --scenarios 5  # self-test
//! ```
//!
//! `--seed` accepts a decimal integer, a `0x…` hex integer, or — for
//! anything else (including the canonical `0xMESA`, which is not valid
//! hex) — an arbitrary string hashed with FNV-1a. Scenario 0 of a run uses
//! the master seed itself, so a printed per-scenario seed replays directly
//! with `--scenarios 1`.

use std::process::ExitCode;
use std::time::Instant;

use fuzz::{check, minimize, scenario_seed, HandCase, Sabotage, Scenario};

struct Args {
    seed_raw: String,
    seed: u64,
    scenarios: usize,
    budget_ms: u64,
    sabotage: Sabotage,
}

/// FNV-1a over the raw string, the same construction the vendored proptest
/// uses for per-test seeds.
fn hash_seed(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn parse_seed(s: &str) -> u64 {
    if let Ok(v) = s.parse::<u64>() {
        return v;
    }
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        if let Ok(v) = u64::from_str_radix(hex, 16) {
            return v;
        }
    }
    hash_seed(s)
}

fn usage() -> ! {
    eprintln!(
        "usage: fuzz [--seed S] [--scenarios N] [--budget-ms M] [--sabotage none|sealed|fingerprint]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        seed_raw: "0xMESA".to_string(),
        seed: 0,
        scenarios: 100,
        budget_ms: 0,
        sabotage: Sabotage::None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--seed" => args.seed_raw = value(),
            "--scenarios" => {
                args.scenarios = value().parse().unwrap_or_else(|_| usage());
            }
            "--budget-ms" => {
                args.budget_ms = value().parse().unwrap_or_else(|_| usage());
            }
            "--sabotage" => {
                args.sabotage = match value().as_str() {
                    "none" => Sabotage::None,
                    "sealed" => Sabotage::Sealed,
                    "fingerprint" => Sabotage::Fingerprint,
                    _ => usage(),
                }
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args.seed = parse_seed(&args.seed_raw);
    args
}

/// Prints a failure, minimizes it, and prints the reduced scenario plus the
/// replay command line. Returns the minimized column count.
fn report_failure(scenario: &Scenario, failure: &fuzz::OracleFailure, sabotage: Sabotage) -> usize {
    println!("\nFAIL {failure}");
    println!("--- failing scenario ---\n{}", scenario.describe());
    match minimize(scenario, sabotage) {
        Some(outcome) => {
            println!(
                "--- minimized ({} oracle evals) ---\n{}",
                outcome.evals,
                outcome.scenario.describe()
            );
            println!("minimized failure: {}", outcome.failure);
            println!(
                "replay: cargo run --release -p fuzz -- --seed {:#x} --scenarios 1",
                scenario.seed
            );
            outcome.scenario.df.n_cols()
        }
        None => {
            println!("(failure did not reproduce during minimization — flaky oracle?)");
            scenario.df.n_cols()
        }
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let pool = mesa::parallel::set_threads(4);
    let fault_family = cfg!(feature = "fault-injection");
    println!(
        "fuzz: seed {} -> {:#x}, {} scenarios, pool={pool}, fault-recovery {}",
        args.seed_raw,
        args.seed,
        args.scenarios,
        if fault_family {
            "on"
        } else {
            "off (build with --features fault-injection)"
        },
    );

    let started = Instant::now();
    let budget_exceeded = |started: &Instant| {
        args.budget_ms > 0 && started.elapsed().as_millis() as u64 >= args.budget_ms
    };

    let mut report = bench::BenchReport::new("fuzz");
    let mut samples_ms: Vec<f64> = Vec::new();
    let mut families_seen: Vec<&'static str> = Vec::new();
    let mut ran = 0usize;

    // The three committed hand cases always run first — they are the fixed
    // smoke floor under every seed.
    let hand_cases = [
        HandCase::AllNullColumn,
        HandCase::CardinalityOneKey,
        HandCase::FiveHopChain,
    ];
    let generated = (0..args.scenarios).map(|i| scenario_seed(args.seed, i));
    let scenarios = hand_cases
        .iter()
        .map(|&c| Scenario::hand(c))
        .chain(generated.map(Scenario::from_seed));

    for scenario in scenarios {
        if budget_exceeded(&started) {
            println!(
                "budget of {} ms exhausted after {ran} scenarios",
                args.budget_ms
            );
            break;
        }
        let t0 = Instant::now();
        let result = check(&scenario, args.sabotage);
        samples_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        ran += 1;
        match result {
            Ok(families) => {
                for f in families {
                    if !families_seen.contains(&f) {
                        families_seen.push(f);
                    }
                }
                if ran.is_multiple_of(25) {
                    println!(
                        "  {ran} scenarios ok ({:.1}s elapsed)",
                        started.elapsed().as_secs_f64()
                    );
                }
            }
            Err(failure) => {
                let cols = report_failure(&scenario, &failure, args.sabotage);
                report.record("fuzz/scenarios", ran, &samples_ms);
                report.write_or_warn();
                return if args.sabotage == Sabotage::None {
                    ExitCode::FAILURE
                } else if cols <= 5 {
                    println!("\nsabotage caught and shrunk to {cols} columns — minimizer OK");
                    ExitCode::SUCCESS
                } else {
                    println!("\nsabotage caught but only shrunk to {cols} columns (> 5)");
                    ExitCode::FAILURE
                };
            }
        }
    }

    if args.sabotage != Sabotage::None {
        println!("sabotage escaped every oracle over {ran} scenarios");
        return ExitCode::FAILURE;
    }

    let median = report.record("fuzz/scenarios", ran, &samples_ms);
    report.write_or_warn();
    let per_sec = if median > 0.0 {
        1000.0 / median
    } else {
        f64::INFINITY
    };
    println!(
        "ok: {ran} scenarios, families exercised: {families_seen:?}, median {median:.1} ms/scenario ({per_sec:.1}/s), total {:.1}s",
        started.elapsed().as_secs_f64()
    );
    ExitCode::SUCCESS
}
