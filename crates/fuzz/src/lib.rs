//! # fuzz
//!
//! Differential scenario fuzzer for the MESA workspace: adversarial schemas
//! crossed with pipeline-invariant oracles.
//!
//! Every layer of the system carries a byte-identity or equivalence
//! invariant — warm ≡ cold ≡ batched sessions, `join` ≡ `join_rendered`,
//! sealed ≡ dense ≡ sparse kernel counts, thread caps 1/2/4 byte-identical,
//! fault-injected-then-recovered ≡ fresh, and fingerprint non-aliasing.
//! Historically those were locked only over the three fixed paper datasets;
//! this crate asserts them over *generated* scenarios instead:
//!
//! - [`scenario`] materializes a random [`Scenario`] (table + knowledge
//!   graph + queries + config crossing) from a single `u64` seed, using the
//!   adversarial generators in `datagen::adversarial`.
//! - [`harness`] runs one scenario through the full
//!   prepare → extract → kernel → MCIMR → session pipeline under every
//!   oracle family and reports the first violated invariant.
//! - [`minimize()`] greedily shrinks a failing scenario (drop queries, halve
//!   rows, drop columns, truncate the graph) while the same oracle family
//!   keeps failing, so regressions are committed at their minimal size.
//!
//! The `fuzz` binary (`cargo run -p fuzz -- --seed 0xMESA --scenarios 200`)
//! drives all three and records throughput to `BENCH_fuzz.json`. A
//! deliberately broken oracle (`--sabotage sealed`) demonstrates end-to-end
//! that violations are caught and shrunk.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod harness;
pub mod minimize;
pub mod scenario;

pub use harness::{check, check_family, OracleFailure, Sabotage, ORACLE_FAMILIES};
pub use minimize::{minimize, MinimizeOutcome};
pub use scenario::{scenario_seed, HandCase, Scenario};
