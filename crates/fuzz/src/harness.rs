//! The differential harness: runs one [`Scenario`] through the full
//! prepare → extract → kernel → MCIMR → session pipeline under crossed
//! configurations and asserts the workspace's six standing oracle families.
//!
//! Every oracle compares *renderings* (human summary + `Debug` of the full
//! explanation, which prints every `f64` bit-exactly) or canonicalized joint
//! counts compared bitwise, so "equivalent" always means byte-identical.
//! Deterministic pipeline **errors** are rendered too: an adversarial
//! scenario is allowed to fail a query, but it must fail it with the same
//! error on every path.

use std::borrow::Borrow;

use infotheory::kernel::{accumulate_views, try_accumulate, Accumulated};
use mesa::{report_summary, Mesa, MesaError, MesaReport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tabular::{join, join_rendered, ColumnView, DType, JoinKind, Predicate, SealedColumn};

use crate::scenario::Scenario;

/// The six oracle families, in the order [`check`] runs them.
pub const ORACLE_FAMILIES: [&str; 6] = [
    "session-identity",
    "join-equivalence",
    "kernel-equivalence",
    "thread-identity",
    "fault-recovery",
    "fingerprint",
];

/// A deliberate oracle break, used to prove the harness catches violations
/// and the minimizer shrinks them (`fuzz --sabotage …` and the in-crate
/// self-tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sabotage {
    /// No sabotage: the production configuration.
    None,
    /// Perturb the sealed-path joint counts by one before comparison,
    /// simulating a broken sealed kernel (the "skip sealing" break from the
    /// acceptance criteria).
    Sealed,
    /// Truncate query fingerprints to 6 bytes before comparison, simulating
    /// a lossy cache key.
    Fingerprint,
}

/// A violated invariant: which family, and a bounded human-readable detail.
#[derive(Debug, Clone)]
pub struct OracleFailure {
    /// The violated family (one of [`ORACLE_FAMILIES`]).
    pub family: &'static str,
    /// What differed, truncated to a sane length.
    pub detail: String,
}

impl std::fmt::Display for OracleFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.family, self.detail)
    }
}

fn fail(family: &'static str, detail: String) -> OracleFailure {
    const MAX: usize = 600;
    let detail = if detail.len() > MAX {
        let cut = (0..=MAX)
            .rev()
            .find(|&i| detail.is_char_boundary(i))
            .unwrap_or(0);
        format!("{}… ({} bytes)", &detail[..cut], detail.len())
    } else {
        detail
    };
    OracleFailure { family, detail }
}

/// Exact rendering of everything a caller can observe about a pipeline
/// outcome: the human summary plus the full-precision explanation, or the
/// structured error.
fn render_outcome<T: Borrow<MesaReport>>(r: &Result<T, MesaError>) -> String {
    match r {
        Ok(rep) => {
            let rep = rep.borrow();
            format!("{}\n{:?}", report_summary(rep), rep.explanation)
        }
        Err(e) => format!("error: {e:?}"),
    }
}

/// Runs every oracle family over `scenario`, returning the families that
/// actually executed, or the first violation.
pub fn check(scenario: &Scenario, sabotage: Sabotage) -> Result<Vec<&'static str>, OracleFailure> {
    // The fault registry is process-global: serialize whole checks so a
    // point armed by one thread's fault-recovery family cannot fire inside
    // another thread's pipeline run (test binaries run checks in parallel).
    #[cfg(feature = "fault-injection")]
    let _guard = fault_lock();

    let mut ran = Vec::new();
    for family in ORACLE_FAMILIES {
        if check_family_inner(scenario, sabotage, family)? {
            ran.push(family);
        }
    }
    Ok(ran)
}

/// Runs a single oracle family (used by the minimizer, which only needs to
/// know whether the *same* family still fails). Returns `Ok(false)` when the
/// family is compiled out or not applicable to this scenario.
pub fn check_family(
    scenario: &Scenario,
    sabotage: Sabotage,
    family: &str,
) -> Result<bool, OracleFailure> {
    #[cfg(feature = "fault-injection")]
    let _guard = fault_lock();
    check_family_inner(scenario, sabotage, family)
}

#[cfg(feature = "fault-injection")]
fn fault_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn check_family_inner(
    scenario: &Scenario,
    sabotage: Sabotage,
    family: &str,
) -> Result<bool, OracleFailure> {
    match family {
        "session-identity" => session_identity(scenario).map(|()| true),
        "join-equivalence" => join_equivalence(scenario).map(|()| true),
        "kernel-equivalence" => kernel_equivalence(scenario, sabotage).map(|()| true),
        "thread-identity" => thread_identity(scenario).map(|()| true),
        "fault-recovery" => fault_recovery(scenario),
        "fingerprint" => fingerprint_non_aliasing(scenario, sabotage).map(|()| true),
        other => Err(fail(
            "fingerprint",
            format!("unknown oracle family {other:?}"),
        )),
    }
}

fn extraction_cols(scenario: &Scenario) -> Vec<&str> {
    scenario
        .extraction_columns
        .iter()
        .map(String::as_str)
        .collect()
}

/// Oracle 1: warm ≡ cold ≡ batched. A fresh one-shot pipeline per query, the
/// first and second session serve of the same query, and `explain_many` over
/// the whole workload must all render byte-identically.
fn session_identity(scenario: &Scenario) -> Result<(), OracleFailure> {
    const FAMILY: &str = "session-identity";
    let mesa = Mesa::with_config(scenario.config);
    let cols = extraction_cols(scenario);
    let graph = Some(&scenario.graph);

    let cold: Vec<String> = scenario
        .queries
        .iter()
        .map(|q| render_outcome(&mesa.explain(&scenario.df, q, graph, &cols)))
        .collect();

    let session = mesa.session(&scenario.df, graph, &cols);
    for (i, q) in scenario.queries.iter().enumerate() {
        let first = render_outcome(&session.explain(q));
        if first != cold[i] {
            return Err(fail(
                FAMILY,
                format!(
                    "query {i} session-first != cold\n--- cold ---\n{}\n--- session ---\n{first}",
                    cold[i]
                ),
            ));
        }
        let warm = render_outcome(&session.explain(q));
        if warm != first {
            return Err(fail(
                FAMILY,
                format!("query {i} warm != first\n--- first ---\n{first}\n--- warm ---\n{warm}"),
            ));
        }
    }

    let batch_session = mesa.session(&scenario.df, graph, &cols);
    let batched = batch_session.explain_many(&scenario.queries);
    for (i, outcome) in batched.iter().enumerate() {
        let rendered = render_outcome(outcome);
        if rendered != cold[i] {
            return Err(fail(
                FAMILY,
                format!(
                    "query {i} batched != cold\n--- cold ---\n{}\n--- batched ---\n{rendered}",
                    cold[i]
                ),
            ));
        }
    }
    Ok(())
}

/// Oracle 2: `join` ≡ `join_rendered` (the reference implementation), for
/// both join kinds, over the frame joined against the KG-extracted attribute
/// table and against a slice of itself keyed by a non-float column. Float
/// keys are excluded: their divergence is documented in `tabular::join`.
fn join_equivalence(scenario: &Scenario) -> Result<(), OracleFailure> {
    const FAMILY: &str = "join-equivalence";
    let mut pairs: Vec<(tabular::DataFrame, String, String)> = Vec::new();

    if let Some(key) = scenario.extraction_columns.first() {
        if let Ok(col) = scenario.df.column(key) {
            let values: Vec<String> = col.encode().labels().to_vec();
            if let Ok(extracted) = kg::extract_attributes(
                &scenario.graph,
                &values,
                "__fuzz_key",
                scenario.config.prepare.extraction,
            ) {
                pairs.push((extracted.table, key.clone(), extracted.key_column));
            }
        }
    }

    // Self-derived right table: the first non-float column as key plus a
    // row-index marker, so gathered right rows are distinguishable.
    if let Some(col) = scenario.df.columns().find(|c| c.dtype() != DType::Float) {
        let marker = tabular::Column::from_i64(
            "__fuzz_marker",
            (0..col.len()).map(|i| Some(i as i64)).collect(),
        );
        let right =
            tabular::DataFrame::from_columns(vec![col.with_name("__fuzz_right_key"), marker])
                .expect("right table columns share one length");
        pairs.push((right, col.name().to_string(), "__fuzz_right_key".into()));
    }

    for (right, left_on, right_on) in &pairs {
        for kind in [JoinKind::Left, JoinKind::Inner] {
            let fast = join(&scenario.df, right, left_on, right_on, kind);
            let reference = join_rendered(&scenario.df, right, left_on, right_on, kind);
            match (&fast, &reference) {
                (Ok(a), Ok(b)) if a == b => {}
                (Err(ea), Err(eb)) if format!("{ea:?}") == format!("{eb:?}") => {}
                _ => {
                    return Err(fail(
                        FAMILY,
                        format!(
                            "{kind:?} join on {left_on:?}={right_on:?} diverged: fast={:?} reference={:?}",
                            fast.as_ref().map(|f| (f.n_rows(), f.n_cols())),
                            reference.as_ref().map(|f| (f.n_rows(), f.n_cols())),
                        ),
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Canonical form of accumulated joint counts: observed cells sorted by key
/// with bit-exact weights, plus total weight bits and complete-case count.
fn canonical(acc: &Accumulated) -> (Vec<(Vec<u32>, u64)>, u64, usize) {
    let mut cells: Vec<(Vec<u32>, u64)> = acc
        .counts
        .iter_keyed()
        .map(|(k, w)| (k, w.to_bits()))
        .collect();
    cells.sort();
    (cells, acc.total.to_bits(), acc.complete_cases)
}

/// Oracle 3: sealed ≡ dense ≡ sparse kernel counts, bitwise. Samples a few
/// 2–3 column tuples from the frame and accumulates each through the dense
/// path (huge cell budget), the sparse path (zero budget), and the sealed
/// path (both budgets), unweighted and — for a seed-chosen half of the
/// scenarios — with a zero-containing weight vector.
fn kernel_equivalence(scenario: &Scenario, sabotage: Sabotage) -> Result<(), OracleFailure> {
    const FAMILY: &str = "kernel-equivalence";
    let encoded: Vec<tabular::EncodedColumn> = scenario.df.columns().map(|c| c.encode()).collect();
    if encoded.len() < 2 {
        return Ok(());
    }
    let mut rng = StdRng::seed_from_u64(scenario.seed ^ 0x6B65_726E);
    let n_rows = scenario.df.n_rows();
    let weights: Option<Vec<f64>> = rng
        .gen_bool(0.5)
        .then(|| (0..n_rows).map(|i| (i % 4) as f64).collect());

    let n_tuples = 3.min(encoded.len());
    for _ in 0..n_tuples {
        let size = if encoded.len() >= 3 && rng.gen_bool(0.4) {
            3
        } else {
            2
        };
        let mut idx: Vec<usize> = Vec::new();
        while idx.len() < size {
            let i = rng.gen_range(0..encoded.len());
            if !idx.contains(&i) {
                idx.push(i);
            }
        }
        let refs: Vec<&tabular::EncodedColumn> = idx.iter().map(|&i| &encoded[i]).collect();
        let sealed: Vec<SealedColumn> = refs.iter().map(|e| e.seal()).collect();
        let views: Vec<ColumnView<'_>> = sealed.iter().map(ColumnView::from).collect();

        for (budget_name, budget) in [("dense", 1usize << 22), ("sparse", 0usize)] {
            let plain = match try_accumulate(&refs, weights.as_deref(), budget) {
                Ok(acc) => acc,
                Err(e) => {
                    return Err(fail(
                        FAMILY,
                        format!("accumulate({budget_name}) rejected valid input: {e:?}"),
                    ))
                }
            };
            let via_sealed = accumulate_views(&views, weights.as_deref(), budget);
            let reference = canonical(&plain);
            let mut sealed_canonical = canonical(&via_sealed);
            if sabotage == Sabotage::Sealed {
                match sealed_canonical.0.first_mut() {
                    Some(cell) => cell.1 = f64::from_bits(cell.1).mul_add(1.0, 1.0).to_bits(),
                    None => sealed_canonical.0.push((vec![0; size], 1.0f64.to_bits())),
                }
            }
            if reference != sealed_canonical {
                return Err(fail(
                    FAMILY,
                    format!(
                        "sealed != {budget_name} for columns {:?} (weights: {}): {} vs {} cells, totals {:x} vs {:x}",
                        idx,
                        weights.is_some(),
                        reference.0.len(),
                        sealed_canonical.0.len(),
                        reference.1,
                        sealed_canonical.1,
                    ),
                ));
            }
        }

        // Dense and sparse budgets of the plain path must agree with each
        // other too (the crossover itself must be invisible).
        let dense = canonical(&try_accumulate(&refs, weights.as_deref(), 1 << 22).unwrap());
        let sparse = canonical(&try_accumulate(&refs, weights.as_deref(), 0).unwrap());
        if dense != sparse {
            return Err(fail(
                FAMILY,
                format!(
                    "dense != sparse for columns {idx:?}: {} vs {} cells",
                    dense.0.len(),
                    sparse.0.len()
                ),
            ));
        }
    }
    Ok(())
}

/// Oracle 4: thread caps 1/2/4 render byte-identically. The whole session
/// workload (per-query explains plus `explain_many`) is rendered under each
/// cap; caps above the actual pool size are skipped (CI is single-core).
fn thread_identity(scenario: &Scenario) -> Result<(), OracleFailure> {
    const FAMILY: &str = "thread-identity";
    let pool = mesa::parallel::set_threads(4);
    let render_all = || {
        let mesa = Mesa::with_config(scenario.config);
        let cols = extraction_cols(scenario);
        let session = mesa.session(&scenario.df, Some(&scenario.graph), &cols);
        let mut out = String::new();
        for q in &scenario.queries {
            out.push_str(&render_outcome(&session.explain(q)));
            out.push('\n');
        }
        for outcome in session.explain_many(&scenario.queries) {
            out.push_str(&render_outcome(&outcome));
            out.push('\n');
        }
        out
    };
    let reference = mesa::parallel::with_thread_cap(1, render_all);
    for cap in [2usize, 4] {
        if cap > pool {
            continue;
        }
        let at_cap = mesa::parallel::with_thread_cap(cap, render_all);
        if at_cap != reference {
            return Err(fail(
                FAMILY,
                format!(
                    "cap {cap} != cap 1\n--- cap 1 ---\n{reference}\n--- cap {cap} ---\n{at_cap}"
                ),
            ));
        }
    }
    Ok(())
}

/// Oracle 5 (requires the `fault-injection` feature): a session that
/// suffered an injected panic mid-pipeline and was then reset must serve the
/// whole workload byte-identically to a fresh cold session. Returns
/// `Ok(false)` when compiled out.
#[cfg(feature = "fault-injection")]
fn fault_recovery(scenario: &Scenario) -> Result<bool, OracleFailure> {
    const FAMILY: &str = "fault-recovery";
    use mesa::faults::{self, FaultKind, NAMED_POINTS};

    let point = NAMED_POINTS[(scenario.seed as usize) % NAMED_POINTS.len()];
    let mesa = Mesa::with_config(scenario.config);
    let cols = extraction_cols(scenario);

    faults::reset();
    faults::arm(point, FaultKind::Panic, 1);
    let wounded = mesa.session(&scenario.df, Some(&scenario.graph), &cols);
    // May hit the armed point (contained as MesaError::Internal) or miss it
    // entirely when this scenario never reaches that pipeline stage — both
    // are fine; the invariant is about what happens *after* recovery.
    let during = render_outcome(&wounded.explain(&scenario.queries[0]));
    faults::reset();

    let fresh = mesa.session(&scenario.df, Some(&scenario.graph), &cols);
    for (i, q) in scenario.queries.iter().enumerate() {
        let recovered = render_outcome(&wounded.explain(q));
        let cold = render_outcome(&fresh.explain(q));
        if recovered != cold {
            return Err(fail(
                FAMILY,
                format!(
                    "point {point:?}: recovered query {i} != fresh (during-fault outcome was {})\n--- fresh ---\n{cold}\n--- recovered ---\n{recovered}",
                    during.lines().next().unwrap_or(""),
                ),
            ));
        }
    }
    Ok(true)
}

#[cfg(not(feature = "fault-injection"))]
fn fault_recovery(_scenario: &Scenario) -> Result<bool, OracleFailure> {
    Ok(false)
}

/// Oracle 6: fingerprint non-aliasing. Structurally distinct queries (the
/// scenario's own plus systematic mutants: every aggregate function, the
/// stripped context, the swapped exposure/outcome) must have pairwise
/// distinct fingerprints, and clones must fingerprint identically.
fn fingerprint_non_aliasing(scenario: &Scenario, sabotage: Sabotage) -> Result<(), OracleFailure> {
    const FAMILY: &str = "fingerprint";
    use tabular::AggFn;

    let mut queries: Vec<tabular::AggregateQuery> = Vec::new();
    for q in &scenario.queries {
        queries.push(q.clone());
        for agg in [
            AggFn::Count,
            AggFn::Sum,
            AggFn::Mean,
            AggFn::Min,
            AggFn::Max,
            AggFn::Median,
            AggFn::Std,
        ] {
            queries.push(q.clone().with_agg(agg));
        }
        if q.context != Predicate::True {
            queries.push(q.clone().with_context(Predicate::True));
        }
        let mut swapped = q.clone();
        std::mem::swap(&mut swapped.exposure, &mut swapped.outcome);
        queries.push(swapped);
    }

    let fp = |q: &tabular::AggregateQuery| -> String {
        let full = q.fingerprint();
        match sabotage {
            Sabotage::Fingerprint => full.chars().take(6).collect(),
            _ => full,
        }
    };

    for (i, a) in queries.iter().enumerate() {
        let clone_fp = fp(&a.clone());
        if clone_fp != fp(a) {
            return Err(fail(
                FAMILY,
                format!("clone of query {i} changed fingerprint"),
            ));
        }
        for (j, b) in queries.iter().enumerate().skip(i + 1) {
            if a != b && fp(a) == fp(b) {
                return Err(fail(
                    FAMILY,
                    format!(
                        "distinct queries alias: #{i} {:?}/{:?}/{:?} vs #{j} {:?}/{:?}/{:?} -> {}",
                        a.exposure,
                        a.outcome,
                        a.agg,
                        b.exposure,
                        b.outcome,
                        b.agg,
                        fp(a),
                    ),
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{HandCase, Scenario};

    #[test]
    fn hand_cases_pass_all_families() {
        for case in [
            HandCase::AllNullColumn,
            HandCase::CardinalityOneKey,
            HandCase::FiveHopChain,
        ] {
            let s = Scenario::hand(case);
            let ran = check(&s, Sabotage::None).unwrap_or_else(|f| {
                panic!("{case:?} violated {f}\n{}", s.describe());
            });
            assert!(ran.len() >= 5, "{case:?} only ran {ran:?}");
        }
    }

    #[test]
    fn a_generated_scenario_passes() {
        let s = Scenario::from_seed(7);
        check(&s, Sabotage::None)
            .unwrap_or_else(|f| panic!("seed 7 violated {f}\n{}", s.describe()));
    }

    #[test]
    fn sealed_sabotage_is_caught() {
        let s = Scenario::hand(HandCase::CardinalityOneKey);
        let failure = check(&s, Sabotage::Sealed).expect_err("sabotage must be caught");
        assert_eq!(failure.family, "kernel-equivalence");
    }

    #[test]
    fn fingerprint_sabotage_is_caught() {
        let s = Scenario::hand(HandCase::FiveHopChain);
        let failure = check(&s, Sabotage::Fingerprint).expect_err("sabotage must be caught");
        assert_eq!(failure.family, "fingerprint");
    }

    #[test]
    fn failure_details_are_bounded() {
        let f = fail("fingerprint", "x".repeat(10_000));
        assert!(f.detail.len() < 700, "detail was {} bytes", f.detail.len());
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn fault_recovery_family_runs_under_feature() {
        let s = Scenario::hand(HandCase::AllNullColumn);
        let ran = check(&s, Sabotage::None).unwrap();
        assert!(ran.contains(&"fault-recovery"));
    }
}
