//! Greedy scenario shrinking: given a scenario that violates an oracle
//! family, repeatedly try structure-removing mutations (drop queries, halve
//! rows, drop columns, truncate the knowledge graph, drop aliases) and adopt
//! any mutation under which the *same* family still fails, until a fixpoint
//! or an evaluation budget.
//!
//! Mutations never need validity bookkeeping: a mutation that breaks a query
//! (e.g. dropping its exposure column) makes every pipeline path fail with
//! the *same* deterministic error, so the oracle passes and the mutation is
//! simply rejected.

use kg::KnowledgeGraph;

use crate::harness::{check, check_family, OracleFailure, Sabotage};
use crate::scenario::Scenario;

/// Cap on oracle evaluations per minimization, so shrinking a pathological
/// failure stays interactive.
pub const MAX_MINIMIZE_EVALS: usize = 256;

/// The result of shrinking a failing scenario.
#[derive(Debug, Clone)]
pub struct MinimizeOutcome {
    /// The minimal scenario that still violates the family.
    pub scenario: Scenario,
    /// The violation as observed on the minimal scenario.
    pub failure: OracleFailure,
    /// Oracle evaluations spent.
    pub evals: usize,
}

/// A copy of `g` keeping only the first `keep_triples` facts (in entity
/// order) and, optionally, the alias table.
fn truncated_graph(g: &KnowledgeGraph, keep_triples: usize, keep_aliases: bool) -> KnowledgeGraph {
    let mut out = KnowledgeGraph::new();
    let mut count = 0usize;
    'entities: for entity in g.entities() {
        for (predicate, object) in g.properties(entity) {
            if count >= keep_triples {
                break 'entities;
            }
            out.add_fact(entity, predicate, object);
            count += 1;
        }
    }
    if keep_aliases {
        for (alias, canonical) in g.alias_entries() {
            out.add_alias(alias, canonical);
        }
    }
    out
}

/// Candidate mutations of `s`, coarsest first (dropping a whole query or
/// half the rows shrinks the search fastest).
fn mutations(s: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();

    if s.queries.len() > 1 {
        for i in 0..s.queries.len() {
            let mut m = s.clone();
            m.queries.remove(i);
            out.push(m);
        }
    }

    let n_rows = s.df.n_rows();
    for keep in [n_rows / 2, n_rows.saturating_sub(1)] {
        if keep > 0 && keep < n_rows {
            let mut m = s.clone();
            m.df = m.df.head(keep);
            out.push(m);
        }
    }

    if s.df.n_cols() > 1 {
        let names: Vec<String> = s.df.column_names().iter().map(|n| n.to_string()).collect();
        for name in names {
            let mut m = s.clone();
            if m.drop_column(&name) {
                out.push(m);
            }
        }
    }

    let n_triples = s.graph.n_triples();
    for keep in [0, n_triples / 2] {
        if keep < n_triples {
            let mut m = s.clone();
            m.graph = truncated_graph(&s.graph, keep, true);
            out.push(m);
        }
    }
    if s.graph.alias_entries().next().is_some() {
        let mut m = s.clone();
        m.graph = truncated_graph(&s.graph, n_triples, false);
        out.push(m);
    }

    out
}

/// Minimizes `s` under `sabotage`. Returns `None` when `s` passes every
/// oracle (there is nothing to shrink).
pub fn minimize(s: &Scenario, sabotage: Sabotage) -> Option<MinimizeOutcome> {
    let mut failure = check(s, sabotage).err()?;
    let family = failure.family;
    let mut current = s.clone();
    let mut evals = 0usize;

    'outer: loop {
        for candidate in mutations(&current) {
            if evals >= MAX_MINIMIZE_EVALS {
                break 'outer;
            }
            evals += 1;
            if let Err(f) = check_family(&candidate, sabotage, family) {
                current = candidate;
                failure = f;
                continue 'outer;
            }
        }
        break;
    }

    current.label = format!("{} (minimized)", current.label);
    Some(MinimizeOutcome {
        scenario: current,
        failure,
        evals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{HandCase, Scenario};

    #[test]
    fn passing_scenario_yields_none() {
        let s = Scenario::hand(HandCase::CardinalityOneKey);
        assert!(minimize(&s, Sabotage::None).is_none());
    }

    #[test]
    fn sealed_sabotage_shrinks_to_a_tiny_scenario() {
        // The acceptance demonstration: a deliberately broken sealed path is
        // caught and greedily shrunk to a <= 5-column scenario.
        let s = Scenario::from_seed(0xDEAD_BEEF);
        let outcome = minimize(&s, Sabotage::Sealed).expect("sabotage must fail somewhere");
        assert_eq!(outcome.failure.family, "kernel-equivalence");
        assert!(
            outcome.scenario.df.n_cols() <= 5,
            "still {} columns after {} evals:\n{}",
            outcome.scenario.df.n_cols(),
            outcome.evals,
            outcome.scenario.describe()
        );
        assert!(
            outcome.scenario.df.n_rows() < s.df.n_rows(),
            "rows did not shrink: {}",
            outcome.scenario.df.n_rows()
        );
    }

    #[test]
    fn truncated_graph_respects_budget_and_aliases() {
        let s = Scenario::hand(HandCase::FiveHopChain);
        let n = s.graph.n_triples();
        let half = truncated_graph(&s.graph, n / 2, true);
        assert_eq!(half.n_triples(), n / 2);
        let no_alias = truncated_graph(&s.graph, n, false);
        assert_eq!(no_alias.n_triples(), n);
        assert!(no_alias.alias_entries().next().is_none());
    }
}
