//! Replayable adversarial scenarios: a table, a knowledge graph, queries and
//! a config crossing, all materialized from a single `u64` seed.

use datagen::adversarial::{entity_key_column, AdversarialDType, ColumnSpec, KgSpec, Layout};
use kg::{KnowledgeGraph, OneToManyAgg};
use mesa::MesaConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tabular::{AggFn, AggregateQuery, BinStrategy, Column, DType, DataFrame, Predicate, Value};

/// One generated scenario: everything the differential harness needs to run
/// the full pipeline, plus the seed it replays from.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The seed this scenario was materialized from (hand cases use fixed
    /// sentinel seeds).
    pub seed: u64,
    /// Short human label (`seed:0x…` or the hand-case name).
    pub label: String,
    /// The input table. Always contains an `Entity` key column.
    pub df: DataFrame,
    /// The knowledge graph candidate attributes are extracted from.
    pub graph: KnowledgeGraph,
    /// Columns handed to the session for KG extraction (usually
    /// `["Entity"]`, occasionally empty to exercise the no-extraction path).
    pub extraction_columns: Vec<String>,
    /// The aggregate queries run through every pipeline path.
    pub queries: Vec<AggregateQuery>,
    /// The configuration crossing (bins, hops, one-to-many policy, k).
    pub config: MesaConfig,
}

/// The three known-nasty hand scenarios committed as permanent regressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandCase {
    /// A column that is 100% null rides along the pipeline.
    AllNullColumn,
    /// The entity join key has cardinality 1 (every row the same entity).
    CardinalityOneKey,
    /// A 5-hop chain extracted with `hops = 5`.
    FiveHopChain,
}

/// Derives the seed of the `index`-th scenario of a run started from
/// `master`. Index 0 *is* the master seed, so a failure at any index
/// replays directly via `fuzz --seed <printed> --scenarios 1`.
pub fn scenario_seed(master: u64, index: usize) -> u64 {
    if index == 0 {
        master
    } else {
        let mut rng =
            StdRng::seed_from_u64(master ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        rng.gen()
    }
}

/// Picks the first non-null value of a column, if any — used as an `Eq`
/// context literal so generated predicates actually select rows.
fn sample_value(col: &Column) -> Option<Value> {
    (0..col.len()).find_map(|i| match col.get(i) {
        Ok(v) if !v.is_null() => Some(v),
        _ => None,
    })
}

impl Scenario {
    /// Materializes the scenario for `seed`. Row counts are kept modest
    /// (tens to hundreds, occasionally ~1.5k) so a 25-scenario CI smoke run
    /// stays well under a minute while still crossing the kernel's
    /// dense/sparse threshold from both sides.
    pub fn from_seed(seed: u64) -> Scenario {
        let mut rng = StdRng::seed_from_u64(seed);

        let n_rows = match rng.gen_range(0u32..100) {
            0..=24 => rng.gen_range(4..=32),
            25..=84 => rng.gen_range(32..=400),
            _ => rng.gen_range(400..=1500),
        };

        let kg_spec = KgSpec::sample(&mut rng);
        let graph = kg_spec.materialize(&mut rng);

        let entity_null = if rng.gen_bool(0.7) {
            0.0
        } else {
            rng.gen_range(0.0..0.5)
        };
        let entity_layout = if rng.gen_bool(0.5) {
            Layout::Runny
        } else {
            Layout::Shuffled
        };
        let mut columns = vec![entity_key_column(
            &mut rng,
            n_rows,
            kg_spec.n_entities,
            entity_null,
            entity_layout,
        )];

        let n_extra = rng.gen_range(1usize..=5);
        let mut has_numeric = false;
        for i in 0..n_extra {
            let mut spec = ColumnSpec::sample(&mut rng, format!("c{i}"));
            // Guarantee at least one numeric outcome candidate.
            if i + 1 == n_extra && !has_numeric {
                spec.dtype = AdversarialDType::Float;
                spec.null_rate = spec.null_rate.min(0.9);
            }
            has_numeric |= matches!(spec.dtype, AdversarialDType::Int | AdversarialDType::Float);
            columns.push(spec.materialize(n_rows, &mut rng));
        }
        let df = DataFrame::from_columns(columns).expect("generated columns share one length");

        let extraction_columns = if rng.gen_bool(0.9) {
            vec!["Entity".to_string()]
        } else {
            Vec::new()
        };

        let mut config = MesaConfig::default();
        config.prepare.n_bins = rng.gen_range(2..=8);
        config.prepare.bin_strategy = if rng.gen_bool(0.5) {
            BinStrategy::EqualFrequency
        } else {
            BinStrategy::EqualWidth
        };
        config.prepare.extraction.hops = rng.gen_range(1..=3);
        config.prepare.extraction.one_to_many = match rng.gen_range(0u32..5) {
            0 => OneToManyAgg::Mean,
            1 => OneToManyAgg::Max,
            2 => OneToManyAgg::Min,
            3 => OneToManyAgg::Count,
            _ => OneToManyAgg::First,
        };
        config.mcimr.k = rng.gen_range(1..=4);

        let queries = Self::sample_queries(&df, &mut rng);

        Scenario {
            seed,
            label: format!("seed:{seed:#x}"),
            df,
            graph,
            extraction_columns,
            queries,
            config,
        }
    }

    /// 1–3 queries derivable from the frame: exposure over any column,
    /// outcome preferring numeric columns (with a 10% chance of a hostile
    /// non-numeric outcome, whose pipeline *error* must also be identical
    /// across paths), optional `Eq` context sampled from real cell values.
    fn sample_queries(df: &DataFrame, rng: &mut StdRng) -> Vec<AggregateQuery> {
        let names: Vec<String> = df.column_names().iter().map(|s| s.to_string()).collect();
        let numeric: Vec<String> = names
            .iter()
            .filter(|n| {
                matches!(
                    df.column(n).map(|c| c.dtype()),
                    Ok(DType::Int) | Ok(DType::Float)
                )
            })
            .cloned()
            .collect();
        let n_queries = rng.gen_range(1usize..=3);
        let mut queries = Vec::with_capacity(n_queries);
        for _ in 0..n_queries {
            let exposure = names[rng.gen_range(0..names.len())].clone();
            let outcome_pool = if numeric.is_empty() || rng.gen_bool(0.1) {
                &names
            } else {
                &numeric
            };
            let mut outcome = outcome_pool[rng.gen_range(0..outcome_pool.len())].clone();
            if outcome == exposure {
                outcome = names
                    [(names.iter().position(|n| *n == exposure).unwrap() + 1) % names.len()]
                .clone();
            }
            let agg = match rng.gen_range(0u32..10) {
                0..=5 => AggFn::Mean,
                6 => AggFn::Count,
                7 => AggFn::Sum,
                8 => AggFn::Max,
                _ => AggFn::Median,
            };
            let mut q = AggregateQuery::avg(exposure, outcome).with_agg(agg);
            if rng.gen_bool(0.4) {
                let ctx_col = &names[rng.gen_range(0..names.len())];
                if let Ok(col) = df.column(ctx_col) {
                    if let Some(v) = sample_value(col) {
                        q = q.with_context(Predicate::eq(ctx_col.clone(), v));
                    }
                }
            }
            queries.push(q);
        }
        queries
    }

    /// Materializes one of the committed hand cases. These use fixed
    /// internal seeds, so they are as replayable as generated scenarios.
    pub fn hand(case: HandCase) -> Scenario {
        match case {
            HandCase::AllNullColumn => {
                let mut rng = StdRng::seed_from_u64(0xA11);
                let kg_spec = KgSpec {
                    n_entities: 8,
                    chain_depth: 1,
                    fan_out: 2,
                    attrs_per_level: 2,
                    value_pool: 3,
                    n_aliases: 2,
                    ambiguous_aliases: 1,
                };
                let graph = kg_spec.materialize(&mut rng);
                let entity = entity_key_column(&mut rng, 120, 8, 0.0, Layout::Shuffled);
                let dead = ColumnSpec {
                    name: "dead".into(),
                    dtype: AdversarialDType::Float,
                    cardinality: 4,
                    null_rate: 1.0,
                    layout: Layout::Runny,
                }
                .materialize(120, &mut rng);
                let live = ColumnSpec {
                    name: "live".into(),
                    dtype: AdversarialDType::Float,
                    cardinality: 6,
                    null_rate: 0.0,
                    layout: Layout::Shuffled,
                }
                .materialize(120, &mut rng);
                let df = DataFrame::from_columns(vec![entity, dead, live]).unwrap();
                let queries = vec![
                    AggregateQuery::avg("Entity", "live"),
                    // The all-null column as outcome: every path must agree
                    // on the same (empty or erroneous) result.
                    AggregateQuery::avg("Entity", "dead"),
                ];
                Scenario {
                    seed: 0xA11,
                    label: "hand:all-null-column".into(),
                    df,
                    graph,
                    extraction_columns: vec!["Entity".into()],
                    queries,
                    config: MesaConfig::default(),
                }
            }
            HandCase::CardinalityOneKey => {
                let mut rng = StdRng::seed_from_u64(0xCA2D);
                let kg_spec = KgSpec {
                    n_entities: 1,
                    chain_depth: 2,
                    fan_out: 4,
                    attrs_per_level: 2,
                    value_pool: 2,
                    n_aliases: 1,
                    ambiguous_aliases: 0,
                };
                let graph = kg_spec.materialize(&mut rng);
                let entity = entity_key_column(&mut rng, 90, 1, 0.0, Layout::Runny);
                let group = ColumnSpec {
                    name: "group".into(),
                    dtype: AdversarialDType::Cat,
                    cardinality: 3,
                    null_rate: 0.1,
                    layout: Layout::Shuffled,
                }
                .materialize(90, &mut rng);
                let y = ColumnSpec {
                    name: "y".into(),
                    dtype: AdversarialDType::Float,
                    cardinality: 12,
                    null_rate: 0.0,
                    layout: Layout::Shuffled,
                }
                .materialize(90, &mut rng);
                let df = DataFrame::from_columns(vec![entity, group, y]).unwrap();
                let queries = vec![AggregateQuery::avg("group", "y")];
                Scenario {
                    seed: 0xCA2D,
                    label: "hand:cardinality-1-join-key".into(),
                    df,
                    graph,
                    extraction_columns: vec!["Entity".into()],
                    queries,
                    config: MesaConfig::default(),
                }
            }
            HandCase::FiveHopChain => {
                let mut rng = StdRng::seed_from_u64(0x5104);
                let kg_spec = KgSpec {
                    n_entities: 12,
                    chain_depth: 5,
                    fan_out: 1,
                    attrs_per_level: 1,
                    value_pool: 3,
                    n_aliases: 3,
                    ambiguous_aliases: 1,
                };
                let graph = kg_spec.materialize(&mut rng);
                let entity = entity_key_column(&mut rng, 150, 12, 0.05, Layout::Shuffled);
                let y = ColumnSpec {
                    name: "y".into(),
                    dtype: AdversarialDType::Float,
                    cardinality: 20,
                    null_rate: 0.0,
                    layout: Layout::Runny,
                }
                .materialize(150, &mut rng);
                let df = DataFrame::from_columns(vec![entity, y]).unwrap();
                let mut config = MesaConfig::default();
                config.prepare.extraction.hops = 5;
                let queries = vec![AggregateQuery::avg("Entity", "y")];
                Scenario {
                    seed: 0x5104,
                    label: "hand:5-hop-chain".into(),
                    df,
                    graph,
                    extraction_columns: vec!["Entity".into()],
                    queries,
                    config,
                }
            }
        }
    }

    /// One-paragraph human summary: shape of the table, graph, queries and
    /// config — what gets printed for a failing (and for a minimized)
    /// scenario.
    pub fn describe(&self) -> String {
        let mut out = format!(
            "{} | {} rows x {} cols | {} triples, {} entities | {} quer{} | bins={} {:?} hops={} o2m={:?} k={}\n",
            self.label,
            self.df.n_rows(),
            self.df.n_cols(),
            self.graph.n_triples(),
            self.graph.n_entities(),
            self.queries.len(),
            if self.queries.len() == 1 { "y" } else { "ies" },
            self.config.prepare.n_bins,
            self.config.prepare.bin_strategy,
            self.config.prepare.extraction.hops,
            self.config.prepare.extraction.one_to_many,
            self.config.mcimr.k,
        );
        for col in self.df.columns() {
            out.push_str(&format!(
                "  col {:?} {:?} distinct={} null={:.0}%\n",
                col.name(),
                col.dtype(),
                col.n_distinct(),
                col.null_fraction() * 100.0,
            ));
        }
        for q in &self.queries {
            out.push_str(&format!("  query {}\n", q.fingerprint()));
        }
        out
    }

    /// Drops a column from the frame (and from the extraction columns when
    /// it was one). Used by the minimizer; a no-op `Err` when the column is
    /// absent.
    pub fn drop_column(&mut self, name: &str) -> bool {
        if self.df.n_cols() <= 1 || self.df.drop_column(name).is_err() {
            return false;
        }
        self.extraction_columns.retain(|c| c != name);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_replay_identically() {
        let a = Scenario::from_seed(42);
        let b = Scenario::from_seed(42);
        assert_eq!(a.df, b.df);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.graph.n_triples(), b.graph.n_triples());
        assert_eq!(a.describe(), b.describe());
    }

    #[test]
    fn distinct_seeds_differ() {
        let a = Scenario::from_seed(1);
        let b = Scenario::from_seed(2);
        assert_ne!(a.describe(), b.describe());
    }

    #[test]
    fn scenario_seed_index_zero_is_master() {
        assert_eq!(scenario_seed(0xBEEF, 0), 0xBEEF);
        assert_ne!(scenario_seed(0xBEEF, 1), scenario_seed(0xBEEF, 2));
        assert_eq!(scenario_seed(0xBEEF, 7), scenario_seed(0xBEEF, 7));
    }

    #[test]
    fn hand_cases_have_their_advertised_shape() {
        let all_null = Scenario::hand(HandCase::AllNullColumn);
        assert_eq!(all_null.df.column("dead").unwrap().null_count(), 120);

        let card1 = Scenario::hand(HandCase::CardinalityOneKey);
        assert_eq!(card1.df.column("Entity").unwrap().n_distinct(), 1);

        let chain = Scenario::hand(HandCase::FiveHopChain);
        assert_eq!(chain.config.prepare.extraction.hops, 5);
        assert!(chain.graph.has_entity("E0.h5"));
    }

    #[test]
    fn queries_reference_existing_columns() {
        for seed in 0..20 {
            let s = Scenario::from_seed(seed);
            for q in &s.queries {
                assert!(s.df.has_column(&q.exposure), "{}", s.describe());
                assert!(s.df.has_column(&q.outcome), "{}", s.describe());
                assert_ne!(q.exposure, q.outcome);
            }
        }
    }

    #[test]
    fn drop_column_updates_extraction_columns() {
        let mut s = Scenario::hand(HandCase::FiveHopChain);
        assert!(s.drop_column("Entity"));
        assert!(s.extraction_columns.is_empty());
        assert!(!s.drop_column("y"), "refuses to drop the last column");
    }
}
