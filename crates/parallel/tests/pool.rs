//! Pool stress and composition tests: nested fan-outs (no deadlock, no
//! thread growth), skewed-workload load balance, serial small inputs, and
//! cap inheritance. Each test forces a 4-thread pool via `set_threads` so
//! the multi-thread paths are exercised even on a single-core host
//! (`MESA_THREADS`, when set by CI, takes precedence and must still be ≥ 2
//! for the gated assertions).

use std::collections::HashSet;
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::{Duration, Instant};

use parallel::{effective_threads, parallel_map, set_threads, with_thread_cap};

/// A deterministic multi-thread pool for every test in this binary.
fn pool4() -> usize {
    set_threads(4)
}

#[test]
fn nested_fan_out_completes_and_spawns_no_threads() {
    let threads = pool4();
    let seen: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
    let outer: Vec<usize> = (0..16).collect();
    let out = parallel_map(&outer, |_, &i| {
        seen.lock().unwrap().insert(std::thread::current().id());
        let inner: Vec<usize> = (0..16).collect();
        let inner_sums = parallel_map(&inner, |_, &j| {
            seen.lock().unwrap().insert(std::thread::current().id());
            i * 100 + j
        });
        inner_sums.iter().sum::<usize>()
    });
    for (i, &sum) in out.iter().enumerate() {
        let expected: usize = (0..16).map(|j| i * 100 + j).sum();
        assert_eq!(sum, expected, "nested results stay input-ordered");
    }
    // Only the pool's workers plus this test thread may ever execute items
    // of our jobs: nesting must not grow the thread set.
    let distinct = seen.lock().unwrap().len();
    assert!(
        distinct <= threads,
        "nested fan-out used {distinct} threads, pool size is {threads}"
    );
}

#[test]
fn three_level_nesting_does_not_deadlock() {
    pool4();
    let a: Vec<usize> = (0..8).collect();
    let total: usize = parallel_map(&a, |_, &x| {
        let b: Vec<usize> = (0..8).collect();
        parallel_map(&b, |_, &y| {
            let c: Vec<usize> = (0..8).collect();
            parallel_map(&c, |_, &z| x + y + z).iter().sum::<usize>()
        })
        .iter()
        .sum::<usize>()
    })
    .iter()
    .sum();
    // Sum over the full 8×8×8 grid of (x + y + z).
    let expected: usize = 3 * 64 * (0..8).sum::<usize>();
    assert_eq!(total, expected);
}

#[test]
fn repeated_nested_fan_outs_are_stable() {
    // Churn: many short-lived jobs racing through the registry, each with a
    // nested layer, must neither deadlock nor corrupt results.
    pool4();
    for round in 0..50 {
        let items: Vec<usize> = (0..8).collect();
        let out = parallel_map(&items, |_, &i| {
            let inner: Vec<usize> = (0..8).collect();
            parallel_map(&inner, |_, &j| i ^ j ^ round).len()
        });
        assert!(out.iter().all(|&n| n == 8));
    }
}

#[test]
fn skewed_workload_does_not_serialize_the_tail() {
    let threads = pool4();
    if threads < 2 {
        // MESA_THREADS=1 was forced for the process; the balance property
        // is unobservable serially.
        return;
    }
    // Item 0 is ~100× the rest (a sleep, so even one hardware core can run
    // the fast tail meanwhile). With dynamic claiming the 63 fast items
    // finish while item 0 sleeps; the old static equal-chunk split would
    // strand a quarter of them behind it.
    let items: Vec<usize> = (0..64).collect();
    let completion_order: Mutex<Vec<usize>> = Mutex::new(Vec::new());
    parallel_map(&items, |_, &x| {
        if x == 0 {
            std::thread::sleep(Duration::from_millis(100));
        }
        completion_order.lock().unwrap().push(x);
    });
    let order = completion_order.into_inner().unwrap();
    let slow_position = order
        .iter()
        .position(|&x| x == 0)
        .expect("item 0 completed");
    assert!(
        slow_position > 32,
        "slow item finished at position {slow_position}; the tail was serialized behind it"
    );
}

#[test]
fn small_inputs_never_leave_the_calling_thread() {
    pool4();
    let caller = std::thread::current().id();
    let items: Vec<usize> = (0..7).collect(); // below MIN_ITEMS_PER_FAN_OUT
    let ids = parallel_map(&items, |_, _| std::thread::current().id());
    assert!(ids.iter().all(|&id| id == caller));
    assert!(parallel_map(&Vec::<usize>::new(), |_, &x: &usize| x).is_empty());
}

#[test]
fn thread_cap_is_inherited_by_nested_fan_outs() {
    let threads = pool4();
    if threads < 2 {
        return;
    }
    let seen: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
    with_thread_cap(1, || {
        // Cap 1 forces the outer call serial; the *nested* calls run on the
        // caller too because the cap is inherited, not reset, inside items.
        let items: Vec<usize> = (0..16).collect();
        parallel_map(&items, |_, _| {
            assert_eq!(effective_threads(), 1);
            let inner: Vec<usize> = (0..16).collect();
            let ids = parallel_map(&inner, |_, _| std::thread::current().id());
            seen.lock().unwrap().extend(ids);
        });
    });
    assert_eq!(
        seen.into_inner().unwrap().len(),
        1,
        "cap 1 must pin nested fan-outs to one thread"
    );
}

#[test]
fn pool_is_no_slower_than_serial_for_cheap_uniform_items() {
    // Sanity guard, not a benchmark: a pooled fan-out over trivial items
    // must complete promptly (claims are cheap) — catches pathological
    // contention regressions without asserting on wall-clock ratios.
    pool4();
    let items: Vec<u64> = (0..100_000).collect();
    let start = Instant::now();
    let out = parallel_map(&items, |_, &x| x.wrapping_mul(2654435761));
    assert_eq!(out.len(), items.len());
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "100k cheap items took {:?}",
        start.elapsed()
    );
}
