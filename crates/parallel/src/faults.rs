//! Deterministic fault-injection registry (test/bench only).
//!
//! Compiled only under the `fault-injection` cargo feature. Pipeline
//! stages declare *named injection points* with the
//! [`fault_point!`](crate::fault_point) macro; tests arm a point with
//! [`arm`], choosing what fires ([`FaultKind`]) and on which hit it fires
//! (`nth`, 1-based). Everything is keyed by plain strings so the registry
//! stays dependency-free and usable from any crate in the workspace.
//!
//! Determinism: a fault fires on exactly the `nth` call of [`hit`] for its
//! point after arming (counted under one lock across threads) and fires
//! exactly once — later hits are still counted but never re-fire. Tests
//! that arm faults must serialise on the
//! registry (the robustness suite runs them under a shared lock) and call
//! [`reset`] between cases.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Duration;

/// Every named injection point in the workspace.
///
/// This is the documented source of truth for the string keys: `mesa-lint`
/// enforces that this list, the `fault_point!("...")` call sites in source,
/// and the robustness suite's `FAULT_POINTS` coverage list stay identical,
/// so a renamed or added point cannot silently drift out of test coverage.
pub const NAMED_POINTS: &[&str] = &[
    // Session cache-fill paths, one per tier (report / prepared / extraction).
    "mesa.session.fill_report",
    "mesa.session.fill_prepared",
    "mesa.session.fill_extraction",
    // Hash-join build in mesa::problem.
    "mesa.join",
    // BFS frontier expansion in kg::extraction.
    "kg.extract.expand",
    // Contingency accumulation in infotheory::kernel.
    "infotheory.kernel.accumulate",
];

/// What an armed injection point does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic with a `"fault-injection: <point>"` message (suppressed from
    /// stderr by the pool's quiet panic hook).
    Panic,
    /// Sleep for the given duration, then continue normally.
    Latency(Duration),
    /// Simulate an allocation failure: panics with an OOM-shaped
    /// `"fault-injection: allocation of … failed at <point>"` message.
    /// (Real OOM aborts; the simulated flavour unwinds so recovery paths
    /// are testable.)
    AllocFail,
}

struct Plan {
    kind: FaultKind,
    /// Fires when the hit counter reaches this value (1-based).
    nth: u64,
    hits: u64,
}

fn registry() -> &'static Mutex<HashMap<String, Plan>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Plan>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock() -> std::sync::MutexGuard<'static, HashMap<String, Plan>> {
    // A fault that fired by panicking unwound through this lock; the map
    // itself is always left consistent, so poisoning is ignorable.
    registry().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Arms `point` to fire `kind` on its `nth` hit (1-based; `1` = next hit).
/// Re-arming an already-armed point replaces the plan and resets its hit
/// counter.
pub fn arm(point: &str, kind: FaultKind, nth: u64) {
    assert!(nth >= 1, "nth is 1-based");
    lock().insert(point.to_string(), Plan { kind, nth, hits: 0 });
}

/// Disarms every point and clears all hit counters.
pub fn reset() {
    lock().clear();
}

/// Hits recorded for `point` since it was last armed (0 if unarmed).
pub fn hits(point: &str) -> u64 {
    lock().get(point).map_or(0, |p| p.hits)
}

/// Records a hit at `point`; fires the armed fault if this is the `nth`
/// hit. Called via [`fault_point!`](crate::fault_point), never directly.
pub fn hit(point: &str) {
    let fired = {
        let mut map = lock();
        match map.get_mut(point) {
            None => return,
            Some(plan) => {
                plan.hits += 1;
                if plan.hits == plan.nth {
                    Some(plan.kind)
                } else {
                    None
                }
            }
        }
    };
    match fired {
        None => {}
        Some(FaultKind::Latency(d)) => std::thread::sleep(d),
        Some(FaultKind::Panic) => {
            crate::deadline::install_quiet_hook();
            panic!("fault-injection: {point}");
        }
        Some(FaultKind::AllocFail) => {
            crate::deadline::install_quiet_hook();
            panic!("fault-injection: allocation of 18446744073709551615 bytes failed at {point}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; keep each test on distinct points so
    // they can run concurrently.

    #[test]
    fn unarmed_points_are_free() {
        hit("test.unarmed");
        assert_eq!(hits("test.unarmed"), 0);
    }

    #[test]
    fn fires_on_nth_hit_exactly_once() {
        arm("test.nth", FaultKind::Panic, 3);
        hit("test.nth");
        hit("test.nth");
        let err = std::panic::catch_unwind(|| hit("test.nth")).expect_err("3rd hit fires");
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert_eq!(msg, "fault-injection: test.nth");
        // Counter keeps advancing past nth without re-firing.
        hit("test.nth");
        assert_eq!(hits("test.nth"), 4);
        arm("test.nth", FaultKind::Latency(Duration::ZERO), 1);
        assert_eq!(hits("test.nth"), 0, "re-arming resets the counter");
        hit("test.nth");
    }

    #[test]
    fn latency_faults_do_not_unwind() {
        arm(
            "test.latency",
            FaultKind::Latency(Duration::from_millis(1)),
            1,
        );
        let t0 = std::time::Instant::now();
        hit("test.latency");
        assert!(t0.elapsed() >= Duration::from_millis(1));
    }

    #[test]
    fn alloc_fail_is_oom_shaped() {
        arm("test.alloc", FaultKind::AllocFail, 1);
        let err = std::panic::catch_unwind(|| hit("test.alloc")).expect_err("fires");
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("allocation of"), "got {msg:?}");
        assert!(msg.contains("failed at test.alloc"), "got {msg:?}");
    }
}
