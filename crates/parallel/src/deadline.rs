//! Cooperative deadlines and cancellation for pool work.
//!
//! A [`Deadline`] is a cheap, cloneable token carrying an absolute
//! [`Instant`] plus a sticky cancelled flag. Long-running pipelines opt in
//! by calling [`checkpoint`] at natural boundaries (pool batch claims,
//! BFS levels, kernel block folds): once the deadline passes, the next
//! checkpoint unwinds with the [`Cancelled`] sentinel payload, which the
//! session boundary's `catch_unwind` converts into a structured
//! "deadline exceeded" error. Work that never checkpoints is simply not
//! cancellable — the mechanism is cooperative by design, so the hot loops
//! stay free of per-row overhead.
//!
//! The active deadline is thread-local and scoped by [`with_deadline`];
//! the pool propagates it to workers for the duration of each claimed
//! batch exactly like the thread cap, so nested fan-outs inherit the
//! innermost enclosing deadline automatically.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Once};
use std::time::{Duration, Instant};

/// Panic payload used to unwind cancelled work. Deliberately a unit struct
/// (not a `String`) so the session boundary can distinguish cancellation
/// from genuine worker panics by downcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

/// A cloneable cancellation token with an absolute expiry instant.
///
/// `expired()` is cheap enough for claim-boundary checks: once the clock
/// has been observed past the deadline (or [`cancel`](Deadline::cancel)
/// was called) a relaxed atomic flag short-circuits further `Instant`
/// reads.
#[derive(Clone, Debug)]
pub struct Deadline {
    inner: Arc<DeadlineInner>,
}

#[derive(Debug)]
struct DeadlineInner {
    deadline: Instant,
    cancelled: AtomicBool,
}

impl Deadline {
    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Deadline::at(Instant::now() + budget)
    }

    /// A deadline at the absolute instant `when`.
    pub fn at(when: Instant) -> Self {
        Deadline {
            inner: Arc::new(DeadlineInner {
                deadline: when,
                cancelled: AtomicBool::new(false),
            }),
        }
    }

    /// Cancels immediately, regardless of the remaining budget.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the budget is spent (or [`cancel`](Deadline::cancel) ran).
    /// Sticky: once `true`, stays `true`.
    pub fn expired(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        if Instant::now() >= self.inner.deadline {
            self.inner.cancelled.store(true, Ordering::Relaxed);
            return true;
        }
        false
    }
}

thread_local! {
    /// The innermost active deadline on this thread. Installed by
    /// [`with_deadline`] on caller threads and by the pool's batch
    /// executor on workers while they run a deadlined job's items.
    static ACTIVE_DEADLINE: RefCell<Option<Deadline>> = const { RefCell::new(None) };
}

/// Runs `f` with `deadline` installed as this thread's active deadline
/// (restored on unwind). Fan-outs issued inside `f` propagate the deadline
/// to the pool workers executing their items.
pub fn with_deadline<R>(deadline: &Deadline, f: impl FnOnce() -> R) -> R {
    let _restore = install_deadline(Some(deadline.clone()));
    f()
}

/// The deadline currently governing this thread, if any.
pub fn current_deadline() -> Option<Deadline> {
    ACTIVE_DEADLINE.with(|d| d.borrow().clone())
}

/// Installs `deadline` thread-locally, returning a guard that restores the
/// previous value on drop (including during unwind). Used by the pool to
/// propagate a job's deadline onto workers for one batch.
pub(crate) fn install_deadline(deadline: Option<Deadline>) -> impl Drop {
    struct Restore(Option<Deadline>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            ACTIVE_DEADLINE.with(|d| *d.borrow_mut() = prev);
        }
    }
    Restore(ACTIVE_DEADLINE.with(|d| d.replace(deadline)))
}

/// Cancellation checkpoint: if the thread's active deadline has expired,
/// unwinds with the [`Cancelled`] payload (quietly — the default panic-hook
/// backtrace is suppressed for this payload). No-op when no deadline is
/// installed. Call at coarse work boundaries, not per row.
pub fn checkpoint() {
    let expired = ACTIVE_DEADLINE.with(|d| d.borrow().as_ref().is_some_and(Deadline::expired));
    if expired {
        quiet_cancel_unwind();
    }
}

/// Unwinds with [`Cancelled`] without triggering the default panic hook's
/// stderr message (cancellation is a routine serving outcome, not a bug).
pub(crate) fn quiet_cancel_unwind() -> ! {
    install_quiet_hook();
    std::panic::panic_any(Cancelled);
}

/// Wraps the process panic hook once so that unwinds whose payload is
/// [`Cancelled`] (or an injected fault, which embeds a recognisable
/// prefix) stay silent; every other panic reports as before.
pub(crate) fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<Cancelled>().is_some() {
                return;
            }
            if let Some(msg) = info.payload().downcast_ref::<String>() {
                if msg.starts_with("fault-injection:") {
                    return;
                }
            }
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unexpired_deadline_checkpoints_freely() {
        let d = Deadline::after(Duration::from_secs(60));
        with_deadline(&d, || {
            checkpoint();
            checkpoint();
        });
        assert!(!d.expired());
    }

    #[test]
    fn expired_deadline_unwinds_with_cancelled() {
        let d = Deadline::after(Duration::ZERO);
        let err = std::panic::catch_unwind(|| with_deadline(&d, checkpoint))
            .expect_err("checkpoint must unwind past an expired deadline");
        assert!(err.downcast_ref::<Cancelled>().is_some());
        // The thread-local was restored by the scope guard during unwind.
        assert!(current_deadline().is_none());
        checkpoint(); // no deadline installed → no-op
    }

    #[test]
    fn cancel_is_sticky_and_immediate() {
        let d = Deadline::after(Duration::from_secs(60));
        assert!(!d.expired());
        d.cancel();
        assert!(d.expired());
        assert!(d.clone().expired(), "clones share the flag");
    }

    #[test]
    fn nested_deadlines_restore_outer() {
        let outer = Deadline::after(Duration::from_secs(60));
        with_deadline(&outer, || {
            let inner = Deadline::after(Duration::from_secs(1));
            with_deadline(&inner, || {
                assert!(!inner.expired());
            });
            let current = current_deadline().expect("outer restored");
            assert!(!current.expired());
        });
    }
}
