//! The pre-pool scoped-thread chunker, kept as the measured reference
//! baseline.
//!
//! This is the fan-out strategy the pool replaced: spawn fresh
//! `std::thread::scope` threads per call and split the items into equal
//! contiguous chunks. `appendix_parallel` times it side by side with the
//! pool at each point of the thread-scaling sweep so `BENCH_parallel.json`
//! records the pool's overhead (spawn/join cost avoided, dynamic vs static
//! balance) against a live implementation instead of a historical number.
//! Production call sites all go through [`parallel_map`](crate::parallel_map).

use std::any::Any;
use std::panic::resume_unwind;

/// Applies `f` to every item (with its index) using up to `threads` fresh
/// scoped threads, each working one contiguous equal chunk; results are
/// reassembled in input order. Runs serially when `threads <= 1` or below
/// the default [`FanOut`](crate::FanOut) `min_items` threshold, mirroring
/// the pool's auto-serial contract.
///
/// # Panics
/// Propagates the first worker panic after all workers are joined (a
/// panicking chunk does not abort the process while other chunks are still
/// unwinding — the double-panic the old `join().expect()` pattern risked).
pub fn scoped_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.min(items.len());
    if threads <= 1 || items.len() < crate::FanOut::default().min_items {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .enumerate()
            .map(|(ci, chunk)| {
                scope.spawn(move || {
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(j, t)| f(ci * chunk_len + j, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        // Join every worker before propagating anything: resuming the first
        // panic while later handles are unjoined would make the scope guard
        // panic during unwind and abort.
        let mut out = Vec::with_capacity(items.len());
        let mut first_panic: Option<Box<dyn Any + Send>> = None;
        for handle in handles {
            match handle.join() {
                Ok(chunk) => out.extend(chunk),
                Err(payload) => {
                    first_panic.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
        out
    })
}
