//! The persistent pool behind [`parallel_map`](crate::parallel_map).
//!
//! # Design
//!
//! One process-wide pool is built lazily on the first parallel fan-out and
//! lives for the rest of the process: `threads − 1` worker threads (the
//! submitting thread is the remaining compute slot) parked on a condvar
//! until work arrives. A fan-out call publishes a single job record into a
//! shared registry and wakes the workers; the job distributes its items
//! internally through a lock-free claim counter — every participant grabs
//! the next batch of `grain` indices with one `fetch_add`, so a slow item
//! never strands work behind it the way the old static equal-chunk split
//! did, and the steal path costs one uncontended RMW instead of a lock.
//! This is the "sharded injector" flavour of work distribution: because the
//! only API is a fan-out over a slice, a per-worker Chase-Lev deque would
//! hold slices of the same job anyway — the claim counter gives the same
//! dynamic balance with no per-task allocation at all.
//!
//! # Nested parallelism
//!
//! A task already running on a pool worker may itself call
//! [`parallel_map`](crate::parallel_map). The nested call publishes its job
//! like any other and then *helps*: the calling worker executes batches from
//! its own job until nothing is left to claim, then parks on the job's
//! completion condvar while other workers finish the batches they claimed.
//! No thread is ever spawned by a nested call, so session-batch ×
//! candidate × extraction fan-outs compose at exactly the pool's
//! concurrency instead of multiplying it. The wait graph cannot cycle: a
//! thread only waits on a job it created inside the item it is currently
//! executing, and every claimed batch is being executed by a live thread,
//! so the innermost jobs always complete.
//!
//! # Determinism
//!
//! Scheduling is nondeterministic; results are not. Every item writes its
//! result into its own input-order slot and all reductions happen on the
//! calling thread in input order, so output bytes are identical at any
//! thread count (locked by `tests/determinism.rs` at caps 1, 2 and 4).
//!
//! # Thread-count governance
//!
//! The pool size is resolved once per process: the `MESA_THREADS`
//! environment variable wins, then a [`set_threads`] call made before the
//! first fan-out, then `std::thread::available_parallelism()`.
//! [`with_thread_cap`] additionally caps the concurrency of fan-outs in a
//! scope (and of everything nested beneath them — jobs propagate their cap
//! to the workers executing their items), which is how the scaling sweep
//! and the determinism tests force 1/2/4 threads inside one process.

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once, OnceLock, PoisonError};

use crate::deadline::{current_deadline, install_deadline, Cancelled, Deadline};

/// Locks a mutex ignoring poisoning. Every mutex in this module guards
/// state that stays consistent across unwinds (flags, registries and
/// `Option` slots mutated in single statements), so a panic while holding
/// a guard never leaves partial state — recovering the inner value is
/// always safe and keeps a panicked job from wedging the whole pool.
fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Process-wide thread count, resolved once (see [`resolve_threads`]).
static CONFIGURED_THREADS: OnceLock<usize> = OnceLock::new();

/// The lazily-built global pool.
static POOL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    /// Concurrency cap inherited by fan-outs on this thread (0 = unset).
    /// Set by [`with_thread_cap`] on caller threads and by
    /// [`JobCore::run_batch`] on workers while they execute a capped job's
    /// items, so nested fan-outs observe the innermost enclosing cap.
    static THREAD_CAP: Cell<usize> = const { Cell::new(0) };
}

/// Parses one `MESA_THREADS` value: a positive integer (surrounding
/// whitespace tolerated). `None` for anything malformed.
fn parse_threads(raw: &str) -> Option<usize> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => None,
    }
}

/// Reads `MESA_THREADS` if present. A malformed value is *not* fatal — a
/// serving process must come up even with a typo'd override — but it warns
/// on stderr (once per process) because the silent part of a silent
/// fallback is what would invalidate benchmarks recorded under it.
fn env_threads() -> Option<usize> {
    let raw = std::env::var("MESA_THREADS").ok()?;
    let parsed = parse_threads(&raw);
    if parsed.is_none() {
        static WARNED: Once = Once::new();
        WARNED.call_once(|| {
            eprintln!(
                "warning: MESA_THREADS must be a positive integer, got {raw:?}; \
                 ignoring it and using the default thread count"
            );
        });
    }
    parsed
}

/// The pool size: `MESA_THREADS` > [`set_threads`] > `available_parallelism`.
/// Cached on first call; later env changes have no effect.
fn resolve_threads() -> usize {
    *CONFIGURED_THREADS.get_or_init(|| {
        env_threads().unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    })
}

/// Requests a pool size of `requested` threads and returns the count
/// actually in effect.
///
/// Must run before the first parallel fan-out to have any effect: the
/// first resolution wins and is permanent for the process. A set
/// `MESA_THREADS` environment variable takes precedence over the request
/// (that is what lets CI force the multithread paths on a single-core
/// runner without patching binaries). Benchmarks and tests call this to get
/// a deterministic pool size regardless of host core count.
pub fn set_threads(requested: usize) -> usize {
    assert!(requested >= 1, "thread count must be at least 1");
    let _ = CONFIGURED_THREADS.set(env_threads().unwrap_or(requested));
    resolve_threads()
}

/// Runs `f` with fan-out concurrency capped at `cap` threads (including the
/// calling thread). Nested fan-outs inherit the cap; `cap = 1` forces fully
/// serial execution. The cap cannot exceed the pool size — excess is
/// clamped. Restored on unwind.
pub fn with_thread_cap<R>(cap: usize, f: impl FnOnce() -> R) -> R {
    assert!(cap >= 1, "thread cap must be at least 1");
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_CAP.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(THREAD_CAP.with(|c| c.replace(cap)));
    f()
}

/// The concurrency a fan-out issued from this thread would use right now:
/// the resolved pool size clamped by the innermost [`with_thread_cap`] (or
/// the cap of the job this worker is currently executing). `1` means
/// fan-outs run serially.
pub fn effective_threads() -> usize {
    let pool = resolve_threads();
    match THREAD_CAP.with(|c| c.get()) {
        0 => pool,
        cap => cap.min(pool),
    }
}

/// The process-wide pool: the shared worker state plus the resolved size.
struct Pool {
    shared: Arc<Shared>,
    threads: usize,
}

/// State shared between the workers and submitting threads.
struct Shared {
    /// Jobs with work left to claim (or still draining). Pushed on submit,
    /// removed by the submitter once complete; the vector stays as small as
    /// the number of concurrently active fan-outs.
    registry: Mutex<Vec<Arc<JobCore>>>,
    /// Workers park here when no registered job is claimable.
    work: Condvar,
}

fn global_pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let threads = resolve_threads();
        let shared = Arc::new(Shared {
            registry: Mutex::new(Vec::new()),
            work: Condvar::new(),
        });
        // `threads - 1` workers: the thread that submits a job is the
        // remaining compute slot (it helps execute its own job), so total
        // live compute threads per fan-out equal the configured count.
        for i in 1..threads {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("mesa-pool-{i}"))
                .spawn(move || worker_loop(&shared))
                // mesa-lint: allow(serving-panic-free) -- worker spawn failure at first pool use is unrecoverable startup misconfiguration, not a request-path error
                .expect("failed to spawn pool worker");
        }
        Pool { shared, threads }
    })
}

/// Worker body: find a claimable job, drain it, repeat; park when idle.
/// Workers are persistent — they live until process exit.
fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut registry = lock_ignore_poison(&shared.registry);
            loop {
                if let Some(job) = registry.iter().find(|j| j.claimable()) {
                    break Arc::clone(job);
                }
                registry = shared
                    .work
                    .wait(registry)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // The helper-slot count enforces the job's thread cap; losing the
        // race (another worker took the last slot) just re-enters the scan.
        if job.try_add_helper() {
            // mesa-lint: hot-loop(run_batch) -- deadline polled at every batch-claim boundary inside run_batch
            while job.run_batch() {}
        }
    }
}

/// Monomorphized item executor: `(ctx, i)` runs item `i` and writes its
/// result slot. SAFETY: callers must pass a `ctx` pointing at a live
/// [`Ctx`] of the matching concrete types.
type RunOne = unsafe fn(*const (), usize);

/// The borrowed, type-specific half of a job, kept on the submitting
/// thread's stack for the duration of the call.
struct Ctx<'a, T, R, F> {
    items: *const T,
    f: &'a F,
    /// Input-order result slots, one per item, written exactly once each.
    results: *mut Option<R>,
}

/// SAFETY: `ctx` must point at a live `Ctx<T, R, F>` whose items, closure
/// and results buffer outlive the call, and `i` must be an exclusively
/// claimed in-bounds index.
unsafe fn run_one<T, R, F>(ctx: *const (), i: usize)
where
    F: Fn(usize, &T) -> R,
{
    // SAFETY: the caller (run_batch, via JobCore) only invokes this while
    // the submitting thread keeps the Ctx, items, closure and results
    // buffer alive — i.e. before `finished` reaches `len` — and `i` was
    // claimed exclusively, so the slot write cannot race.
    let ctx = unsafe { &*ctx.cast::<Ctx<'_, T, R, F>>() };
    let item = unsafe { &*ctx.items.add(i) };
    let result = (ctx.f)(i, item);
    unsafe { ctx.results.add(i).write(Some(result)) };
}

/// The type-erased, shareable half of one fan-out: claim counter, progress
/// counter, completion signal and panic slot. `'static`, so it can sit in
/// the global registry while the item data it points to lives on the
/// submitting thread's stack — the safety protocol is that workers never
/// dereference `ctx` once every index has been claimed or the job poisoned,
/// and the submitter does not return before `finished == len`.
struct JobCore {
    run_one: RunOne,
    ctx: *const (),
    len: usize,
    /// Items claimed per `fetch_add` — the scheduling grain.
    grain: usize,
    /// Maximum threads (including the submitter) that may execute items.
    cap: usize,
    /// The deadline governing the submitting thread at submit time, if
    /// any. Checked at every batch-claim boundary and installed
    /// thread-locally while a batch's items run, so nested work and
    /// explicit [`checkpoint`](crate::deadline::checkpoint) calls observe
    /// it on workers too.
    deadline: Option<Deadline>,
    /// Next unclaimed item index; claims are `fetch_add(grain)`.
    next: AtomicUsize,
    /// Threads currently enrolled to execute items (submitter counts).
    helpers: AtomicUsize,
    /// Items finished (executed, skipped-after-poison included).
    finished: AtomicUsize,
    /// Set on the first panic; claimed-but-unrun items are skipped after.
    poisoned: AtomicBool,
    /// First panic payload, resumed on the submitting thread after drain.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Completion flag + condvar the submitter (and nested callers) park on.
    done: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: the raw pointers are only dereferenced under the protocol
// documented on the struct; the pointed-to Ctx requires `T: Sync` (shared
// item reads), `F: Sync` (shared closure calls) and `R: Send` (results move
// to the submitting thread) — enforced by `run_pooled`'s bounds before any
// JobCore is constructed.
unsafe impl Send for JobCore {}
unsafe impl Sync for JobCore {}

impl JobCore {
    /// Whether a scanning worker could still contribute: unclaimed items
    /// remain and a helper slot is free. Racy by design — the decisions
    /// are re-validated by `try_add_helper` / `run_batch`.
    fn claimable(&self) -> bool {
        self.next.load(Ordering::Relaxed) < self.len
            && self.helpers.load(Ordering::Relaxed) < self.cap
    }

    /// Enrolls the calling worker unless the thread cap is reached.
    fn try_add_helper(&self) -> bool {
        let mut current = self.helpers.load(Ordering::Relaxed);
        loop {
            if current >= self.cap {
                return false;
            }
            match self.helpers.compare_exchange_weak(
                current,
                current + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => current = seen,
            }
        }
    }

    /// Poisons the job: later claims skip execution and `payload` (if it is
    /// the first) is resumed on the submitting thread after drain.
    fn poison(&self, payload: Box<dyn Any + Send>) {
        self.poisoned.store(true, Ordering::Relaxed);
        let mut slot = lock_ignore_poison(&self.panic);
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    /// Claims and executes one batch of items. Returns `false` once nothing
    /// is left to claim (the job may still be draining on other threads).
    fn run_batch(&self) -> bool {
        // Deadline check at the claim boundary: an expired budget poisons
        // the job with the `Cancelled` sentinel, so at most one in-flight
        // grain per thread runs past the deadline before the fan-out
        // unwinds on the submitter.
        if self.deadline.as_ref().is_some_and(Deadline::expired) {
            self.poison(Box::new(Cancelled));
        }
        let start = self.next.fetch_add(self.grain, Ordering::Relaxed);
        if start >= self.len {
            return false;
        }
        let end = (start + self.grain).min(self.len);
        // Nested fan-outs issued by these items inherit this job's cap and
        // deadline (the guard restores the worker's own deadline on drop).
        let inherited = THREAD_CAP.with(|c| c.replace(self.cap));
        let _deadline_scope = install_deadline(self.deadline.clone());
        for i in start..end {
            if !self.poisoned.load(Ordering::Relaxed) {
                // SAFETY: `i` was claimed exclusively above; the submitter
                // keeps the ctx alive until `finished == len`, which cannot
                // happen before this batch's `fetch_add` below.
                let item = AssertUnwindSafe(|| unsafe { (self.run_one)(self.ctx, i) });
                if let Err(payload) = catch_unwind(item) {
                    self.poison(payload);
                }
            }
        }
        THREAD_CAP.with(|c| c.set(inherited));
        // AcqRel: the final increment's read side forms a happens-before
        // edge with every earlier release increment, so the thread that
        // observes `finished == len` also observes every result write.
        let finished = self.finished.fetch_add(end - start, Ordering::AcqRel) + (end - start);
        if finished == self.len {
            *lock_ignore_poison(&self.done) = true;
            self.done_cv.notify_all();
        }
        true
    }

    /// Parks until every item has finished executing (not merely been
    /// claimed). Used by the submitting thread after it runs out of
    /// batches to claim itself.
    fn wait_done(&self) {
        let mut done = lock_ignore_poison(&self.done);
        while !*done {
            done = self
                .done_cv
                .wait(done)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Batch size for a fan-out of `len` items at concurrency `cap`: about 8
/// claims per participating thread, so one pathologically slow item strands
/// at most `len / (8·cap)` neighbours behind it while claim traffic stays
/// at O(cap) RMWs — the adaptive replacement for the old static
/// `len / threads` chunking.
fn adaptive_grain(len: usize, cap: usize) -> usize {
    (len / (cap * 8)).max(1)
}

/// Runs the fan-out on the global pool. Caller has already established
/// `items.len() >= 2` and `effective_threads() >= 2`.
pub(crate) fn run_pooled<T, R, F>(items: &[T], grain: Option<usize>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let pool = global_pool();
    let cap = effective_threads().min(pool.threads);
    let len = items.len();
    let grain = grain.unwrap_or_else(|| adaptive_grain(len, cap)).max(1);
    let mut results: Vec<Option<R>> = std::iter::repeat_with(|| None).take(len).collect();
    let ctx = Ctx {
        items: items.as_ptr(),
        f: &f,
        results: results.as_mut_ptr(),
    };
    let job = Arc::new(JobCore {
        run_one: run_one::<T, R, F>,
        ctx: (&ctx as *const Ctx<'_, T, R, F>).cast(),
        len,
        grain,
        cap,
        deadline: current_deadline(),
        next: AtomicUsize::new(0),
        helpers: AtomicUsize::new(1), // the submitting thread
        finished: AtomicUsize::new(0),
        poisoned: AtomicBool::new(false),
        panic: Mutex::new(None),
        done: Mutex::new(false),
        done_cv: Condvar::new(),
    });
    lock_ignore_poison(&pool.shared.registry).push(Arc::clone(&job));
    // Wake only as many parked workers as could actually enroll (the
    // submitter holds one helper slot and there are at most
    // ceil(len / grain) batches): waking the whole pool for a small nested
    // job just stampedes the registry lock. A worker that is already awake
    // rescans the registry on its own, so under-waking only costs idle
    // helpers, never progress — the submitter drains its own job
    // regardless.
    let wake = cap.min(len.div_ceil(grain)).saturating_sub(1);
    for _ in 0..wake {
        pool.shared.work.notify_one();
    }
    // Help: execute batches from our own job until none are claimable,
    // then park until the stragglers other threads claimed have finished.
    // mesa-lint: hot-loop(run_batch) -- deadline polled at every batch-claim boundary inside run_batch
    while job.run_batch() {}
    job.wait_done();
    lock_ignore_poison(&pool.shared.registry).retain(|j| !Arc::ptr_eq(j, &job));
    // All items have finished: no thread will touch `ctx` again (stray
    // registry scans and `run_batch` calls read only the atomics).
    if let Some(payload) = lock_ignore_poison(&job.panic).take() {
        resume_unwind(payload);
    }
    results
        .into_iter()
        // mesa-lint: allow(serving-panic-free) -- unreachable: every claimed index writes its slot before `finished` reaches `len`, and the panicking path resumed above
        .map(|slot| slot.expect("every slot is written on the non-panicking path"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::parse_threads;

    #[test]
    fn parse_threads_accepts_positive_integers() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads(" 8 "), Some(8));
        assert_eq!(parse_threads("1"), Some(1));
    }

    #[test]
    fn parse_threads_rejects_malformed_values() {
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads(""), None);
        assert_eq!(parse_threads("four"), None);
        assert_eq!(parse_threads("-2"), None);
        assert_eq!(parse_threads("4.5"), None);
        assert_eq!(parse_threads("4 threads"), None);
    }
}
