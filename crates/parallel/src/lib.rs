//! # parallel
//!
//! The persistent work-sharing runtime behind every parallel hot path in
//! the reproduction: per-entity KG extraction, MCIMR candidate scoring,
//! `explain_many` batch fan-out, and the selection-bias analysis.
//!
//! [`parallel_map`] keeps the contract the old scoped-thread chunker had —
//! results assembled in input order, panics propagated, auto-serial for
//! small inputs — but executes on a lazily-built process-wide pool instead
//! of spawning fresh OS threads per call (see [`pool`] module docs for the
//! runtime design: lock-free batch claiming with adaptive grain, parked
//! workers, and composable nested fan-outs that never spawn or deadlock).
//!
//! ## Thread-count governance
//!
//! The pool size is resolved **once per process**, in precedence order:
//!
//! 1. the `MESA_THREADS` environment variable (a positive integer;
//!    malformed values are ignored with a one-time stderr warning rather
//!    than failing the process);
//! 2. a [`set_threads`] call made before the first fan-out;
//! 3. `std::thread::available_parallelism()`.
//!
//! [`with_thread_cap`] scopes a *cap* below the pool size (inherited by
//! nested fan-outs), which is how benchmarks sweep 1/2/4/8 threads and the
//! determinism suite forces thread counts inside a single process. Outputs
//! are byte-identical at every thread count by construction: each item owns
//! an input-order result slot and every reduction runs on the calling
//! thread in input order.
//!
//! ## Deadlines and fault injection
//!
//! [`with_deadline`] installs a cooperative [`Deadline`] that fan-outs
//! propagate to pool workers; expiry unwinds at the next batch-claim
//! boundary or explicit [`checkpoint`] with the [`Cancelled`] sentinel
//! payload (see [`deadline`] module docs). Under the `fault-injection`
//! cargo feature the `faults` registry arms named injection points
//! (declared with [`fault_point!`]) to panic, inject latency, or simulate
//! allocation failure deterministically on the Nth hit.

#![deny(missing_docs)]

pub mod deadline;
#[cfg(feature = "fault-injection")]
pub mod faults;
pub mod pool;
pub mod scoped;

pub use deadline::{checkpoint, current_deadline, with_deadline, Cancelled, Deadline};
pub use pool::{effective_threads, set_threads, with_thread_cap};
pub use scoped::scoped_map;

/// Declares a named fault-injection point. Expands to a
/// `faults::hit` call when the *calling* crate enables its
/// `fault-injection` feature (each workspace crate forwards the feature to
/// this one) and to nothing at all otherwise — production builds carry
/// zero overhead.
#[macro_export]
macro_rules! fault_point {
    ($point:expr) => {
        #[cfg(feature = "fault-injection")]
        $crate::faults::hit($point);
    };
}

/// Minimum number of items before the pool is engaged; below this the
/// submission cost outweighs the work for typical (cheap) items.
const MIN_ITEMS_PER_FAN_OUT: usize = 8;

/// Tuning knobs for one fan-out call. The default reproduces
/// [`parallel_map`]'s behaviour; call sites whose items are individually
/// expensive (whole explanation pipelines, not per-candidate scores) use
/// [`FanOut::heavy`] so even a 2-item batch parallelises at grain 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FanOut {
    /// Inputs shorter than this run serially on the calling thread.
    pub min_items: usize,
    /// Items claimed per scheduling step; `None` picks an adaptive grain
    /// (about 8 claims per participating thread).
    pub grain: Option<usize>,
}

impl Default for FanOut {
    fn default() -> Self {
        FanOut {
            min_items: MIN_ITEMS_PER_FAN_OUT,
            grain: None,
        }
    }
}

impl FanOut {
    /// Settings for fan-outs over individually expensive items: any batch
    /// of ≥ 2 parallelises and every item is its own scheduling unit.
    pub fn heavy() -> Self {
        FanOut {
            min_items: 2,
            grain: Some(1),
        }
    }
}

/// Applies `f` to every item (with its index), preserving input order in
/// the returned vector. Runs on the persistent pool at up to
/// [`effective_threads`] concurrency; small inputs (and `cap = 1`) run
/// serially on the calling thread. Safe to call from inside a pool task:
/// nested fan-outs share the pool instead of spawning threads.
///
/// # Panics
/// Propagates the first panic raised by `f` (after all in-flight items
/// have drained).
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_with(items, FanOut::default(), f)
}

/// [`parallel_map`] with explicit [`FanOut`] tuning.
pub fn parallel_map_with<T, R, F>(items: &[T], fan_out: FanOut, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if effective_threads() <= 1 || items.len() < fan_out.min_items.max(2) {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    pool::run_pooled(items, fan_out.grain, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::AssertUnwindSafe;

    /// Every pool-path test goes through this so the process resolves a
    /// deterministic multi-thread pool even on a single-core host
    /// (`MESA_THREADS`, when set, still wins).
    fn pool4() -> usize {
        set_threads(4)
    }

    #[test]
    fn preserves_order_and_indices() {
        pool4();
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn small_and_empty_inputs() {
        pool4();
        let out = parallel_map(&[1, 2, 3], |_, &x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
        let empty: Vec<i32> = Vec::new();
        assert!(parallel_map(&empty, |_, &x: &i32| x).is_empty());
    }

    #[test]
    fn results_carry_errors_per_item() {
        pool4();
        let items: Vec<i32> = (0..40).collect();
        let out: Vec<Result<i32, String>> = parallel_map(&items, |_, &x| {
            if x % 7 == 0 {
                Err(format!("bad {x}"))
            } else {
                Ok(x)
            }
        });
        assert_eq!(out.iter().filter(|r| r.is_err()).count(), 6);
        assert_eq!(out[1], Ok(1));
    }

    #[test]
    fn thread_cap_one_is_fully_serial() {
        pool4();
        let caller = std::thread::current().id();
        let items: Vec<usize> = (0..64).collect();
        let ids = with_thread_cap(1, || {
            parallel_map(&items, |_, _| std::thread::current().id())
        });
        assert!(ids.iter().all(|&id| id == caller));
        assert_eq!(effective_threads(), pool4(), "cap restored after scope");
    }

    #[test]
    fn heavy_fan_out_parallelises_two_items() {
        pool4();
        // Contract check only (scheduling may still run both on one thread
        // on a busy host): a 2-item heavy fan-out takes the pool path and
        // returns in order.
        let out = parallel_map_with(&[10, 20], FanOut::heavy(), |i, &x| (i, x * 2));
        assert_eq!(out, vec![(0, 20), (1, 40)]);
        // Below min_items it stays serial even for heavy settings.
        let caller = std::thread::current().id();
        let one = parallel_map_with(&[7], FanOut::heavy(), |_, _| std::thread::current().id());
        assert_eq!(one, vec![caller]);
    }

    #[test]
    fn panic_payload_is_resumed_once_after_drain() {
        pool4();
        let items: Vec<usize> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            parallel_map(&items, |_, &x| {
                if x == 13 {
                    panic!("boom {x}");
                }
                x
            })
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .expect("panic! with format produces a String payload");
        assert_eq!(msg, "boom 13");
        // The pool survives a panicked job.
        let ok = parallel_map(&items, |_, &x| x + 1);
        assert_eq!(ok[63], 64);
    }

    #[test]
    fn scoped_reference_joins_all_before_resuming() {
        // Two panicking chunks: the old `join().expect()` pattern aborted
        // here (panic during unwind in the scope guard); the fixed version
        // joins everything and resumes the first payload.
        let items: Vec<usize> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            scoped_map(&items, 4, |_, &x| {
                if x % 16 == 3 {
                    panic!("chunk panic at {x}");
                }
                x
            })
        });
        assert!(result.is_err());
        let ok = scoped_map(&items, 4, |i, &x| i + x);
        assert_eq!(ok[10], 20);
    }

    #[test]
    fn expired_deadline_cancels_fan_out_and_pool_survives() {
        pool4();
        let items: Vec<usize> = (0..256).collect();
        let d = Deadline::after(std::time::Duration::ZERO);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            with_deadline(&d, || parallel_map(&items, |_, &x| x * 2))
        }));
        let payload = result.expect_err("expired deadline must unwind the fan-out");
        assert!(payload.downcast_ref::<Cancelled>().is_some());
        // The pool and the calling thread are both reusable afterwards.
        assert!(current_deadline().is_none(), "deadline scope restored");
        let ok = parallel_map(&items, |_, &x| x + 1);
        assert_eq!(ok[255], 256);
    }

    #[test]
    fn workers_observe_the_submitters_deadline() {
        pool4();
        let items: Vec<usize> = (0..64).collect();
        let d = Deadline::after(std::time::Duration::from_secs(60));
        let seen = with_deadline(&d, || {
            parallel_map(&items, |_, _| current_deadline().is_some())
        });
        assert!(
            seen.iter().all(|&s| s),
            "every item ran with the deadline installed"
        );
    }

    #[test]
    fn checkpoint_inside_items_cancels_mid_batch() {
        pool4();
        let items: Vec<usize> = (0..64).collect();
        let d = Deadline::after(std::time::Duration::from_secs(60));
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            with_deadline(&d, || {
                parallel_map(&items, |_, &x| {
                    if x == 7 {
                        d.cancel();
                    }
                    checkpoint();
                    x
                })
            })
        }));
        let payload = result.expect_err("cancel + checkpoint must unwind");
        assert!(payload.downcast_ref::<Cancelled>().is_some());
        let ok = parallel_map(&items, |_, &x| x);
        assert_eq!(ok.len(), 64);
    }

    #[test]
    fn scoped_reference_matches_pool_output() {
        pool4();
        let items: Vec<u64> = (0..200).collect();
        let pooled = parallel_map(&items, |i, &x| x * x + i as u64);
        let scoped = scoped_map(&items, 4, |i, &x| x * x + i as u64);
        assert_eq!(pooled, scoped);
    }
}
