//! # parallel
//!
//! Scoped-thread fan-out for independent per-item work, shared by every
//! layer that needs it (MCIMR candidate scoring, the selection-bias
//! analysis, per-entity KG attribute extraction).
//!
//! The items are evaluated independently against shared read-only state, so
//! they parallelise with plain `std::thread::scope` chunking — no external
//! thread-pool dependency. On a single-core host (or for small inputs) the
//! fan-out degenerates to the serial loop, so results are identical either
//! way: outputs are collected per chunk and re-assembled in input order.

#![deny(missing_docs)]

/// Minimum number of items before threads are spawned; below this the
/// per-thread setup cost outweighs the work.
const MIN_ITEMS_PER_FAN_OUT: usize = 8;

/// Applies `f` to every item (with its index), preserving input order in the
/// returned vector. Uses up to `available_parallelism` scoped threads, each
/// working one contiguous chunk.
///
/// # Panics
/// Propagates panics from `f`.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len());
    if threads <= 1 || items.len() < MIN_ITEMS_PER_FAN_OUT {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .enumerate()
            .map(|(ci, chunk)| {
                scope.spawn(move || {
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(j, t)| f(ci * chunk_len + j, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        let mut out = Vec::with_capacity(items.len());
        for handle in handles {
            out.extend(handle.join().expect("worker thread panicked"));
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_indices() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn small_and_empty_inputs() {
        let out = parallel_map(&[1, 2, 3], |_, &x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
        let empty: Vec<i32> = Vec::new();
        assert!(parallel_map(&empty, |_, &x: &i32| x).is_empty());
    }

    #[test]
    fn results_carry_errors_per_item() {
        let items: Vec<i32> = (0..40).collect();
        let out: Vec<Result<i32, String>> = parallel_map(&items, |_, &x| {
            if x % 7 == 0 {
                Err(format!("bad {x}"))
            } else {
                Ok(x)
            }
        });
        assert_eq!(out.iter().filter(|r| r.is_err()).count(), 6);
        assert_eq!(out[1], Ok(1));
    }
}
