//! Exact-diagnostics tests over the known-bad fixture workspace in
//! `tests/fixtures/ws`. Every rule has at least one firing case, the two
//! literal patterns the old CI grep matched (`.unwrap()`, `panic!(`) appear
//! as serving-path cases, and the suppression machinery is exercised in
//! both the honored (reasoned) and ignored (reasonless) direction.

use std::path::PathBuf;

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

/// `(rule, file, line, col)` of every diagnostic the fixture tree must
/// produce — nothing more, nothing less, in driver (sorted) order.
const EXPECTED: &[(&str, &str, u32, u32)] = &[
    ("bench-schema", "BENCH_bad_fields.json", 4, 1),
    ("bench-schema", "BENCH_bad_fields.json", 5, 1),
    ("bench-schema", "BENCH_bad_fields.json", 6, 1),
    ("bench-schema", "BENCH_bad_fields.json", 6, 1),
    ("bench-schema", "BENCH_broken.json", 6, 1),
    ("fault-point-registry", "crates/kg/src/extraction.rs", 5, 28),
    ("checkpoint-coverage", "crates/kg/src/extraction.rs", 9, 5),
    ("checkpoint-coverage", "crates/kg/src/extraction.rs", 18, 5),
    ("checkpoint-coverage", "crates/kg/src/extraction.rs", 22, 5),
    ("crate-hygiene", "crates/kg/src/extraction.rs", 23, 5),
    ("crate-hygiene", "crates/kg/src/extraction.rs", 24, 5),
    ("crate-hygiene", "crates/kg/src/lib.rs", 1, 1),
    ("forbid-unsafe", "crates/kg/src/lib.rs", 1, 1),
    ("lint-directive", "crates/mesa/src/cache.rs", 6, 5),
    ("serving-panic-free", "crates/mesa/src/cache.rs", 7, 16),
    ("lint-directive", "crates/mesa/src/cache.rs", 11, 5),
    ("lint-directive", "crates/mesa/src/cache.rs", 16, 5),
    ("serving-panic-free", "crates/mesa/src/session.rs", 7, 27),
    ("serving-panic-free", "crates/mesa/src/session.rs", 8, 26),
    ("serving-panic-free", "crates/mesa/src/session.rs", 10, 9),
    ("serving-index", "crates/mesa/src/session.rs", 12, 21),
    (
        "fault-point-registry",
        "crates/parallel/src/faults.rs",
        8,
        5,
    ),
    (
        "fault-point-registry",
        "crates/parallel/src/faults.rs",
        9,
        5,
    ),
    ("safety-comment", "crates/parallel/src/pool.rs", 19, 5),
    ("fault-point-registry", "tests/robustness.rs", 7, 5),
];

#[test]
fn fixture_tree_produces_exactly_the_expected_diagnostics() {
    let diags = lint::run_check(&fixture_root()).expect("fixture tree readable");
    let got: Vec<(&str, String, u32, u32)> = diags
        .iter()
        .map(|d| (d.rule, d.file.to_string_lossy().into_owned(), d.line, d.col))
        .collect();
    let want: Vec<(&str, String, u32, u32)> = EXPECTED
        .iter()
        .map(|&(rule, file, line, col)| (rule, file.to_string(), line, col))
        .collect();
    assert_eq!(got, want, "fixture diagnostics drifted");
}

#[test]
fn every_rule_id_fires_in_the_fixture_tree() {
    // `serving-index` and `safety-comment` etc. must all be represented so
    // a rule cannot silently stop matching.
    for rule in lint::rules::KNOWN_RULES {
        assert!(
            EXPECTED.iter().any(|(r, ..)| r == rule),
            "rule `{rule}` has no fixture case"
        );
    }
}

#[test]
fn diagnostics_render_rule_id_and_location() {
    let diags = lint::run_check(&fixture_root()).expect("fixture tree readable");
    let first = diags.first().expect("fixture tree is known-bad");
    let rendered = first.to_string();
    assert!(rendered.contains("error[bench-schema]"), "got: {rendered}");
    assert!(
        rendered.contains("BENCH_bad_fields.json:4:1"),
        "got: {rendered}"
    );
    assert!(rendered.contains("help:"), "got: {rendered}");
}

#[test]
fn fault_point_report_names_the_fixture_registry() {
    let report = lint::run_fault_points(&fixture_root()).expect("fixture tree readable");
    assert_eq!(
        report.named,
        ["fixture.good", "fixture.ghost", "fixture.untested"]
    );
    assert_eq!(
        report.tested,
        ["fixture.good", "fixture.ghost", "fixture.rogue"]
    );
    assert!(report.sites.contains_key("fixture.rogue"));
    assert!(
        !report.diags.is_empty(),
        "fixture registry drift must be reported"
    );
}

#[test]
fn cli_exits_nonzero_on_fixtures_and_zero_on_rules() {
    let bin = env!("CARGO_BIN_EXE_lint");
    let check = std::process::Command::new(bin)
        .args(["--root"])
        .arg(fixture_root())
        .arg("check")
        .output()
        .expect("lint binary runs");
    assert!(!check.status.success(), "fixture tree must fail the CLI");
    let stderr = String::from_utf8_lossy(&check.stderr);
    assert!(
        stderr.contains("error[serving-panic-free]"),
        "got: {stderr}"
    );

    let rules = std::process::Command::new(bin)
        .arg("rules")
        .output()
        .expect("lint binary runs");
    assert!(rules.status.success());
    let stdout = String::from_utf8_lossy(&rules.stdout);
    for rule in lint::rules::KNOWN_RULES {
        assert!(stdout.contains(rule), "rules listing is missing `{rule}`");
    }
}
