//! Fixture: hot-loop coverage, banned macros and fault-point call sites.

pub fn expand(n: usize) -> usize {
    parallel::fault_point!("fixture.good");
    parallel::fault_point!("fixture.rogue");
    parallel::fault_point!("fixture.untested");
    let mut total = 0;
    // mesa-lint: hot-loop -- fixture: loop with no checkpoint call
    for i in 0..n {
        total += i;
    }
    // mesa-lint: hot-loop -- fixture: loop that does poll
    for i in 0..n {
        parallel::checkpoint();
        total += i;
    }
    // mesa-lint: hot-loop(poll) -- fixture: named polling call absent
    while busy(total) {
        total -= 1;
    }
    // mesa-lint: hot-loop -- fixture: dangling marker, no loop follows
    let snapshot = total;
    dbg!(snapshot);
    todo!()
}

fn busy(n: usize) -> bool {
    n > 0
}
