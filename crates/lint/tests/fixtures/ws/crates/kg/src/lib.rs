//! Fixture: crate root missing both `#![deny(missing_docs)]` and
//! `#![forbid(unsafe_code)]`.

pub mod extraction;
