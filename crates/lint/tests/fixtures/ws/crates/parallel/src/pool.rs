//! Fixture: SAFETY discipline and named hot-loop polling.

/// Reads the first byte behind `p`.
pub fn first_byte(p: *const u8) -> u8 {
    // SAFETY: fixture caller guarantees `p` is valid for reads.
    unsafe { *p }
}

/// Padding so the next unsafe site sits outside the previous comment's
/// 8-line SAFETY window:
/// one,
/// two,
/// three,
/// four,
/// five.
///
/// Reads the second byte behind `p` without any justification.
pub fn second_byte(p: *const u8) -> u8 {
    unsafe { *p.add(1) }
}

/// Claims and drains batches; the deadline poll lives inside `run_batch`.
pub fn drain(mut n: u32) {
    // mesa-lint: hot-loop(run_batch) -- fixture: polling call named explicitly
    while run_batch(&mut n) {}
}

fn run_batch(n: &mut u32) -> bool {
    if *n == 0 {
        return false;
    }
    *n -= 1;
    true
}
