//! Fixture: the documented fault-point registry, with one ghost entry and
//! one entry the robustness list forgot.
#![deny(missing_docs)]

/// Documented injection points.
pub const NAMED_POINTS: &[&str] = &[
    "fixture.good",
    "fixture.ghost",
    "fixture.untested",
];
