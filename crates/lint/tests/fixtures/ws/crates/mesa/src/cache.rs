//! Fixture: malformed `mesa-lint` directives.
#![deny(missing_docs)]
#![forbid(unsafe_code)]

fn reasonless(xs: &[u32]) -> u32 {
    // mesa-lint: allow(serving-panic-free)
    xs.first().unwrap() + 1
}

fn unknown_rule(xs: &[u32]) -> u32 {
    // mesa-lint: allow(no-such-rule) -- the rule id does not exist
    xs.iter().sum()
}

fn unknown_verb() {
    // mesa-lint: frobnicate the registry
}
