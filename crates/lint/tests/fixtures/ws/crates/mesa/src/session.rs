//! Fixture: serving-path panic and indexing violations, including the two
//! literal patterns (`.unwrap()`, `panic!(`) the old CI grep audit matched.
#![deny(missing_docs)]
#![forbid(unsafe_code)]

fn serve(xs: &[u32]) -> u32 {
    let head = xs.first().unwrap();
    let tail = xs.last().expect("non-empty");
    if xs.is_empty() {
        panic!("empty batch");
    }
    head + tail + xs[0]
}

fn suppressed(xs: &[u32]) -> u32 {
    // mesa-lint: allow(serving-panic-free) -- fixture: a reasoned suppression is honored
    xs.first().unwrap() + 1
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_inside_tests_is_exempt() {
        let v = vec![1u32];
        assert_eq!(*v.first().unwrap(), v[0]);
    }
}
