//! Fixture robustness suite: lists one point that is not documented and
//! misses one that is.

const FAULT_POINTS: &[&str] = &[
    "fixture.good",
    "fixture.ghost",
    "fixture.rogue",
];
