//! Fixture umbrella crate root: carries both required attributes, so it
//! must produce no diagnostics.
#![deny(missing_docs)]
#![forbid(unsafe_code)]
