//! The workspace self-check: the real repository must lint clean, and the
//! real fault-point registry must be consistent. This is the test-suite
//! mirror of the CI `cargo run -p lint -- check` gate, so a violation
//! fails `cargo test` even where CI is not running.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

#[test]
fn the_workspace_lints_clean() {
    let diags = lint::run_check(&workspace_root()).expect("workspace readable");
    let rendered: Vec<String> = diags.iter().map(ToString::to_string).collect();
    assert!(
        diags.is_empty(),
        "the workspace must produce no lint diagnostics:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn the_fault_point_registry_is_consistent() {
    let report = lint::run_fault_points(&workspace_root()).expect("workspace readable");
    let rendered: Vec<String> = report.diags.iter().map(ToString::to_string).collect();
    assert!(
        report.diags.is_empty(),
        "fault-point registry drifted:\n{}",
        rendered.join("\n")
    );
    assert!(
        !report.named.is_empty(),
        "the registry must document at least one point"
    );
    // Every documented point has at least one live call site.
    for name in &report.named {
        assert!(
            report.sites.contains_key(name),
            "documented point `{name}` has no call site"
        );
    }
}
