//! A minimal JSON reader with line tracking, used by the bench-schema rule.
//!
//! Supports exactly the subset the bench reporters emit: objects, arrays,
//! strings with simple escapes, numbers, booleans and null. Parse errors
//! carry the 1-based line so diagnostics can point into the file.

use std::collections::BTreeMap;

/// A parsed JSON value annotated with the line it started on.
#[derive(Debug, Clone)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes decoded except `\u`, which is kept verbatim).
    Str(String),
    /// An array with the line it opened on.
    Arr(Vec<Value>, u32),
    /// An object with the line it opened on. Key order is not preserved.
    Obj(BTreeMap<String, Value>, u32),
}

impl Value {
    /// The line this value started on (1 for scalars, which don't track it).
    pub fn line(&self) -> u32 {
        match self {
            Value::Arr(_, line) | Value::Obj(_, line) => *line,
            _ => 1,
        }
    }

    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map, _) => map.get(key),
            _ => None,
        }
    }

    /// The number inside, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string inside, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse `src` as a single JSON document.
///
/// On failure returns `(message, line)` describing the first error.
pub fn parse(src: &str) -> Result<Value, (String, u32)> {
    let mut parser = Parser {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos < parser.chars.len() {
        return Err(("trailing content after JSON document".into(), parser.line));
    }
    Ok(value)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let ch = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if ch == '\n' {
            self.line += 1;
        }
        Some(ch)
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|c| c.is_whitespace()) {
            self.bump();
        }
    }

    fn expect(&mut self, want: char) -> Result<(), (String, u32)> {
        match self.bump() {
            Some(got) if got == want => Ok(()),
            Some(got) => Err((format!("expected `{want}`, found `{got}`"), self.line)),
            None => Err((format!("expected `{want}`, found end of input"), self.line)),
        }
    }

    fn value(&mut self) -> Result<Value, (String, u32)> {
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Value::Str(self.string()?)),
            Some('t') => self.literal("true", Value::Bool(true)),
            Some('f') => self.literal("false", Value::Bool(false)),
            Some('n') => self.literal("null", Value::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err((format!("unexpected character `{c}`"), self.line)),
            None => Err(("unexpected end of input".into(), self.line)),
        }
    }

    fn object(&mut self) -> Result<Value, (String, u32)> {
        let line = self.line;
        self.expect('{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.bump();
            return Ok(Value::Obj(map, line));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(Value::Obj(map, line)),
                _ => return Err(("expected `,` or `}` in object".into(), self.line)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, (String, u32)> {
        let line = self.line;
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.bump();
            return Ok(Value::Arr(items, line));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => return Ok(Value::Arr(items, line)),
                _ => return Err(("expected `,` or `]` in array".into(), self.line)),
            }
        }
    }

    fn string(&mut self) -> Result<String, (String, u32)> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some(other) => out.push(other),
                    None => return Err(("unterminated escape".into(), self.line)),
                },
                Some(ch) => out.push(ch),
                None => return Err(("unterminated string".into(), self.line)),
            }
        }
    }

    fn number(&mut self) -> Result<Value, (String, u32)> {
        let line = self.line;
        let mut text = String::new();
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || "-+.eE".contains(c))
        {
            if let Some(c) = self.bump() {
                text.push(c);
            }
        }
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| (format!("invalid number `{text}`"), line))
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, (String, u32)> {
        for want in word.chars() {
            if self.bump() != Some(want) {
                return Err((format!("invalid literal (expected `{word}`)"), self.line));
            }
        }
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let doc = parse("{\n \"a\": [1, 2.5, true],\n \"b\": \"x\\\"y\"\n}").unwrap();
        let arr = doc.get("a").unwrap();
        assert_eq!(arr.line(), 2);
        match arr {
            Value::Arr(items, _) => assert_eq!(items[1].as_num(), Some(2.5)),
            _ => panic!("expected array"),
        }
        assert_eq!(doc.get("b").unwrap().as_str(), Some("x\"y"));
    }

    #[test]
    fn errors_carry_lines() {
        let err = parse("{\n \"a\": [1,\n }").unwrap_err();
        assert_eq!(err.1, 3);
    }
}
