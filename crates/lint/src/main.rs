//! `mesa-lint` command-line entry point.
//!
//! ```text
//! cargo run -p lint -- check          # run every rule; exit 1 on findings
//! cargo run -p lint -- fault-points   # print the fault-point registry view
//! cargo run -p lint -- rules          # list rule ids and summaries
//! ```
//!
//! All subcommands accept `--root <dir>` to lint a tree other than the
//! current workspace (used by the fixture tests).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut command = None;
    let mut root = PathBuf::from(".");
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "check" | "fault-points" | "rules" if command.is_none() => command = Some(arg),
            other => return usage(&format!("unexpected argument `{other}`")),
        }
    }
    let Some(command) = command else {
        return usage("missing subcommand");
    };
    match command.as_str() {
        "rules" => {
            for (rule, summary) in lint::rules::RULE_TABLE {
                println!("{rule:24} {summary}");
            }
            ExitCode::SUCCESS
        }
        "check" => match lint::run_check(&root) {
            Ok(diags) if diags.is_empty() => {
                println!("mesa-lint: workspace clean");
                ExitCode::SUCCESS
            }
            Ok(diags) => {
                for diag in &diags {
                    eprintln!("{diag}\n");
                }
                eprintln!("mesa-lint: {} diagnostic(s)", diags.len());
                ExitCode::FAILURE
            }
            Err(err) => fail(&err),
        },
        "fault-points" => match lint::run_fault_points(&root) {
            Ok(report) => {
                println!("documented points ({}):", report.named.len());
                for name in &report.named {
                    let sites = report.sites.get(name).map(Vec::as_slice).unwrap_or(&[]);
                    let tested = if report.tested.contains(name) {
                        "tested"
                    } else {
                        "UNTESTED"
                    };
                    println!("  {name}  [{tested}]  {}", sites.join(", "));
                }
                if report.diags.is_empty() {
                    println!("mesa-lint: fault-point registry consistent");
                    ExitCode::SUCCESS
                } else {
                    for diag in &report.diags {
                        eprintln!("{diag}\n");
                    }
                    eprintln!("mesa-lint: {} registry diagnostic(s)", report.diags.len());
                    ExitCode::FAILURE
                }
            }
            Err(err) => fail(&err),
        },
        _ => unreachable!("command validated above"),
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("mesa-lint: {problem}");
    eprintln!("usage: lint [--root <dir>] <check|fault-points|rules>");
    ExitCode::FAILURE
}

fn fail(err: &std::io::Error) -> ExitCode {
    eprintln!("mesa-lint: i/o error: {err}");
    ExitCode::FAILURE
}
