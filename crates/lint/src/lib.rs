//! # mesa-lint
//!
//! A registry-free, hand-rolled static-analysis pass over this workspace's
//! own sources. PRs 7–8 turned the reproduction into a serving system whose
//! correctness rests on *conventions* — a panic-free serving path, an
//! unsafe job-record protocol in the pool, string-keyed fault points, and
//! cooperative-deadline checkpoints in every hot loop. This crate encodes
//! those conventions as machine-checked rules so they cannot rot silently:
//! CI runs `cargo run -p lint -- check` and fails on any diagnostic.
//!
//! ## Design
//!
//! No `syn`, no registry dependencies (consistent with the vendored-deps
//! constraint): a conservative [`lexer`] tokenizes Rust source far enough
//! to tell comments, strings, attributes and block structure apart, and the
//! [`rules`] module pattern-matches invariants on the token stream. False
//! negatives are accepted where full parsing would be needed; false
//! positives are suppressed inline with
//! `// mesa-lint: allow(rule-id) -- reason`, and a suppression without a
//! reason is itself a diagnostic ([`rules::RULE_LINT_DIRECTIVE`]).
//!
//! The CLI lives in `src/main.rs`; the library surface exists so the test
//! suite can run the exact production driver against both the fixture
//! workspace in `tests/fixtures/ws` and the real workspace (the self-check
//! that keeps the tree lint-clean).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod diag;
pub mod json;
pub mod lexer;
pub mod rules;
pub mod workspace;

pub use diag::Diagnostic;
pub use workspace::{run_check, run_fault_points};
