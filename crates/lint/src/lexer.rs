//! A conservative Rust tokenizer.
//!
//! This is deliberately *not* a full lexer: it only distinguishes the token
//! classes the rules need — comments, string/char literals, identifiers,
//! numbers, lifetimes and single-character punctuation — while tracking the
//! line/column of every token. Anything subtler (float suffix grammar,
//! shebangs, frontmatter) is handled conservatively: the worst case is a
//! missed diagnostic, never a bogus one on well-formed code.

/// The class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// `// ...`, `/* ... */` (nesting respected). Text includes the markers.
    Comment,
    /// String, raw-string, byte-string or char literal. Text is the
    /// *contents* without quotes/hashes/prefix, so rules can compare values.
    Str,
    /// Identifier or keyword (raw idents are stored without the `r#`).
    Ident,
    /// Numeric literal (integers and simple floats; suffixes included).
    Num,
    /// A lifetime such as `'a` (text without the quote).
    Lifetime,
    /// Any other single character: `.`, `(`, `[`, `{`, `!`, `#`, ...
    Punct,
}

/// One lexed token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Token text; see [`TokenKind`] for what is included per class.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in chars) of the token's first character.
    pub col: u32,
    /// 1-based line of the token's last character (differs from `line`
    /// only for block comments and multi-line strings).
    pub end_line: u32,
}

impl Token {
    /// True when this token is punctuation equal to `ch`.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct
            && self.text.len() == ch.len_utf8()
            && self.text.starts_with(ch)
    }

    /// True when this token is an identifier equal to `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }
}

/// Tokenize `src`, returning every token including comments.
///
/// The lexer never fails: on malformed input (e.g. an unterminated string)
/// it consumes to end of input and returns what it has. Rules must treat
/// the stream as best-effort.
pub fn tokenize(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Lexer {
    fn new(src: &str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let ch = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if ch == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(ch)
    }

    fn run(mut self) -> Vec<Token> {
        let mut tokens = Vec::new();
        while let Some(ch) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            if ch.is_whitespace() {
                self.bump();
                continue;
            }
            let token = if ch == '/' && self.peek(1) == Some('/') {
                self.line_comment(line, col)
            } else if ch == '/' && self.peek(1) == Some('*') {
                self.block_comment(line, col)
            } else if ch == '"' {
                self.string(line, col)
            } else if self.raw_string_prefix().is_some() {
                self.raw_string(line, col)
            } else if (ch == 'b' && self.peek(1) == Some('"'))
                || (ch == 'c' && self.peek(1) == Some('"'))
            {
                self.bump();
                self.string(line, col)
            } else if ch == '\'' {
                self.char_or_lifetime(line, col)
            } else if ch == 'r' && self.peek(1) == Some('#') && is_ident_start(self.peek(2)) {
                self.bump();
                self.bump();
                self.ident(line, col)
            } else if is_ident_start(Some(ch)) {
                self.ident(line, col)
            } else if ch.is_ascii_digit() {
                self.number(line, col)
            } else {
                self.bump();
                Token {
                    kind: TokenKind::Punct,
                    text: ch.to_string(),
                    line,
                    col,
                    end_line: line,
                }
            };
            tokens.push(token);
        }
        tokens
    }

    /// `Some(hash_count)` when the cursor sits on `r"`, `r#"`, `br"`, ...
    fn raw_string_prefix(&self) -> Option<usize> {
        let mut at = 0;
        match self.peek(0)? {
            'r' => {}
            'b' | 'c' if self.peek(1) == Some('r') => at = 1,
            _ => return None,
        }
        let mut hashes = 0;
        loop {
            match self.peek(at + 1 + hashes) {
                Some('#') => hashes += 1,
                Some('"') => return Some(hashes),
                _ => return None,
            }
        }
    }

    fn line_comment(&mut self, line: u32, col: u32) -> Token {
        let mut text = String::new();
        while let Some(ch) = self.peek(0) {
            if ch == '\n' {
                break;
            }
            text.push(ch);
            self.bump();
        }
        Token {
            kind: TokenKind::Comment,
            text,
            line,
            col,
            end_line: line,
        }
    }

    fn block_comment(&mut self, line: u32, col: u32) -> Token {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(ch) = self.peek(0) {
            if ch == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if ch == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(ch);
                self.bump();
            }
        }
        let end_line = self.line;
        Token {
            kind: TokenKind::Comment,
            text,
            line,
            col,
            end_line,
        }
    }

    fn string(&mut self, line: u32, col: u32) -> Token {
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(ch) = self.peek(0) {
            if ch == '\\' {
                text.push(ch);
                self.bump();
                if let Some(esc) = self.bump() {
                    text.push(esc);
                }
            } else if ch == '"' {
                self.bump();
                break;
            } else {
                text.push(ch);
                self.bump();
            }
        }
        let end_line = self.line;
        Token {
            kind: TokenKind::Str,
            text,
            line,
            col,
            end_line,
        }
    }

    fn raw_string(&mut self, line: u32, col: u32) -> Token {
        let hashes = self.raw_string_prefix().unwrap_or(0);
        // Consume prefix (optional b/c, the r, hashes) and the opening quote.
        while self.peek(0) != Some('"') {
            self.bump();
        }
        self.bump();
        let closer = format!("\"{}", "#".repeat(hashes));
        let mut text = String::new();
        'outer: while self.peek(0).is_some() {
            if self.peek(0) == Some('"') {
                let mut matched = true;
                for (i, want) in closer.chars().enumerate() {
                    if self.peek(i) != Some(want) {
                        matched = false;
                        break;
                    }
                }
                if matched {
                    for _ in 0..closer.len() {
                        self.bump();
                    }
                    break 'outer;
                }
            }
            if let Some(ch) = self.bump() {
                text.push(ch);
            }
        }
        let end_line = self.line;
        Token {
            kind: TokenKind::Str,
            text,
            line,
            col,
            end_line,
        }
    }

    fn char_or_lifetime(&mut self, line: u32, col: u32) -> Token {
        // `'a` is a lifetime when an ident-start follows and the char after
        // the ident is not a closing quote (`'a'` is a char literal).
        if is_ident_start(self.peek(1)) {
            let mut end = 2;
            while is_ident_continue(self.peek(end)) {
                end += 1;
            }
            if self.peek(end) != Some('\'') {
                self.bump(); // quote
                let mut text = String::new();
                while is_ident_continue(self.peek(0)) {
                    if let Some(ch) = self.bump() {
                        text.push(ch);
                    }
                }
                return Token {
                    kind: TokenKind::Lifetime,
                    text,
                    line,
                    col,
                    end_line: line,
                };
            }
        }
        // Char literal: consume until the closing quote, honoring escapes.
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(ch) = self.peek(0) {
            if ch == '\\' {
                text.push(ch);
                self.bump();
                if let Some(esc) = self.bump() {
                    text.push(esc);
                }
            } else if ch == '\'' {
                self.bump();
                break;
            } else if ch == '\n' {
                break; // malformed; don't eat the rest of the file
            } else {
                text.push(ch);
                self.bump();
            }
        }
        Token {
            kind: TokenKind::Str,
            text,
            line,
            col,
            end_line: line,
        }
    }

    fn ident(&mut self, line: u32, col: u32) -> Token {
        let mut text = String::new();
        while is_ident_continue(self.peek(0)) {
            if let Some(ch) = self.bump() {
                text.push(ch);
            }
        }
        Token {
            kind: TokenKind::Ident,
            text,
            line,
            col,
            end_line: line,
        }
    }

    fn number(&mut self, line: u32, col: u32) -> Token {
        let mut text = String::new();
        while let Some(ch) = self.peek(0) {
            if ch.is_ascii_alphanumeric() || ch == '_' {
                text.push(ch);
                self.bump();
            } else if ch == '.'
                && self.peek(1).is_some_and(|next| next.is_ascii_digit())
                && !text.contains('.')
            {
                // `1.5` continues the number; `1..n` and `1.method()` do not.
                text.push(ch);
                self.bump();
            } else {
                break;
            }
        }
        Token {
            kind: TokenKind::Num,
            text,
            line,
            col,
            end_line: line,
        }
    }
}

fn is_ident_start(ch: Option<char>) -> bool {
    ch.is_some_and(|c| c.is_alphabetic() || c == '_')
}

fn is_ident_continue(ch: Option<char>) -> bool {
    ch.is_some_and(|c| c.is_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn comments_and_strings() {
        let toks = kinds("// line\n/* outer /* inner */ end */ \"s\" r#\"raw\"x\"# b\"by\"");
        assert_eq!(toks[0], (TokenKind::Comment, "// line".into()));
        assert_eq!(
            toks[1],
            (TokenKind::Comment, "/* outer /* inner */ end */".into())
        );
        assert_eq!(toks[2], (TokenKind::Str, "s".into()));
        assert_eq!(toks[3], (TokenKind::Str, "raw\"x".into()));
        assert_eq!(toks[4], (TokenKind::Str, "by".into()));
    }

    #[test]
    fn lifetime_vs_char() {
        let toks = kinds("&'a str 'x' '\\n'");
        assert!(toks.contains(&(TokenKind::Lifetime, "a".into())));
        assert!(toks.contains(&(TokenKind::Str, "x".into())));
        assert!(toks.contains(&(TokenKind::Str, "\\n".into())));
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let toks = kinds("0..n 1.5 7.max(1)");
        assert_eq!(toks[0], (TokenKind::Num, "0".into()));
        assert_eq!(toks[1], (TokenKind::Punct, ".".into()));
        assert!(toks.contains(&(TokenKind::Num, "1.5".into())));
        assert!(toks.contains(&(TokenKind::Num, "7".into())));
        assert!(toks.contains(&(TokenKind::Ident, "max".into())));
    }

    #[test]
    fn raw_idents_and_positions() {
        let toks = tokenize("a\n  r#match");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[0].col, 1);
        assert_eq!(toks[1].text, "match");
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[1].col, 3);
    }
}
