//! Structured diagnostics and inline suppressions.

use std::fmt;
use std::path::{Path, PathBuf};

use crate::lexer::{Token, TokenKind};

/// One finding emitted by a rule.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable rule identifier, e.g. `serving-panic-free`.
    pub rule: &'static str,
    /// File the finding points at (workspace-relative where possible).
    pub file: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it (or how to suppress it with a reason).
    pub suggestion: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "error[{}]: {}\n  --> {}:{}:{}",
            self.rule,
            self.message,
            self.file.display(),
            self.line,
            self.col
        )?;
        write!(f, "  help: {}", self.suggestion)
    }
}

/// Inline suppressions parsed from `// mesa-lint: allow(rule-id) -- reason`
/// comments. A suppression covers the comment's own line and the line after
/// it, so it can sit above the offending expression or trail it.
#[derive(Debug, Default)]
pub struct Suppressions {
    entries: Vec<(String, u32)>,
}

impl Suppressions {
    /// True when `rule` is suppressed on `line`.
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.entries
            .iter()
            .any(|(r, at)| r == rule && (line == *at || line == at.saturating_add(1)))
    }

    fn push(&mut self, rule: String, line: u32) {
        self.entries.push((rule, line));
    }
}

/// The text of a `mesa-lint:` control comment, if `token` is one.
///
/// Recognized only when the directive *starts* the comment (after comment
/// markers and leading `!`/`*` doc sigils), so prose that merely mentions
/// the syntax — like this sentence — is never treated as a directive.
pub fn directive_text(token: &Token) -> Option<&str> {
    if token.kind != TokenKind::Comment {
        return None;
    }
    let body = token
        .text
        .trim_start_matches('/')
        .trim_start_matches(['!', '*'])
        .trim_start();
    body.strip_prefix("mesa-lint:").map(str::trim)
}

/// Scan `tokens` for suppression directives.
///
/// Returns the active suppressions plus `lint-directive` diagnostics for
/// malformed ones: an `allow(...)` without a ` -- reason`, an unknown
/// rule-id, or an unrecognized directive verb. A reasonless `allow` does
/// **not** suppress anything.
pub fn collect_suppressions(
    file: &Path,
    tokens: &[Token],
    known_rules: &[&'static str],
) -> (Suppressions, Vec<Diagnostic>) {
    let mut suppressions = Suppressions::default();
    let mut diags = Vec::new();
    for token in tokens {
        let Some(directive) = directive_text(token) else {
            continue;
        };
        if let Some(rest) = directive.strip_prefix("allow(") {
            let Some((rule, tail)) = rest.split_once(')') else {
                diags.push(malformed(file, token, "unclosed allow(...) directive"));
                continue;
            };
            let rule = rule.trim();
            if !known_rules.contains(&rule) {
                diags.push(Diagnostic {
                    rule: crate::rules::RULE_LINT_DIRECTIVE,
                    file: file.to_path_buf(),
                    line: token.line,
                    col: token.col,
                    message: format!("allow() names unknown rule `{rule}`"),
                    suggestion: format!("known rules: {}", known_rules.join(", ")),
                });
                continue;
            }
            let reason = tail
                .trim_start()
                .strip_prefix("--")
                .map(str::trim)
                .unwrap_or("");
            if reason.is_empty() {
                diags.push(Diagnostic {
                    rule: crate::rules::RULE_LINT_DIRECTIVE,
                    file: file.to_path_buf(),
                    line: token.line,
                    col: token.col,
                    message: format!("allow({rule}) has no reason; the suppression is ignored"),
                    suggestion: "write `mesa-lint: allow(rule-id) -- why this site is safe`".into(),
                });
                continue;
            }
            suppressions.push(rule.to_string(), token.line);
        } else if hot_loop_target(directive).is_some() {
            // Handled by the checkpoint-coverage rule.
        } else {
            diags.push(malformed(file, token, "unrecognized mesa-lint directive"));
        }
    }
    (suppressions, diags)
}

/// Parse a `hot-loop` directive, returning the required polling call name
/// (`checkpoint` by default, overridable as `hot-loop(call_name)`). An
/// optional ` -- note` tail is permitted and ignored. `None` when
/// `directive` is not a hot-loop marker.
pub fn hot_loop_target(directive: &str) -> Option<&str> {
    let head = directive
        .split_once(" -- ")
        .map_or(directive, |(head, _)| head)
        .trim();
    if head == "hot-loop" {
        return Some("checkpoint");
    }
    head.strip_prefix("hot-loop(")?
        .strip_suffix(')')
        .map(str::trim)
}

fn malformed(file: &Path, token: &Token, what: &str) -> Diagnostic {
    Diagnostic {
        rule: crate::rules::RULE_LINT_DIRECTIVE,
        file: file.to_path_buf(),
        line: token.line,
        col: token.col,
        message: format!("{what}: `{}`", token.text.trim_start_matches('/').trim()),
        suggestion: "use `mesa-lint: allow(rule-id) -- reason` or `mesa-lint: hot-loop`".into(),
    }
}
