//! The rule implementations.
//!
//! Each rule owns a stable id (used in diagnostics and in `allow(...)`
//! suppressions) and pattern-matches one workspace invariant on the token
//! stream produced by [`crate::lexer`]. Per-file rules run via
//! [`analyze_file`]; the cross-file registry and bench-schema checks expose
//! extraction helpers here and are assembled in [`crate::workspace`].

use std::path::Path;

use crate::diag::{directive_text, Diagnostic, Suppressions};
use crate::json;
use crate::lexer::{Token, TokenKind};

/// No `unwrap`/`expect`/`panic!` on the serving path.
pub const RULE_SERVING_PANIC_FREE: &str = "serving-panic-free";
/// No unchecked indexing on the serving path.
pub const RULE_SERVING_INDEX: &str = "serving-index";
/// Every `unsafe` site carries a nearby `SAFETY:` comment.
pub const RULE_SAFETY_COMMENT: &str = "safety-comment";
/// Every crate root except `parallel` forbids unsafe code.
pub const RULE_FORBID_UNSAFE: &str = "forbid-unsafe";
/// `fault_point!` call sites, the documented registry and the robustness
/// test list agree exactly.
pub const RULE_FAULT_POINT_REGISTRY: &str = "fault-point-registry";
/// Loops marked `hot-loop` poll the cooperative deadline.
pub const RULE_CHECKPOINT_COVERAGE: &str = "checkpoint-coverage";
/// Crate roots deny missing docs; no `dbg!`/`todo!`/`unimplemented!`
/// outside tests.
pub const RULE_CRATE_HYGIENE: &str = "crate-hygiene";
/// Committed `BENCH_*.json` baselines parse and carry the required fields.
pub const RULE_BENCH_SCHEMA: &str = "bench-schema";
/// `mesa-lint` control comments are themselves well-formed.
pub const RULE_LINT_DIRECTIVE: &str = "lint-directive";

/// Every rule id, for `allow(...)` validation and the `rules` subcommand.
pub const KNOWN_RULES: &[&str] = &[
    RULE_SERVING_PANIC_FREE,
    RULE_SERVING_INDEX,
    RULE_SAFETY_COMMENT,
    RULE_FORBID_UNSAFE,
    RULE_FAULT_POINT_REGISTRY,
    RULE_CHECKPOINT_COVERAGE,
    RULE_CRATE_HYGIENE,
    RULE_BENCH_SCHEMA,
    RULE_LINT_DIRECTIVE,
];

/// One-line summaries for the `rules` subcommand.
pub const RULE_TABLE: &[(&str, &str)] = &[
    (
        RULE_SERVING_PANIC_FREE,
        "no unwrap/expect/panic! in session, cache, pool or kernel",
    ),
    (
        RULE_SERVING_INDEX,
        "no unchecked indexing in session, cache or pool",
    ),
    (
        RULE_SAFETY_COMMENT,
        "every `unsafe` has a SAFETY: comment within 8 lines",
    ),
    (
        RULE_FORBID_UNSAFE,
        "crate roots outside `parallel` carry #![forbid(unsafe_code)]",
    ),
    (
        RULE_FAULT_POINT_REGISTRY,
        "fault_point! sites == NAMED_POINTS == robustness FAULT_POINTS",
    ),
    (
        RULE_CHECKPOINT_COVERAGE,
        "loops marked `mesa-lint: hot-loop` call checkpoint",
    ),
    (
        RULE_CRATE_HYGIENE,
        "#![deny(missing_docs)] in roots; no dbg!/todo!/unimplemented!",
    ),
    (
        RULE_BENCH_SCHEMA,
        "BENCH_*.json parse with label/median_ms/min_ms/max_ms/threads",
    ),
    (
        RULE_LINT_DIRECTIVE,
        "mesa-lint directives are well-formed and reasoned",
    ),
];

/// Serving-path files where panicking constructs are forbidden.
const PANIC_FREE_FILES: &[&str] = &[
    "crates/mesa/src/session.rs",
    "crates/mesa/src/cache.rs",
    "crates/parallel/src/pool.rs",
    "crates/infotheory/src/kernel.rs",
];

/// Serving-path files where unchecked indexing is forbidden. The kernel is
/// deliberately exempt: its masked fold loops index preallocated buffers in
/// the innermost hot path, where `get` would defeat the point (recorded as
/// carried debt in ROADMAP.md).
const INDEX_FREE_FILES: &[&str] = &[
    "crates/mesa/src/session.rs",
    "crates/mesa/src/cache.rs",
    "crates/parallel/src/pool.rs",
];

/// Keywords that legitimately precede `[` (slice patterns, array literals
/// in expression position) and therefore do not indicate indexing.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where",
    "while", "yield",
];

/// Run every per-file rule on one tokenized source file.
///
/// `rel` is the workspace-relative path (used both for diagnostics and for
/// scoping path-sensitive rules). Diagnostics suppressed by a reasoned
/// `allow(...)` on the same or preceding line are filtered out here.
pub fn analyze_file(rel: &Path, tokens: &[Token], suppressions: &Suppressions) -> Vec<Diagnostic> {
    let rel_str = rel.to_string_lossy().replace('\\', "/");
    let in_test = mark_tests(tokens);
    let is_test_path = rel.components().any(|c| c.as_os_str() == "tests");
    let mut diags = Vec::new();

    if PANIC_FREE_FILES.contains(&rel_str.as_str()) {
        panic_free(rel, tokens, &in_test, &mut diags);
    }
    if INDEX_FREE_FILES.contains(&rel_str.as_str()) {
        index_free(rel, tokens, &in_test, &mut diags);
    }
    safety_comments(rel, tokens, &in_test, &mut diags);
    if let Some(crate_name) = crate_root(&rel_str) {
        crate_root_attrs(rel, tokens, crate_name, &mut diags);
    }
    banned_macros(rel, tokens, &in_test, is_test_path, &mut diags);
    checkpoint_coverage(rel, tokens, &mut diags);

    diags.retain(|d| !suppressions.is_allowed(d.rule, d.line));
    diags
}

/// Mark which tokens sit inside a `#[cfg(test)]`-gated item body.
///
/// Conservative: recognizes `#[cfg(...)]` attribute groups whose argument
/// list mentions both `cfg` and `test`, then spans from the attribute to
/// the matching close brace of the item it gates.
pub fn mark_tests(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        let Some(attr_end) = cfg_test_attr_end(tokens, i) else {
            i += 1;
            continue;
        };
        // Skip any further attributes between the cfg(test) and the item.
        let mut j = attr_end + 1;
        while let Some(next) = next_code(tokens, j) {
            if tokens[next].is_punct('#') {
                match attr_group_end(tokens, next) {
                    Some(end) => j = end + 1,
                    None => break,
                }
            } else {
                break;
            }
        }
        // Find the gated item's body: the first `{` at nesting depth zero
        // (a `;` first means the item has no body, e.g. a gated `use`).
        let mut depth = 0i32;
        let mut body = None;
        let mut k = j;
        while k < tokens.len() {
            let t = &tokens[k];
            if t.kind == TokenKind::Punct {
                match t.text.chars().next() {
                    Some('(') | Some('[') => depth += 1,
                    Some(')') | Some(']') => depth -= 1,
                    Some('{') if depth == 0 => {
                        body = Some(k);
                        break;
                    }
                    Some(';') if depth == 0 => break,
                    _ => {}
                }
            }
            k += 1;
        }
        let Some(open) = body else {
            i = attr_end + 1;
            continue;
        };
        let close = matching_brace(tokens, open).unwrap_or(tokens.len() - 1);
        for flag in in_test.iter_mut().take(close + 1).skip(i) {
            *flag = true;
        }
        i = close + 1;
    }
    in_test
}

/// If `start` opens a `#[cfg(...test...)]` outer attribute, return the
/// index of its closing `]`.
fn cfg_test_attr_end(tokens: &[Token], start: usize) -> Option<usize> {
    if !tokens[start].is_punct('#') {
        return None;
    }
    let open = next_code(tokens, start + 1)?;
    if !tokens[open].is_punct('[') {
        return None; // `#![...]` inner attrs gate the whole file; out of scope
    }
    let end = matching_bracket(tokens, open)?;
    let group = &tokens[open..=end];
    let has = |name: &str| group.iter().any(|t| t.is_ident(name));
    // `not` bails out conservatively: `#[cfg(not(test))]` gates shipping
    // code, which the rules must keep covering.
    (has("cfg") && has("test") && !has("not")).then_some(end)
}

/// If `start` is the `#` of any attribute, return the index of its `]`.
fn attr_group_end(tokens: &[Token], start: usize) -> Option<usize> {
    if !tokens[start].is_punct('#') {
        return None;
    }
    let mut open = next_code(tokens, start + 1)?;
    if tokens[open].is_punct('!') {
        open = next_code(tokens, open + 1)?;
    }
    if !tokens[open].is_punct('[') {
        return None;
    }
    matching_bracket(tokens, open)
}

fn matching_bracket(tokens: &[Token], open: usize) -> Option<usize> {
    matching(tokens, open, '[', ']')
}

fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    matching(tokens, open, '{', '}')
}

fn matching(tokens: &[Token], open: usize, lhs: char, rhs: char) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(lhs) {
            depth += 1;
        } else if t.is_punct(rhs) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Index of the next non-comment token at or after `from`.
fn next_code(tokens: &[Token], from: usize) -> Option<usize> {
    tokens
        .iter()
        .enumerate()
        .skip(from)
        .find(|(_, t)| t.kind != TokenKind::Comment)
        .map(|(i, _)| i)
}

/// Index of the previous non-comment token strictly before `at`.
fn prev_code(tokens: &[Token], at: usize) -> Option<usize> {
    tokens[..at]
        .iter()
        .enumerate()
        .rev()
        .find(|(_, t)| t.kind != TokenKind::Comment)
        .map(|(i, _)| i)
}

fn emit(
    diags: &mut Vec<Diagnostic>,
    rule: &'static str,
    rel: &Path,
    token: &Token,
    message: String,
    suggestion: &str,
) {
    diags.push(Diagnostic {
        rule,
        file: rel.to_path_buf(),
        line: token.line,
        col: token.col,
        message,
        suggestion: suggestion.to_string(),
    });
}

fn panic_free(rel: &Path, tokens: &[Token], in_test: &[bool], diags: &mut Vec<Diagnostic>) {
    for (i, t) in tokens.iter().enumerate() {
        if in_test[i] || t.kind != TokenKind::Ident {
            continue;
        }
        let construct = match t.text.as_str() {
            "unwrap" | "expect" => {
                // Only the method call forms `.unwrap()` / `.expect(`.
                let is_method = prev_code(tokens, i).is_some_and(|p| tokens[p].is_punct('.'))
                    && next_code(tokens, i + 1).is_some_and(|n| tokens[n].is_punct('('));
                if !is_method {
                    continue;
                }
                format!(".{}()", t.text)
            }
            "panic" => {
                if !next_code(tokens, i + 1).is_some_and(|n| tokens[n].is_punct('!')) {
                    continue;
                }
                "panic!".to_string()
            }
            _ => continue,
        };
        emit(
            diags,
            RULE_SERVING_PANIC_FREE,
            rel,
            t,
            format!("`{construct}` on the serving path"),
            "propagate a structured MesaError instead; if the site is provably \
             unreachable, add `mesa-lint: allow(serving-panic-free) -- reason`",
        );
    }
}

fn index_free(rel: &Path, tokens: &[Token], in_test: &[bool], diags: &mut Vec<Diagnostic>) {
    for (i, t) in tokens.iter().enumerate() {
        if in_test[i] || !t.is_punct('[') {
            continue;
        }
        let Some(p) = prev_code(tokens, i) else {
            continue;
        };
        let prev = &tokens[p];
        // Indexing looks like `expr[`: the previous token is an identifier
        // (not a keyword) or a closing `)`/`]`. Everything else — `&[`,
        // `vec![`, `#[`, `= [`, `: [` — is a type, attribute or literal.
        let indexes = match prev.kind {
            TokenKind::Ident => !KEYWORDS.contains(&prev.text.as_str()),
            TokenKind::Punct => prev.is_punct(')') || prev.is_punct(']'),
            _ => false,
        };
        if indexes {
            emit(
                diags,
                RULE_SERVING_INDEX,
                rel,
                t,
                "unchecked indexing on the serving path".to_string(),
                "use .get()/.get_mut() and map None to a structured MesaError; \
                 or add `mesa-lint: allow(serving-index) -- reason`",
            );
        }
    }
}

/// Lines an `unsafe` token may look back for its justification.
const SAFETY_WINDOW: u32 = 8;

fn safety_comments(rel: &Path, tokens: &[Token], in_test: &[bool], diags: &mut Vec<Diagnostic>) {
    for (i, t) in tokens.iter().enumerate() {
        if in_test[i] || !t.is_ident("unsafe") {
            continue;
        }
        let justified = tokens.iter().any(|c| {
            c.kind == TokenKind::Comment
                && c.text.contains("SAFETY:")
                && c.line <= t.line
                && c.end_line + SAFETY_WINDOW >= t.line
        });
        if !justified {
            emit(
                diags,
                RULE_SAFETY_COMMENT,
                rel,
                t,
                "`unsafe` without a `SAFETY:` comment in the preceding 8 lines".to_string(),
                "document the invariant that makes this sound in a `// SAFETY:` comment \
                 directly above the unsafe site",
            );
        }
    }
}

/// If `rel` is a crate root (`crates/<name>/src/lib.rs` or the umbrella
/// `src/lib.rs`), return the crate's directory name.
fn crate_root(rel: &str) -> Option<&str> {
    if rel == "src/lib.rs" {
        return Some("mesa-repro");
    }
    let rest = rel.strip_prefix("crates/")?;
    let (name, tail) = rest.split_once('/')?;
    (tail == "src/lib.rs").then_some(name)
}

fn crate_root_attrs(rel: &Path, tokens: &[Token], crate_name: &str, diags: &mut Vec<Diagnostic>) {
    let first = Token {
        kind: TokenKind::Punct,
        text: String::new(),
        line: 1,
        col: 1,
        end_line: 1,
    };
    let anchor = tokens.first().unwrap_or(&first);
    if !has_inner_attr(tokens, &["deny", "missing_docs"]) {
        emit(
            diags,
            RULE_CRATE_HYGIENE,
            rel,
            anchor,
            format!("crate root of `{crate_name}` is missing `#![deny(missing_docs)]`"),
            "add `#![deny(missing_docs)]` to the crate root",
        );
    }
    if crate_name != "parallel" && !has_inner_attr(tokens, &["forbid", "unsafe_code"]) {
        emit(
            diags,
            RULE_FORBID_UNSAFE,
            rel,
            anchor,
            format!("crate root of `{crate_name}` is missing `#![forbid(unsafe_code)]`"),
            "add `#![forbid(unsafe_code)]`; only the `parallel` crate may hold unsafe code",
        );
    }
}

/// True when an inner attribute `#![...]` mentions all of `idents`.
fn has_inner_attr(tokens: &[Token], idents: &[&str]) -> bool {
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#')
            && next_code(tokens, i + 1).is_some_and(|b| tokens[b].is_punct('!'))
        {
            if let Some(end) = attr_group_end(tokens, i) {
                let group = &tokens[i..=end];
                if idents
                    .iter()
                    .all(|name| group.iter().any(|t| t.is_ident(name)))
                {
                    return true;
                }
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    false
}

fn banned_macros(
    rel: &Path,
    tokens: &[Token],
    in_test: &[bool],
    is_test_path: bool,
    diags: &mut Vec<Diagnostic>,
) {
    if is_test_path {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if in_test[i] || t.kind != TokenKind::Ident {
            continue;
        }
        if !matches!(t.text.as_str(), "dbg" | "todo" | "unimplemented") {
            continue;
        }
        if !next_code(tokens, i + 1).is_some_and(|n| tokens[n].is_punct('!')) {
            continue;
        }
        emit(
            diags,
            RULE_CRATE_HYGIENE,
            rel,
            t,
            format!("`{}!` outside test code", t.text),
            "finish the implementation or move the call under #[cfg(test)]",
        );
    }
}

fn checkpoint_coverage(rel: &Path, tokens: &[Token], diags: &mut Vec<Diagnostic>) {
    for (i, t) in tokens.iter().enumerate() {
        let Some(directive) = directive_text(t) else {
            continue;
        };
        let Some(required) = crate::diag::hot_loop_target(directive) else {
            continue;
        };
        let Some(kw) = next_code(tokens, i + 1) else {
            emit(
                diags,
                RULE_CHECKPOINT_COVERAGE,
                rel,
                t,
                "dangling hot-loop marker at end of file".to_string(),
                "place the marker directly above a for/while/loop",
            );
            continue;
        };
        let kw_tok = &tokens[kw];
        if !(kw_tok.is_ident("for") || kw_tok.is_ident("while") || kw_tok.is_ident("loop")) {
            emit(
                diags,
                RULE_CHECKPOINT_COVERAGE,
                rel,
                kw_tok,
                "hot-loop marker is not followed by a loop".to_string(),
                "place the marker directly above a for/while/loop",
            );
            continue;
        }
        // The loop body opens at the first `{` outside parens/brackets.
        let mut depth = 0i32;
        let mut open = None;
        for (k, tok) in tokens.iter().enumerate().skip(kw) {
            if tok.kind != TokenKind::Punct {
                continue;
            }
            match tok.text.chars().next() {
                Some('(') | Some('[') => depth += 1,
                Some(')') | Some(']') => depth -= 1,
                Some('{') if depth == 0 => {
                    open = Some(k);
                    break;
                }
                _ => {}
            }
        }
        let Some(open) = open else { continue };
        let close = matching_brace(tokens, open).unwrap_or(tokens.len() - 1);
        let polls = tokens[kw..=close].iter().any(|tok| tok.is_ident(required));
        if !polls {
            emit(
                diags,
                RULE_CHECKPOINT_COVERAGE,
                rel,
                kw_tok,
                format!("hot loop does not call `{required}`"),
                "poll the cooperative deadline (parallel::checkpoint) inside the loop, \
                 or name the polling call: `mesa-lint: hot-loop(call_name)`",
            );
        }
    }
}

/// A `fault_point!("...")` occurrence (or registry entry) with its location.
#[derive(Debug, Clone)]
pub struct FaultSite {
    /// The point's string name.
    pub name: String,
    /// File the occurrence is in (workspace-relative).
    pub file: std::path::PathBuf,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Collect `fault_point!("name")` call sites from one file's tokens.
pub fn fault_call_sites(rel: &Path, tokens: &[Token]) -> Vec<FaultSite> {
    let mut sites = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("fault_point") {
            continue;
        }
        let Some(bang) = next_code(tokens, i + 1) else {
            continue;
        };
        if !tokens[bang].is_punct('!') {
            continue;
        }
        let Some(paren) = next_code(tokens, bang + 1) else {
            continue;
        };
        if !tokens[paren].is_punct('(') {
            continue;
        }
        let Some(arg) = next_code(tokens, paren + 1) else {
            continue;
        };
        if tokens[arg].kind == TokenKind::Str {
            sites.push(FaultSite {
                name: tokens[arg].text.clone(),
                file: rel.to_path_buf(),
                line: tokens[arg].line,
                col: tokens[arg].col,
            });
        }
    }
    sites
}

/// Collect the string literals between the ident `anchor` and the next `;`
/// — the shape of both `NAMED_POINTS` and the robustness `FAULT_POINTS`
/// const declarations. `None` when the anchor never appears.
pub fn anchored_strings(rel: &Path, tokens: &[Token], anchor: &str) -> Option<Vec<FaultSite>> {
    let start = tokens.iter().position(|t| t.is_ident(anchor))?;
    let mut out = Vec::new();
    for t in &tokens[start..] {
        if t.is_punct(';') {
            break;
        }
        if t.kind == TokenKind::Str {
            out.push(FaultSite {
                name: t.text.clone(),
                file: rel.to_path_buf(),
                line: t.line,
                col: t.col,
            });
        }
    }
    Some(out)
}

/// Validate one committed `BENCH_*.json` baseline.
pub fn check_bench_json(rel: &Path, src: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let doc = match json::parse(src) {
        Ok(doc) => doc,
        Err((message, line)) => {
            bench_bad(
                &mut diags,
                rel,
                line,
                format!("baseline is not valid JSON: {message}"),
            );
            return diags;
        }
    };
    if doc.get("name").and_then(json::Value::as_str).is_none() {
        bench_bad(
            &mut diags,
            rel,
            doc.line(),
            "baseline is missing a string `name`".to_string(),
        );
    }
    let Some(json::Value::Arr(entries, entries_line)) = doc.get("entries") else {
        bench_bad(
            &mut diags,
            rel,
            doc.line(),
            "baseline is missing an `entries` array".to_string(),
        );
        return diags;
    };
    if entries.is_empty() {
        bench_bad(
            &mut diags,
            rel,
            *entries_line,
            "`entries` is empty".to_string(),
        );
    }
    for entry in entries {
        if entry.get("label").and_then(json::Value::as_str).is_none() {
            bench_bad(
                &mut diags,
                rel,
                entry.line(),
                "entry is missing a string `label`".to_string(),
            );
        }
        for field in ["median_ms", "min_ms", "max_ms"] {
            if entry.get(field).and_then(json::Value::as_num).is_none() {
                bench_bad(
                    &mut diags,
                    rel,
                    entry.line(),
                    format!("entry is missing numeric `{field}`"),
                );
            }
        }
        match entry.get("threads").and_then(json::Value::as_num) {
            Some(n) if n >= 1.0 && n.fract() == 0.0 => {}
            Some(_) => bench_bad(
                &mut diags,
                rel,
                entry.line(),
                "`threads` must be an integer >= 1".to_string(),
            ),
            None => bench_bad(
                &mut diags,
                rel,
                entry.line(),
                "entry is missing integer `threads`".to_string(),
            ),
        }
    }
    diags
}

fn bench_bad(diags: &mut Vec<Diagnostic>, rel: &Path, line: u32, message: String) {
    diags.push(Diagnostic {
        rule: RULE_BENCH_SCHEMA,
        file: rel.to_path_buf(),
        line,
        col: 1,
        message,
        suggestion: "regenerate the baseline with the bench binaries (crates/bench); \
                     do not hand-edit committed BENCH_*.json files"
            .to_string(),
    });
}
