//! Workspace discovery and the check drivers.
//!
//! [`run_check`] walks a workspace root, runs every per-file rule plus the
//! cross-file registry and bench-schema checks, and returns the sorted
//! diagnostics. [`run_fault_points`] exposes just the fault-point registry
//! view for the CI smoke step.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::diag::{collect_suppressions, Diagnostic};
use crate::lexer::tokenize;
use crate::rules::{
    self, anchored_strings, check_bench_json, fault_call_sites, FaultSite,
    RULE_FAULT_POINT_REGISTRY,
};

/// Directories never descended into. `fixtures` keeps the lint tool from
/// tripping over its own known-bad test corpus; the rest are build output,
/// vendored stand-ins and data.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", ".github", "golden", "fixtures"];

/// The documented source of truth for fault-point names.
const FAULTS_FILE: &str = "crates/parallel/src/faults.rs";
/// The robustness suite that must exercise every named point.
const ROBUSTNESS_FILE: &str = "tests/robustness.rs";

/// Run every rule against the workspace rooted at `root`.
///
/// Returns diagnostics sorted by file, line, column and rule id; an empty
/// vector means the workspace is clean.
pub fn run_check(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut diags = Vec::new();
    let mut registry = Registry::default();

    for rel in rust_files(root)? {
        let Ok(src) = std::fs::read_to_string(root.join(&rel)) else {
            continue;
        };
        let tokens = tokenize(&src);
        let (suppressions, directive_diags) =
            collect_suppressions(&rel, &tokens, rules::KNOWN_RULES);
        diags.extend(directive_diags);
        diags.extend(rules::analyze_file(&rel, &tokens, &suppressions));

        let rel_str = rel.to_string_lossy().replace('\\', "/");
        registry.sites.extend(fault_call_sites(&rel, &tokens));
        if rel_str == FAULTS_FILE {
            registry.named = anchored_strings(&rel, &tokens, "NAMED_POINTS");
            registry.saw_faults_file = true;
        }
        if rel_str == ROBUSTNESS_FILE {
            registry.tested = anchored_strings(&rel, &tokens, "FAULT_POINTS");
            registry.saw_robustness_file = true;
        }
    }

    diags.extend(registry.check());

    for rel in bench_files(root)? {
        let Ok(src) = std::fs::read_to_string(root.join(&rel)) else {
            continue;
        };
        diags.extend(check_bench_json(&rel, &src));
    }

    diags.sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(diags)
}

/// The fault-point registry view: every point name mapped to its call-site
/// locations, whether it is documented in `NAMED_POINTS`, and whether the
/// robustness suite lists it. Returned alongside the registry diagnostics
/// so the CLI can print a table and still fail on drift.
pub struct FaultPointReport {
    /// Point name → call-site locations (`file:line`).
    pub sites: BTreeMap<String, Vec<String>>,
    /// Points documented in `parallel::faults::NAMED_POINTS`.
    pub named: Vec<String>,
    /// Points exercised by `tests/robustness.rs`.
    pub tested: Vec<String>,
    /// Drift diagnostics (empty when the three sets agree).
    pub diags: Vec<Diagnostic>,
}

/// Cross-check `fault_point!` call sites against the documented registry
/// and the robustness suite, returning the full report.
pub fn run_fault_points(root: &Path) -> std::io::Result<FaultPointReport> {
    let mut registry = Registry::default();
    for rel in rust_files(root)? {
        let Ok(src) = std::fs::read_to_string(root.join(&rel)) else {
            continue;
        };
        let tokens = tokenize(&src);
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        registry.sites.extend(fault_call_sites(&rel, &tokens));
        if rel_str == FAULTS_FILE {
            registry.named = anchored_strings(&rel, &tokens, "NAMED_POINTS");
            registry.saw_faults_file = true;
        }
        if rel_str == ROBUSTNESS_FILE {
            registry.tested = anchored_strings(&rel, &tokens, "FAULT_POINTS");
            registry.saw_robustness_file = true;
        }
    }
    let mut sites: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for site in &registry.sites {
        sites.entry(site.name.clone()).or_default().push(format!(
            "{}:{}",
            site.file.display(),
            site.line
        ));
    }
    let named = registry
        .named
        .iter()
        .flatten()
        .map(|s| s.name.clone())
        .collect();
    let tested = registry
        .tested
        .iter()
        .flatten()
        .map(|s| s.name.clone())
        .collect();
    let diags = registry.check();
    Ok(FaultPointReport {
        sites,
        named,
        tested,
        diags,
    })
}

#[derive(Default)]
struct Registry {
    sites: Vec<FaultSite>,
    named: Option<Vec<FaultSite>>,
    tested: Option<Vec<FaultSite>>,
    saw_faults_file: bool,
    saw_robustness_file: bool,
}

impl Registry {
    fn check(&self) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        // Only enforce when the registry files are present: the tool stays
        // usable on partial trees, and the self-check covers the real one.
        if !(self.saw_faults_file && self.saw_robustness_file) {
            return diags;
        }
        let named = match &self.named {
            Some(named) => named.clone(),
            None => {
                diags.push(missing_anchor(FAULTS_FILE, "NAMED_POINTS"));
                return diags;
            }
        };
        let tested = match &self.tested {
            Some(tested) => tested.clone(),
            None => {
                diags.push(missing_anchor(ROBUSTNESS_FILE, "FAULT_POINTS"));
                return diags;
            }
        };
        let named_set: Vec<&str> = named.iter().map(|s| s.name.as_str()).collect();
        let tested_set: Vec<&str> = tested.iter().map(|s| s.name.as_str()).collect();
        let site_set: Vec<&str> = self.sites.iter().map(|s| s.name.as_str()).collect();

        for site in &self.sites {
            if !named_set.contains(&site.name.as_str()) {
                diags.push(drift(
                    site,
                    format!(
                        "fault_point!(\"{}\") is not documented in parallel::faults::NAMED_POINTS",
                        site.name
                    ),
                    "add the point to NAMED_POINTS and cover it in tests/robustness.rs",
                ));
            }
        }
        for point in &named {
            if !site_set.contains(&point.name.as_str()) {
                diags.push(drift(
                    point,
                    format!(
                        "NAMED_POINTS documents \"{}\" but no fault_point! call site exists",
                        point.name
                    ),
                    "remove the stale entry or restore the call site",
                ));
            }
            if !tested_set.contains(&point.name.as_str()) {
                diags.push(drift(
                    point,
                    format!(
                        "\"{}\" is not exercised by tests/robustness.rs FAULT_POINTS",
                        point.name
                    ),
                    "add the point to the robustness suite's FAULT_POINTS list",
                ));
            }
        }
        for point in &tested {
            if !named_set.contains(&point.name.as_str()) {
                diags.push(drift(
                    point,
                    format!(
                        "robustness FAULT_POINTS lists \"{}\" which is not in NAMED_POINTS",
                        point.name
                    ),
                    "remove the stale entry or document the point in parallel::faults",
                ));
            }
        }
        diags
    }
}

fn missing_anchor(file: &str, anchor: &str) -> Diagnostic {
    Diagnostic {
        rule: RULE_FAULT_POINT_REGISTRY,
        file: PathBuf::from(file),
        line: 1,
        col: 1,
        message: format!("expected a `{anchor}` const listing the fault points"),
        suggestion: format!("declare `pub const {anchor}: &[&str]` with every point name"),
    }
}

fn drift(at: &FaultSite, message: String, suggestion: &str) -> Diagnostic {
    Diagnostic {
        rule: RULE_FAULT_POINT_REGISTRY,
        file: at.file.clone(),
        line: at.line,
        col: at.col,
        message,
        suggestion: suggestion.to_string(),
    }
}

/// Workspace-relative paths of every `.rs` file under `root`, skipping
/// build output, vendored code, data directories and the lint fixtures.
fn rust_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    walk(root, Path::new(""), &mut files)?;
    files.sort();
    Ok(files)
}

fn walk(root: &Path, rel: &Path, files: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(root.join(rel))? {
        let entry = entry?;
        let name = entry.file_name();
        let name_str = name.to_string_lossy().into_owned();
        let child = rel.join(&name);
        let file_type = entry.file_type()?;
        if file_type.is_dir() {
            if SKIP_DIRS.contains(&name_str.as_str()) || name_str.starts_with('.') {
                continue;
            }
            walk(root, &child, files)?;
        } else if name_str.ends_with(".rs") {
            files.push(child);
        }
    }
    Ok(())
}

/// Workspace-relative paths of committed `BENCH_*.json` baselines (which
/// live at the workspace root).
fn bench_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for entry in std::fs::read_dir(root)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if entry.file_type()?.is_file() && name.starts_with("BENCH_") && name.ends_with(".json") {
            files.push(PathBuf::from(name));
        }
    }
    files.sort();
    Ok(files)
}
