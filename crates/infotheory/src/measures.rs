//! Entropy, mutual information, conditional mutual information, and
//! interaction information — the measures MESA is built on.
//!
//! All quantities are plug-in (maximum-likelihood) estimates over discrete
//! codes, in bits (log base 2), computed on complete cases and optionally
//! re-weighted by IPW weights. This mirrors the paper's use of the Pyitlib
//! library for CMI estimation.

use tabular::{ColumnView, EncodedColumn};

use crate::contingency::JointTable;

/// Shannon entropy `H(X)` of a single encoded column.
pub fn entropy(x: &EncodedColumn, weights: Option<&[f64]>) -> f64 {
    entropy_view(x.into(), weights)
}

/// [`entropy`] over a column in either lifecycle state (mutable or sealed).
pub fn entropy_view(x: ColumnView<'_>, weights: Option<&[f64]>) -> f64 {
    JointTable::build_views(&[x], weights).entropy()
}

/// Joint Shannon entropy `H(X1, ..., Xk)` of a set of encoded columns.
pub fn joint_entropy(cols: &[&EncodedColumn], weights: Option<&[f64]>) -> f64 {
    let views: Vec<ColumnView<'_>> = cols.iter().map(|&c| c.into()).collect();
    joint_entropy_views(&views, weights)
}

/// [`joint_entropy`] over columns in either lifecycle state.
pub fn joint_entropy_views(cols: &[ColumnView<'_>], weights: Option<&[f64]>) -> f64 {
    if cols.is_empty() {
        return 0.0;
    }
    JointTable::build_views(cols, weights).entropy()
}

/// Conditional entropy `H(X | Z1, ..., Zk) = H(X, Z) - H(Z)`.
///
/// Both terms are computed on the same complete-case set (rows complete in
/// `X` and every `Z`), so the identity holds exactly.
pub fn conditional_entropy(
    x: &EncodedColumn,
    given: &[&EncodedColumn],
    weights: Option<&[f64]>,
) -> f64 {
    let given_views: Vec<ColumnView<'_>> = given.iter().map(|&c| c.into()).collect();
    conditional_entropy_views(x.into(), &given_views, weights)
}

/// [`conditional_entropy`] over columns in either lifecycle state.
pub fn conditional_entropy_views(
    x: ColumnView<'_>,
    given: &[ColumnView<'_>],
    weights: Option<&[f64]>,
) -> f64 {
    if given.is_empty() {
        return entropy_view(x, weights);
    }
    let mut all: Vec<ColumnView<'_>> = Vec::with_capacity(given.len() + 1);
    all.push(x);
    all.extend_from_slice(given);
    let joint = JointTable::build_views(&all, weights);
    let z_dims: Vec<usize> = (1..all.len()).collect();
    (joint.entropy() - joint.marginal(&z_dims).entropy()).max(0.0)
}

/// Mutual information `I(X; Y) = H(X) + H(Y) - H(X, Y)`.
///
/// Computed over rows complete in both `X` and `Y`.
pub fn mutual_information(x: &EncodedColumn, y: &EncodedColumn, weights: Option<&[f64]>) -> f64 {
    mutual_information_views(x.into(), y.into(), weights)
}

/// [`mutual_information`] over columns in either lifecycle state.
pub fn mutual_information_views(
    x: ColumnView<'_>,
    y: ColumnView<'_>,
    weights: Option<&[f64]>,
) -> f64 {
    let joint = JointTable::build_views(&[x, y], weights);
    let hx = joint.marginal(&[0]).entropy();
    let hy = joint.marginal(&[1]).entropy();
    (hx + hy - joint.entropy()).max(0.0)
}

/// Conditional mutual information
/// `I(X; Y | Z) = H(X, Z) + H(Y, Z) - H(X, Y, Z) - H(Z)`,
/// where `Z` is a (possibly empty) set of conditioning columns.
///
/// With an empty conditioning set this reduces to [`mutual_information`].
/// All four entropies are computed from one joint table built over rows
/// complete in every involved column, so the chain-rule identities hold
/// exactly on the estimate.
pub fn conditional_mutual_information(
    x: &EncodedColumn,
    y: &EncodedColumn,
    z: &[&EncodedColumn],
    weights: Option<&[f64]>,
) -> f64 {
    let z_views: Vec<ColumnView<'_>> = z.iter().map(|&c| c.into()).collect();
    conditional_mutual_information_views(x.into(), y.into(), &z_views, weights)
}

/// [`conditional_mutual_information`] over columns in either lifecycle state.
pub fn conditional_mutual_information_views(
    x: ColumnView<'_>,
    y: ColumnView<'_>,
    z: &[ColumnView<'_>],
    weights: Option<&[f64]>,
) -> f64 {
    if z.is_empty() {
        return mutual_information_views(x, y, weights);
    }
    let mut all: Vec<ColumnView<'_>> = Vec::with_capacity(z.len() + 2);
    all.push(x);
    all.push(y);
    all.extend_from_slice(z);
    let joint = JointTable::build_views(&all, weights);
    if joint.is_empty() {
        return 0.0;
    }
    let z_dims: Vec<usize> = (2..all.len()).collect();
    let xz_dims: Vec<usize> = std::iter::once(0).chain(z_dims.iter().copied()).collect();
    let yz_dims: Vec<usize> = std::iter::once(1).chain(z_dims.iter().copied()).collect();
    let h_xyz = joint.entropy();
    let h_xz = joint.marginal(&xz_dims).entropy();
    let h_yz = joint.marginal(&yz_dims).entropy();
    let h_z = joint.marginal(&z_dims).entropy();
    (h_xz + h_yz - h_xyz - h_z).max(0.0)
}

/// Interaction information `II(X; Y; Z) = I(X; Y) - I(X; Y | Z)`.
///
/// Positive values mean `Z` explains away part of the X–Y association
/// (redundancy); negative values mean conditioning on `Z` *induces*
/// association (the XOR-like case the paper's key assumption rules out of
/// explanations).
pub fn interaction_information(
    x: &EncodedColumn,
    y: &EncodedColumn,
    z: &EncodedColumn,
    weights: Option<&[f64]>,
) -> f64 {
    interaction_information_views(x.into(), y.into(), z.into(), weights)
}

/// [`interaction_information`] over columns in either lifecycle state.
pub fn interaction_information_views(
    x: ColumnView<'_>,
    y: ColumnView<'_>,
    z: ColumnView<'_>,
    weights: Option<&[f64]>,
) -> f64 {
    // Use the same complete-case set for both terms so the difference is not
    // an artefact of different row sets.
    let joint = JointTable::build_views(&[x, y, z], weights);
    if joint.is_empty() {
        return 0.0;
    }
    let h_xy = joint.marginal(&[0, 1]).entropy();
    let h_x = joint.marginal(&[0]).entropy();
    let h_y = joint.marginal(&[1]).entropy();
    let i_xy = (h_x + h_y - h_xy).max(0.0);
    let h_xz = joint.marginal(&[0, 2]).entropy();
    let h_yz = joint.marginal(&[1, 2]).entropy();
    let h_z = joint.marginal(&[2]).entropy();
    let i_xy_given_z = (h_xz + h_yz - joint.entropy() - h_z).max(0.0);
    i_xy - i_xy_given_z
}

/// Normalised mutual information `I(X;Y) / sqrt(H(X) H(Y))` in `[0, 1]`
/// (0 when either marginal entropy is 0). Used by redundancy diagnostics.
pub fn normalized_mutual_information(
    x: &EncodedColumn,
    y: &EncodedColumn,
    weights: Option<&[f64]>,
) -> f64 {
    normalized_mutual_information_views(x.into(), y.into(), weights)
}

/// [`normalized_mutual_information`] over columns in either lifecycle state.
pub fn normalized_mutual_information_views(
    x: ColumnView<'_>,
    y: ColumnView<'_>,
    weights: Option<&[f64]>,
) -> f64 {
    let joint = JointTable::build_views(&[x, y], weights);
    let hx = joint.marginal(&[0]).entropy();
    let hy = joint.marginal(&[1]).entropy();
    if hx <= 0.0 || hy <= 0.0 {
        return 0.0;
    }
    let i = (hx + hy - joint.entropy()).max(0.0);
    (i / (hx * hy).sqrt()).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::Column;

    fn enc(vals: &[&str]) -> EncodedColumn {
        Column::from_str_values("c", vals.iter().map(|v| Some(*v)).collect()).encode()
    }

    fn enc_opt(vals: &[Option<&str>]) -> EncodedColumn {
        Column::from_str_values("c", vals.to_vec()).encode()
    }

    #[test]
    fn entropy_of_uniform_and_constant() {
        assert!((entropy(&enc(&["a", "b", "c", "d"]), None) - 2.0).abs() < 1e-12);
        assert_eq!(entropy(&enc(&["a", "a", "a"]), None), 0.0);
        assert!((entropy(&enc(&["a", "a", "b", "b"]), None) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn joint_entropy_independent_vars_adds() {
        let x = enc(&["a", "a", "b", "b"]);
        let y = enc(&["0", "1", "0", "1"]);
        assert!((joint_entropy(&[&x, &y], None) - 2.0).abs() < 1e-12);
        assert_eq!(joint_entropy(&[], None), 0.0);
    }

    #[test]
    fn conditional_entropy_identities() {
        let x = enc(&["a", "a", "b", "b"]);
        let y = enc(&["0", "1", "0", "1"]);
        // independent: H(X|Y) = H(X)
        assert!((conditional_entropy(&x, &[&y], None) - 1.0).abs() < 1e-12);
        // determined: H(X|X) = 0
        assert!(conditional_entropy(&x, &[&x], None).abs() < 1e-12);
        // no conditioning
        assert!((conditional_entropy(&x, &[], None) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mi_independent_is_zero() {
        let x = enc(&["a", "a", "b", "b"]);
        let y = enc(&["0", "1", "0", "1"]);
        assert!(mutual_information(&x, &y, None).abs() < 1e-12);
    }

    #[test]
    fn mi_identical_equals_entropy() {
        let x = enc(&["a", "b", "c", "a", "b", "c"]);
        let h = entropy(&x, None);
        assert!((mutual_information(&x, &x, None) - h).abs() < 1e-12);
    }

    #[test]
    fn mi_symmetric() {
        let x = enc(&["a", "a", "b", "b", "a", "b"]);
        let y = enc(&["0", "1", "0", "1", "1", "1"]);
        let ixy = mutual_information(&x, &y, None);
        let iyx = mutual_information(&y, &x, None);
        assert!((ixy - iyx).abs() < 1e-12);
        assert!(ixy >= 0.0);
    }

    #[test]
    fn cmi_empty_conditioning_equals_mi() {
        let x = enc(&["a", "a", "b", "b", "a", "b"]);
        let y = enc(&["0", "1", "0", "1", "1", "1"]);
        assert!(
            (conditional_mutual_information(&x, &y, &[], None) - mutual_information(&x, &y, None))
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn cmi_explains_away_confounder() {
        // Z drives both X and Y: X = Z, Y = Z. Then I(X;Y) = H(Z) > 0 but
        // I(X;Y|Z) = 0 — Z fully explains the correlation.
        let z = enc(&["u", "u", "v", "v", "u", "v", "u", "v"]);
        let x = z.clone();
        let y = z.clone();
        assert!(mutual_information(&x, &y, None) > 0.9);
        assert!(conditional_mutual_information(&x, &y, &[&z], None).abs() < 1e-12);
    }

    #[test]
    fn cmi_conditioning_on_irrelevant_keeps_mi() {
        let x = enc(&["a", "a", "b", "b", "a", "a", "b", "b"]);
        let y = x.clone();
        let noise = enc(&["p", "q", "p", "q", "q", "p", "q", "p"]);
        let i = mutual_information(&x, &y, None);
        let c = conditional_mutual_information(&x, &y, &[&noise], None);
        assert!((i - c).abs() < 1e-9);
    }

    #[test]
    fn cmi_xor_is_positive_given_z() {
        // Y = X xor Z with X, Z independent fair coins: I(X;Y)=0 but
        // I(X;Y|Z)=1 — conditioning induces dependence.
        let x = enc(&["0", "0", "1", "1"]);
        let z = enc(&["0", "1", "0", "1"]);
        let y = enc(&["0", "1", "1", "0"]);
        assert!(mutual_information(&x, &y, None).abs() < 1e-12);
        assert!((conditional_mutual_information(&x, &y, &[&z], None) - 1.0).abs() < 1e-12);
        // and the interaction information is negative
        assert!(interaction_information(&x, &y, &z, None) < -0.9);
    }

    #[test]
    fn interaction_positive_for_confounder() {
        let z = enc(&["u", "u", "v", "v", "u", "v"]);
        let x = z.clone();
        let y = z.clone();
        assert!(interaction_information(&x, &y, &z, None) > 0.9);
    }

    #[test]
    fn missing_values_complete_case() {
        let x = enc_opt(&[Some("a"), Some("b"), None, Some("a")]);
        let y = enc_opt(&[Some("0"), Some("1"), Some("0"), None]);
        // only rows 0 and 1 are complete
        let i = mutual_information(&x, &y, None);
        assert!((i - 1.0).abs() < 1e-12);
        let all_missing = enc_opt(&[None, None, None, None]);
        assert_eq!(
            conditional_mutual_information(&x, &y, &[&all_missing], None),
            0.0
        );
        assert_eq!(interaction_information(&x, &y, &all_missing, None), 0.0);
    }

    #[test]
    fn weights_change_distribution() {
        let x = enc(&["a", "b"]);
        // uniform: 1 bit; heavily skewed: less than 1 bit
        assert!((entropy(&x, Some(&[1.0, 1.0])) - 1.0).abs() < 1e-12);
        assert!(entropy(&x, Some(&[9.0, 1.0])) < 0.5);
    }

    #[test]
    fn normalized_mi_bounds() {
        let x = enc(&["a", "b", "a", "b"]);
        let y = enc(&["0", "1", "0", "1"]);
        assert!((normalized_mutual_information(&x, &y, None) - 1.0).abs() < 1e-12);
        let constant = enc(&["k", "k", "k", "k"]);
        assert_eq!(normalized_mutual_information(&x, &constant, None), 0.0);
        let indep = enc(&["0", "0", "1", "1"]);
        assert!(normalized_mutual_information(&x, &indep, None).abs() < 1e-12);
    }

    #[test]
    fn chain_rule_holds_on_estimates() {
        // I(X;Y,Z) = I(X;Y) + I(X;Z|Y) for fully observed data
        let x = enc(&["a", "a", "b", "b", "a", "b", "a", "b"]);
        let y = enc(&["0", "1", "0", "1", "1", "0", "0", "1"]);
        let z = enc(&["p", "p", "q", "q", "q", "p", "q", "p"]);
        // joint of (y,z) as a single variable via building a combined coding
        let yz_codes: Vec<Option<u32>> = y
            .iter_codes()
            .zip(z.iter_codes())
            .map(|(a, b)| match (a, b) {
                (Some(a), Some(b)) => Some(a * 2 + b),
                _ => None,
            })
            .collect();
        let yz = EncodedColumn::from_option_codes(
            yz_codes,
            vec!["00".into(), "01".into(), "10".into(), "11".into()],
        );
        let lhs = mutual_information(&x, &yz, None);
        let rhs =
            mutual_information(&x, &y, None) + conditional_mutual_information(&x, &z, &[&y], None);
        assert!(
            (lhs - rhs).abs() < 1e-9,
            "chain rule violated: {lhs} vs {rhs}"
        );
    }
}
