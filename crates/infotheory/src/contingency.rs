//! Weighted joint count tables over encoded (discrete) columns.
//!
//! Every estimator in this crate reduces to plug-in entropies computed from a
//! joint count table. Rows with a missing value in *any* of the involved
//! columns are dropped (complete-case analysis); Inverse Probability Weighting
//! re-weights the remaining rows, which is why every count is an `f64` weight
//! rather than an integer.
//!
//! Storage is delegated to the [`kernel`] module: small cross
//! products (the overwhelmingly common case after binning) are accumulated
//! into a flat dense vector via mixed-radix code packing; larger ones fall
//! back to the sparse hash-map path.

use tabular::{ColumnView, EncodedColumn, TabularError};

use crate::kernel::{self, JointCounts};

/// A weighted joint distribution over the cross product of a set of encoded
/// columns.
#[derive(Debug, Clone)]
pub struct JointTable {
    /// Weighted count per observed joint key (dense or sparse).
    counts: JointCounts,
    /// Total weight over all observed keys.
    total: f64,
    /// Number of rows that participated (complete cases).
    complete_cases: usize,
}

impl JointTable {
    /// Builds the joint table of `columns` over rows `0..n`, where `n` is the
    /// common length of the columns.
    ///
    /// * Rows with a missing value in any column are skipped.
    /// * `weights`, when given, must have the same length as the columns and
    ///   assigns a non-negative weight to each row (IPW weights). Without
    ///   weights every complete row counts 1. Rows with zero weight are
    ///   skipped.
    ///
    /// # Panics
    /// Panics if the columns (or the weight vector) have inconsistent
    /// lengths, or if any weight is negative or non-finite (NaN / infinite
    /// weights would silently corrupt the counts).
    pub fn build(columns: &[&EncodedColumn], weights: Option<&[f64]>) -> Self {
        let n = columns.first().map(|c| c.len()).unwrap_or(0);
        Self::build_with_threshold(columns, weights, kernel::adaptive_dense_cells(n))
    }

    /// Like [`build`](JointTable::build) but with an explicit dense-cell
    /// threshold: cross products with at most `dense_cells` cells use the
    /// dense kernel, larger ones the sparse hash path. `0` forces sparse.
    pub fn build_with_threshold(
        columns: &[&EncodedColumn],
        weights: Option<&[f64]>,
        dense_cells: usize,
    ) -> Self {
        Self::try_build_with_threshold(columns, weights, dense_cells)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`build`](JointTable::build) with the length/weight contract
    /// surfaced as a structured [`TabularError`] instead of a panic — the
    /// serving-path entry point.
    pub fn try_build(
        columns: &[&EncodedColumn],
        weights: Option<&[f64]>,
    ) -> Result<Self, TabularError> {
        let n = columns.first().map(|c| c.len()).unwrap_or(0);
        Self::try_build_with_threshold(columns, weights, kernel::adaptive_dense_cells(n))
    }

    /// [`build_with_threshold`](JointTable::build_with_threshold), returning
    /// contract violations as [`TabularError::InvalidArgument`].
    pub fn try_build_with_threshold(
        columns: &[&EncodedColumn],
        weights: Option<&[f64]>,
        dense_cells: usize,
    ) -> Result<Self, TabularError> {
        let acc = kernel::try_accumulate(columns, weights, dense_cells)?;
        Ok(JointTable {
            counts: acc.counts,
            total: acc.total,
            complete_cases: acc.complete_cases,
        })
    }

    /// Builds the joint table over columns in either lifecycle state
    /// (mutable or sealed). Semantics are identical to
    /// [`build`](JointTable::build); sealed columns are folded through the
    /// run-aware kernel paths without decoding, with bit-identical results.
    pub fn build_views(columns: &[ColumnView<'_>], weights: Option<&[f64]>) -> Self {
        let n = columns.first().map(|c| c.len()).unwrap_or(0);
        Self::build_views_with_threshold(columns, weights, kernel::adaptive_dense_cells(n))
    }

    /// Like [`build_views`](JointTable::build_views) with an explicit
    /// dense-cell threshold (see
    /// [`build_with_threshold`](JointTable::build_with_threshold)).
    pub fn build_views_with_threshold(
        columns: &[ColumnView<'_>],
        weights: Option<&[f64]>,
        dense_cells: usize,
    ) -> Self {
        Self::try_build_views_with_threshold(columns, weights, dense_cells)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`build_views`](JointTable::build_views) with contract violations
    /// returned as [`TabularError::InvalidArgument`] instead of panicking.
    pub fn try_build_views(
        columns: &[ColumnView<'_>],
        weights: Option<&[f64]>,
    ) -> Result<Self, TabularError> {
        let n = columns.first().map(|c| c.len()).unwrap_or(0);
        Self::try_build_views_with_threshold(columns, weights, kernel::adaptive_dense_cells(n))
    }

    /// [`build_views_with_threshold`](JointTable::build_views_with_threshold),
    /// returning contract violations as [`TabularError::InvalidArgument`].
    pub fn try_build_views_with_threshold(
        columns: &[ColumnView<'_>],
        weights: Option<&[f64]>,
        dense_cells: usize,
    ) -> Result<Self, TabularError> {
        let acc = kernel::try_accumulate_views(columns, weights, dense_cells)?;
        Ok(JointTable {
            counts: acc.counts,
            total: acc.total,
            complete_cases: acc.complete_cases,
        })
    }

    /// Whether the table is stored densely.
    pub fn is_dense(&self) -> bool {
        matches!(self.counts, JointCounts::Dense { .. })
    }

    /// Total weight of the table.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Number of complete-case rows that contributed.
    pub fn complete_cases(&self) -> usize {
        self.complete_cases
    }

    /// Number of observed (non-zero) cells.
    pub fn n_cells(&self) -> usize {
        self.counts.n_cells()
    }

    /// Whether no row survived the complete-case filter.
    pub fn is_empty(&self) -> bool {
        self.complete_cases == 0 || self.total <= 0.0
    }

    /// Iterates `(joint key, weighted count)` pairs of the observed cells.
    pub fn iter(&self) -> impl Iterator<Item = (Vec<u32>, f64)> + '_ {
        self.counts.iter_keyed()
    }

    /// Plug-in Shannon entropy (base 2) of the joint distribution.
    pub fn entropy(&self) -> f64 {
        self.counts.entropy(self.total)
    }

    /// Marginalises the table onto a subset of its dimensions (by position).
    pub fn marginal(&self, dims: &[usize]) -> JointTable {
        JointTable {
            counts: self.counts.marginalize(dims),
            total: self.total,
            complete_cases: self.complete_cases,
        }
    }

    /// The probability of a specific joint key (0 when unobserved).
    pub fn probability(&self, key: &[u32]) -> f64 {
        if self.total <= 0.0 {
            return 0.0;
        }
        self.counts.get(key) / self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::Column;

    fn enc(vals: &[Option<&str>]) -> EncodedColumn {
        Column::from_str_values("c", vals.to_vec()).encode()
    }

    #[test]
    fn builds_counts_and_total() {
        let x = enc(&[Some("a"), Some("a"), Some("b"), Some("b")]);
        let y = enc(&[Some("0"), Some("1"), Some("0"), Some("1")]);
        let t = JointTable::build(&[&x, &y], None);
        assert_eq!(t.n_cells(), 4);
        assert_eq!(t.total(), 4.0);
        assert_eq!(t.complete_cases(), 4);
        assert!((t.probability(&[0, 0]) - 0.25).abs() < 1e-12);
        assert_eq!(t.probability(&[9, 9]), 0.0);
    }

    #[test]
    fn missing_rows_are_dropped() {
        let x = enc(&[Some("a"), None, Some("b")]);
        let y = enc(&[Some("0"), Some("1"), None]);
        let t = JointTable::build(&[&x, &y], None);
        assert_eq!(t.complete_cases(), 1);
        assert_eq!(t.total(), 1.0);
    }

    #[test]
    fn weights_scale_counts() {
        let x = enc(&[Some("a"), Some("b")]);
        let t = JointTable::build(&[&x], Some(&[2.0, 6.0]));
        assert_eq!(t.total(), 8.0);
        assert!((t.probability(&[1]) - 0.75).abs() < 1e-12);
        // zero / negative weights are skipped
        let t = JointTable::build(&[&x], Some(&[0.0, 1.0]));
        assert_eq!(t.complete_cases(), 1);
    }

    #[test]
    fn entropy_uniform_and_deterministic() {
        let x = enc(&[Some("a"), Some("b"), Some("c"), Some("d")]);
        let t = JointTable::build(&[&x], None);
        assert!((t.entropy() - 2.0).abs() < 1e-12);
        let y = enc(&[Some("a"), Some("a")]);
        assert_eq!(JointTable::build(&[&y], None).entropy(), 0.0);
        let empty = enc(&[None, None]);
        assert_eq!(JointTable::build(&[&empty], None).entropy(), 0.0);
    }

    #[test]
    fn marginalisation_preserves_total() {
        let x = enc(&[Some("a"), Some("a"), Some("b"), Some("b")]);
        let y = enc(&[Some("0"), Some("1"), Some("0"), Some("1")]);
        let t = JointTable::build(&[&x, &y], None);
        let mx = t.marginal(&[0]);
        assert_eq!(mx.total(), t.total());
        assert_eq!(mx.n_cells(), 2);
        assert!((mx.probability(&[0]) - 0.5).abs() < 1e-12);
        assert!((mx.entropy() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let x = enc(&[Some("a")]);
        let y = enc(&[Some("a"), Some("b")]);
        JointTable::build(&[&x, &y], None);
    }

    #[test]
    fn dense_and_sparse_tables_agree() {
        let x = enc(&[Some("a"), Some("a"), Some("b"), None, Some("b"), Some("c")]);
        let y = enc(&[Some("0"), Some("1"), Some("0"), Some("1"), None, Some("1")]);
        let w = [1.0, 2.0, 0.5, 1.0, 1.0, 3.0];
        let dense = JointTable::build(&[&x, &y], Some(&w));
        let sparse = JointTable::build_with_threshold(&[&x, &y], Some(&w), 0);
        assert!(dense.is_dense());
        assert!(!sparse.is_dense());
        assert_eq!(dense.total(), sparse.total());
        assert_eq!(dense.complete_cases(), sparse.complete_cases());
        assert_eq!(dense.n_cells(), sparse.n_cells());
        assert!((dense.entropy() - sparse.entropy()).abs() < 1e-12);
        for dims in [vec![0], vec![1]] {
            let dm = dense.marginal(&dims);
            let sm = sparse.marginal(&dims);
            assert!((dm.entropy() - sm.entropy()).abs() < 1e-12);
            assert_eq!(dm.n_cells(), sm.n_cells());
        }
        assert!((dense.probability(&[0, 1]) - sparse.probability(&[0, 1])).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid IPW weight")]
    fn non_finite_weights_are_rejected() {
        let x = enc(&[Some("a"), Some("b")]);
        JointTable::build(&[&x], Some(&[1.0, f64::INFINITY]));
    }

    #[test]
    #[should_panic(expected = "invalid IPW weight")]
    fn negative_weights_are_rejected() {
        let x = enc(&[Some("a"), Some("b")]);
        JointTable::build(&[&x], Some(&[-1.0, 1.0]));
    }
}
