//! Weighted joint count tables over encoded (discrete) columns.
//!
//! Every estimator in this crate reduces to plug-in entropies computed from a
//! joint count table. Rows with a missing value in *any* of the involved
//! columns are dropped (complete-case analysis); Inverse Probability Weighting
//! re-weights the remaining rows, which is why every count is an `f64` weight
//! rather than an integer.

use std::collections::HashMap;

use tabular::EncodedColumn;

/// A weighted joint distribution over the cross product of a set of encoded
/// columns.
#[derive(Debug, Clone)]
pub struct JointTable {
    /// Weighted count for each observed joint key.
    counts: HashMap<Vec<u32>, f64>,
    /// Total weight over all observed keys.
    total: f64,
    /// Number of rows that participated (complete cases).
    complete_cases: usize,
}

impl JointTable {
    /// Builds the joint table of `columns` over rows `0..n`, where `n` is the
    /// common length of the columns.
    ///
    /// * Rows with a missing value in any column are skipped.
    /// * `weights`, when given, must have the same length as the columns and
    ///   assigns a non-negative weight to each row (IPW weights). Without
    ///   weights every complete row counts 1.
    ///
    /// # Panics
    /// Panics if the columns (or the weight vector) have inconsistent lengths.
    pub fn build(columns: &[&EncodedColumn], weights: Option<&[f64]>) -> Self {
        let n = columns.first().map(|c| c.len()).unwrap_or(0);
        for c in columns {
            assert_eq!(c.len(), n, "all columns must have equal length");
        }
        if let Some(w) = weights {
            assert_eq!(w.len(), n, "weights must have one entry per row");
        }
        let mut counts: HashMap<Vec<u32>, f64> = HashMap::new();
        let mut total = 0.0;
        let mut complete_cases = 0usize;
        'rows: for row in 0..n {
            let mut key = Vec::with_capacity(columns.len());
            for c in columns {
                match c.codes[row] {
                    Some(code) => key.push(code),
                    None => continue 'rows,
                }
            }
            let w = weights.map(|w| w[row]).unwrap_or(1.0);
            if w <= 0.0 {
                continue;
            }
            *counts.entry(key).or_insert(0.0) += w;
            total += w;
            complete_cases += 1;
        }
        JointTable {
            counts,
            total,
            complete_cases,
        }
    }

    /// Total weight of the table.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Number of complete-case rows that contributed.
    pub fn complete_cases(&self) -> usize {
        self.complete_cases
    }

    /// Number of observed (non-zero) cells.
    pub fn n_cells(&self) -> usize {
        self.counts.len()
    }

    /// Whether no row survived the complete-case filter.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty() || self.total <= 0.0
    }

    /// Iterates `(joint key, weighted count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<u32>, f64)> {
        self.counts.iter().map(|(k, &v)| (k, v))
    }

    /// Plug-in Shannon entropy (base 2) of the joint distribution.
    pub fn entropy(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let mut h = 0.0;
        for &count in self.counts.values() {
            if count > 0.0 {
                let p = count / self.total;
                h -= p * p.log2();
            }
        }
        // Clamp tiny negative values arising from floating point error.
        h.max(0.0)
    }

    /// Marginalises the table onto a subset of its dimensions (by position).
    pub fn marginal(&self, dims: &[usize]) -> JointTable {
        let mut counts: HashMap<Vec<u32>, f64> = HashMap::new();
        for (key, count) in self.iter() {
            let sub: Vec<u32> = dims.iter().map(|&d| key[d]).collect();
            *counts.entry(sub).or_insert(0.0) += count;
        }
        JointTable {
            counts,
            total: self.total,
            complete_cases: self.complete_cases,
        }
    }

    /// The probability of a specific joint key (0 when unobserved).
    pub fn probability(&self, key: &[u32]) -> f64 {
        if self.total <= 0.0 {
            return 0.0;
        }
        self.counts.get(key).copied().unwrap_or(0.0) / self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::Column;

    fn enc(vals: &[Option<&str>]) -> EncodedColumn {
        Column::from_str_values("c", vals.to_vec()).encode()
    }

    #[test]
    fn builds_counts_and_total() {
        let x = enc(&[Some("a"), Some("a"), Some("b"), Some("b")]);
        let y = enc(&[Some("0"), Some("1"), Some("0"), Some("1")]);
        let t = JointTable::build(&[&x, &y], None);
        assert_eq!(t.n_cells(), 4);
        assert_eq!(t.total(), 4.0);
        assert_eq!(t.complete_cases(), 4);
        assert!((t.probability(&[0, 0]) - 0.25).abs() < 1e-12);
        assert_eq!(t.probability(&[9, 9]), 0.0);
    }

    #[test]
    fn missing_rows_are_dropped() {
        let x = enc(&[Some("a"), None, Some("b")]);
        let y = enc(&[Some("0"), Some("1"), None]);
        let t = JointTable::build(&[&x, &y], None);
        assert_eq!(t.complete_cases(), 1);
        assert_eq!(t.total(), 1.0);
    }

    #[test]
    fn weights_scale_counts() {
        let x = enc(&[Some("a"), Some("b")]);
        let t = JointTable::build(&[&x], Some(&[2.0, 6.0]));
        assert_eq!(t.total(), 8.0);
        assert!((t.probability(&[1]) - 0.75).abs() < 1e-12);
        // zero / negative weights are skipped
        let t = JointTable::build(&[&x], Some(&[0.0, 1.0]));
        assert_eq!(t.complete_cases(), 1);
    }

    #[test]
    fn entropy_uniform_and_deterministic() {
        let x = enc(&[Some("a"), Some("b"), Some("c"), Some("d")]);
        let t = JointTable::build(&[&x], None);
        assert!((t.entropy() - 2.0).abs() < 1e-12);
        let y = enc(&[Some("a"), Some("a")]);
        assert_eq!(JointTable::build(&[&y], None).entropy(), 0.0);
        let empty = enc(&[None, None]);
        assert_eq!(JointTable::build(&[&empty], None).entropy(), 0.0);
    }

    #[test]
    fn marginalisation_preserves_total() {
        let x = enc(&[Some("a"), Some("a"), Some("b"), Some("b")]);
        let y = enc(&[Some("0"), Some("1"), Some("0"), Some("1")]);
        let t = JointTable::build(&[&x, &y], None);
        let mx = t.marginal(&[0]);
        assert_eq!(mx.total(), t.total());
        assert_eq!(mx.n_cells(), 2);
        assert!((mx.probability(&[0]) - 0.5).abs() < 1e-12);
        assert!((mx.entropy() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let x = enc(&[Some("a")]);
        let y = enc(&[Some("a"), Some("b")]);
        JointTable::build(&[&x, &y], None);
    }
}
