//! # infotheory
//!
//! Weighted plug-in estimators for the information-theoretic quantities the
//! MESA system is built on: entropy, conditional entropy, mutual information,
//! conditional mutual information (the paper's partial-correlation measure),
//! interaction information, conditional-independence tests, and approximate
//! functional dependencies.
//!
//! All estimators operate on the discrete [`tabular::EncodedColumn`]
//! representation (numeric attributes are binned first, see
//! [`tabular::bin_frame`]), use complete-case analysis over the involved
//! columns, and accept optional per-row weights so that Inverse Probability
//! Weighting can correct selection bias (Section 3.2 of the paper).
//!
//! ```
//! use tabular::DataFrameBuilder;
//! use infotheory::EncodedFrame;
//!
//! let df = DataFrameBuilder::new()
//!     .cat("country", vec![Some("DE"), Some("DE"), Some("US"), Some("US")])
//!     .cat("salary", vec![Some("high"), Some("high"), Some("low"), Some("low")])
//!     .cat("gdp", vec![Some("big"), Some("big"), Some("small"), Some("small")])
//!     .build()
//!     .unwrap();
//! let ef = EncodedFrame::from_frame(&df);
//! // Salary and country are perfectly correlated ...
//! assert!(ef.mutual_information("country", "salary", None).unwrap() > 0.9);
//! // ... but conditioning on GDP explains the correlation away.
//! assert!(ef.cmi("country", "salary", &["gdp"], None).unwrap() < 1e-9);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod contingency;
pub mod frame;
pub mod independence;
pub mod kernel;
pub mod measures;
pub mod special;

pub use contingency::JointTable;
pub use frame::{ColumnEncodingReport, EncodedFrame};
pub use independence::{
    approx_functional_dependency, ci_test, ci_test_views, is_conditionally_independent,
    logically_equivalent, CiTestConfig, CiTestResult,
};
pub use kernel::{
    accumulate_views, adaptive_dense_cells, complete_case_mask, complete_case_mask_views,
    dense_cell_count, dense_cell_count_views, FixedState, SparseCounts, DEFAULT_DENSE_CELLS,
    DENSE_CELLS_FLOOR, DENSE_CELLS_PER_ROW,
};
pub use measures::{
    conditional_entropy, conditional_entropy_views, conditional_mutual_information,
    conditional_mutual_information_views, entropy, entropy_view, interaction_information,
    interaction_information_views, joint_entropy, joint_entropy_views, mutual_information,
    mutual_information_views, normalized_mutual_information, normalized_mutual_information_views,
};
pub use special::{chi2_sf, gamma_p, ln_gamma};
