//! Conditional-independence testing and approximate functional dependencies.
//!
//! MESA uses a conditional-independence (CI) test in three places:
//!
//! * the **responsibility test** stopping rule (`O ⫫ E_{k+1} | E_k` ⇒ stop),
//! * the **low-relevance** online pruning rule (`O ⫫ E | C` and
//!   `O ⫫ E | C, T` ⇒ drop `E`),
//! * the **selection-bias** detection for extracted attributes (Prop. 3.1/3.2).
//!
//! Following HypDB (reference \[63\] of the paper) we use the G-test: the
//! statistic `G = 2·N·ln(2)·Î(X;Y|Z)` is asymptotically chi-squared with
//! `(|X|-1)(|Y|-1)·|Z|` degrees of freedom under the null hypothesis of
//! conditional independence.

use tabular::{ColumnView, EncodedColumn};

use crate::contingency::JointTable;
use crate::measures::conditional_mutual_information_views;
use crate::special::chi2_sf;

/// The outcome of a conditional-independence test.
#[derive(Debug, Clone, PartialEq)]
pub struct CiTestResult {
    /// The estimated conditional mutual information (bits).
    pub cmi: f64,
    /// The G statistic `2·N·ln(2)·Î` (natural-log scale).
    pub statistic: f64,
    /// Degrees of freedom of the null distribution.
    pub dof: f64,
    /// p-value under the chi-squared null.
    pub p_value: f64,
    /// Number of complete cases that entered the test.
    pub n: usize,
    /// Whether the null of conditional independence is *retained* at the
    /// significance level the test was run with.
    pub independent: bool,
}

/// Configuration for the CI test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CiTestConfig {
    /// Significance level; the null (independence) is rejected when
    /// `p_value < alpha`.
    pub alpha: f64,
    /// Absolute CMI floor: estimates below this are treated as independent
    /// regardless of the p-value. This guards against the G-test rejecting on
    /// huge samples where the dependence is real but negligible.
    pub min_cmi: f64,
}

impl Default for CiTestConfig {
    fn default() -> Self {
        CiTestConfig {
            alpha: 0.05,
            min_cmi: 1e-3,
        }
    }
}

/// Number of distinct codes present among complete cases of the joint table
/// for the given dimension.
fn observed_levels(table: &JointTable, dim: usize) -> usize {
    table.marginal(&[dim]).n_cells()
}

/// Runs the G-test of `X ⫫ Y | Z` on complete cases (optionally weighted).
pub fn ci_test(
    x: &EncodedColumn,
    y: &EncodedColumn,
    z: &[&EncodedColumn],
    weights: Option<&[f64]>,
    config: CiTestConfig,
) -> CiTestResult {
    let z_views: Vec<ColumnView<'_>> = z.iter().map(|&c| c.into()).collect();
    ci_test_views(x.into(), y.into(), &z_views, weights, config)
}

/// [`ci_test`] over columns in either lifecycle state (mutable or sealed).
pub fn ci_test_views(
    x: ColumnView<'_>,
    y: ColumnView<'_>,
    z: &[ColumnView<'_>],
    weights: Option<&[f64]>,
    config: CiTestConfig,
) -> CiTestResult {
    let mut all: Vec<ColumnView<'_>> = Vec::with_capacity(z.len() + 2);
    all.push(x);
    all.push(y);
    all.extend_from_slice(z);
    let joint = JointTable::build_views(&all, weights);
    let n = joint.complete_cases();
    let cmi = conditional_mutual_information_views(x, y, z, weights);
    if n == 0 {
        return CiTestResult {
            cmi: 0.0,
            statistic: 0.0,
            dof: 0.0,
            p_value: 1.0,
            n,
            independent: true,
        };
    }
    let levels_x = observed_levels(&joint, 0).max(1);
    let levels_y = observed_levels(&joint, 1).max(1);
    let levels_z: usize = if z.is_empty() {
        1
    } else {
        joint
            .marginal(&(2..all.len()).collect::<Vec<_>>())
            .n_cells()
            .max(1)
    };
    let dof = (((levels_x - 1) * (levels_y - 1) * levels_z) as f64).max(1.0);
    // CMI is in bits; G uses natural logs.
    let statistic = 2.0 * n as f64 * std::f64::consts::LN_2 * cmi;
    let p_value = chi2_sf(statistic, dof);
    let independent = cmi < config.min_cmi || p_value >= config.alpha;
    CiTestResult {
        cmi,
        statistic,
        dof,
        p_value,
        n,
        independent,
    }
}

/// Convenience wrapper returning only the independence verdict.
pub fn is_conditionally_independent(
    x: &EncodedColumn,
    y: &EncodedColumn,
    z: &[&EncodedColumn],
    weights: Option<&[f64]>,
) -> bool {
    ci_test(x, y, z, weights, CiTestConfig::default()).independent
}

/// Tests the approximate functional dependency `X ⇒ Y`: holds when the
/// conditional entropy `H(Y | X)` is at most `epsilon` bits.
pub fn approx_functional_dependency(x: &EncodedColumn, y: &EncodedColumn, epsilon: f64) -> bool {
    crate::measures::conditional_entropy(y, &[x], None) <= epsilon
}

/// Tests whether two attributes are *logically dependent* in the paper's
/// sense: `H(Y|X) ≈ 0` **and** `H(X|Y) ≈ 0` (they determine each other, like
/// `Country` and `CountryCode`). Conditioning on such an attribute would
/// mechanically drive the CMI to zero (Lemma A.2), so MESA prunes them.
pub fn logically_equivalent(x: &EncodedColumn, y: &EncodedColumn, epsilon: f64) -> bool {
    approx_functional_dependency(x, y, epsilon) && approx_functional_dependency(y, x, epsilon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::Column;

    fn enc(vals: &[&str]) -> EncodedColumn {
        Column::from_str_values("c", vals.iter().map(|v| Some(*v)).collect()).encode()
    }

    /// Repeats a pattern to get a reasonably sized sample.
    fn repeat(pattern: &[&str], times: usize) -> EncodedColumn {
        let vals: Vec<&str> = pattern
            .iter()
            .cycle()
            .take(pattern.len() * times)
            .copied()
            .collect();
        enc(&vals)
    }

    #[test]
    fn independent_variables_retain_null() {
        let x = repeat(&["a", "a", "b", "b"], 50);
        let y = repeat(&["0", "1", "0", "1"], 50);
        let r = ci_test(&x, &y, &[], None, CiTestConfig::default());
        assert!(r.independent);
        assert!(r.p_value > 0.05 || r.cmi < 1e-3);
        assert_eq!(r.n, 200);
    }

    #[test]
    fn dependent_variables_reject_null() {
        let x = repeat(&["a", "a", "b", "b"], 50);
        let y = x.clone();
        let r = ci_test(&x, &y, &[], None, CiTestConfig::default());
        assert!(!r.independent);
        assert!(r.p_value < 0.01);
        assert!(r.cmi > 0.9);
    }

    #[test]
    fn conditionally_independent_given_confounder() {
        // X and Y are both copies of Z: dependent marginally, independent given Z.
        let z = repeat(&["u", "v", "u", "v", "w", "w"], 40);
        let x = z.clone();
        let y = z.clone();
        assert!(!is_conditionally_independent(&x, &y, &[], None));
        assert!(is_conditionally_independent(&x, &y, &[&z], None));
    }

    #[test]
    fn small_sample_does_not_reject() {
        // With only a handful of rows the G-test should not claim dependence.
        let x = enc(&["a", "b"]);
        let y = enc(&["0", "1"]);
        let r = ci_test(&x, &y, &[], None, CiTestConfig::default());
        assert!(r.independent);
    }

    #[test]
    fn empty_data_is_independent() {
        let x = Column::from_str_values("x", vec![None::<&str>, None]).encode();
        let y = x.clone();
        let r = ci_test(&x, &y, &[], None, CiTestConfig::default());
        assert!(r.independent);
        assert_eq!(r.n, 0);
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn min_cmi_floor_overrides_significance() {
        // Huge sample with a microscopic real dependence: the floor keeps it
        // classified as independent.
        let n = 5000;
        let xv: Vec<String> = (0..n).map(|i| ((i / 2) % 2).to_string()).collect();
        let mut yv: Vec<String> = (0..n).map(|i| (i % 2).to_string()).collect();
        // inject a tiny association
        for item in yv.iter_mut().take(8) {
            *item = "0".to_string();
        }
        let x =
            Column::from_str_values("x", xv.iter().map(|s| Some(s.as_str())).collect()).encode();
        let y =
            Column::from_str_values("y", yv.iter().map(|s| Some(s.as_str())).collect()).encode();
        let strict = ci_test(
            &x,
            &y,
            &[],
            None,
            CiTestConfig {
                alpha: 0.05,
                min_cmi: 0.0,
            },
        );
        let with_floor = ci_test(&x, &y, &[], None, CiTestConfig::default());
        assert!(with_floor.independent);
        // the raw test may or may not reject; the floor must make the verdict independent
        assert!(with_floor.cmi <= strict.cmi + 1e-12);
    }

    #[test]
    fn functional_dependency_detection() {
        // CountryCode -> Country (1:1 mapping)
        let code = repeat(&["DE", "US", "FR"], 30);
        let country = repeat(&["Germany", "USA", "France"], 30);
        assert!(approx_functional_dependency(&code, &country, 0.01));
        assert!(approx_functional_dependency(&country, &code, 0.01));
        assert!(logically_equivalent(&code, &country, 0.01));

        // Continent -> determined by country, but not vice versa
        let country2 = repeat(&["DE", "FR", "US", "MX"], 30);
        let continent = repeat(&["EU", "EU", "NA", "NA"], 30);
        assert!(approx_functional_dependency(&country2, &continent, 0.01));
        assert!(!approx_functional_dependency(&continent, &country2, 0.01));
        assert!(!logically_equivalent(&country2, &continent, 0.01));
    }

    #[test]
    fn dof_accounts_for_conditioning_levels() {
        let x = repeat(&["a", "b", "a", "b"], 25);
        let y = repeat(&["0", "0", "1", "1"], 25);
        let z = repeat(&["p", "q", "r", "s"], 25);
        let with_z = ci_test(&x, &y, &[&z], None, CiTestConfig::default());
        let without = ci_test(&x, &y, &[], None, CiTestConfig::default());
        assert!(with_z.dof >= without.dof);
    }
}
