//! Special functions needed by the statistical independence tests: log-gamma,
//! the regularised incomplete gamma function, and the chi-squared survival
//! function.

/// Natural log of the gamma function (Lanczos approximation, g = 7, n = 9).
///
/// Accurate to roughly 1e-13 for positive arguments, which is far more than
/// the independence tests need.
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularised lower incomplete gamma function `P(a, x)` for `a > 0, x >= 0`.
///
/// Uses the series expansion for `x < a + 1` and the continued fraction for
/// the complement otherwise (Numerical Recipes style).
pub fn gamma_p(a: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if a <= 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut sum = 1.0 / a;
        let mut term = sum;
        let mut ap = a;
        for _ in 0..500 {
            ap += 1.0;
            term *= x / ap;
            sum += term;
            if term.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        (sum * (-x + a * x.ln() - ln_gamma(a)).exp()).clamp(0.0, 1.0)
    } else {
        // Continued fraction for Q(a, x), then P = 1 - Q.
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / 1e-300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 1e-15 {
                break;
            }
        }
        let q = (-x + a * x.ln() - ln_gamma(a)).exp() * h;
        (1.0 - q).clamp(0.0, 1.0)
    }
}

/// Chi-squared survival function: `P(Chi2_k >= x)`.
pub fn chi2_sf(x: f64, dof: f64) -> f64 {
    if dof <= 0.0 {
        return if x > 0.0 { 0.0 } else { 1.0 };
    }
    if x <= 0.0 {
        return 1.0;
    }
    (1.0 - gamma_p(dof / 2.0, x / 2.0)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Gamma(1) = 1, Gamma(2) = 1, Gamma(5) = 24, Gamma(0.5) = sqrt(pi)
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn gamma_p_limits() {
        assert_eq!(gamma_p(2.0, 0.0), 0.0);
        assert!(gamma_p(2.0, 1e6) > 0.999999);
        // P(1, x) = 1 - exp(-x)
        for x in [0.1, 1.0, 3.0, 10.0] {
            assert!((gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-10);
        }
    }

    #[test]
    fn chi2_sf_known_values() {
        // Chi2 with 1 dof: sf(3.841) ~= 0.05
        assert!((chi2_sf(3.841, 1.0) - 0.05).abs() < 1e-3);
        // Chi2 with 2 dof: sf(x) = exp(-x/2)
        for x in [0.5, 2.0, 5.0] {
            assert!((chi2_sf(x, 2.0) - (-x / 2.0f64).exp()).abs() < 1e-10);
        }
        // Chi2 with 10 dof: sf(18.307) ~= 0.05
        assert!((chi2_sf(18.307, 10.0) - 0.05).abs() < 1e-3);
        assert_eq!(chi2_sf(-1.0, 3.0), 1.0);
        assert_eq!(chi2_sf(1.0, 0.0), 0.0);
    }

    #[test]
    fn chi2_sf_monotone_in_x() {
        let mut prev = 1.0;
        for i in 0..50 {
            let x = i as f64 * 0.5;
            let v = chi2_sf(x, 4.0);
            assert!(v <= prev + 1e-12);
            prev = v;
        }
    }
}
