//! A cache of encoded columns over a [`DataFrame`], exposing the
//! information-theoretic measures by column name.
//!
//! MESA evaluates hundreds of CMI terms against the same frame while running
//! MCIMR; encoding each column once and reusing the codes is what keeps the
//! algorithm fast on the multi-million-row Flights workload.

use std::collections::HashMap;

use tabular::{ColumnView, DataFrame, EncodedColumn, Encoding, Result, SealedColumn, TabularError};

use crate::independence::{ci_test_views, CiTestConfig, CiTestResult};
use crate::measures;

/// One column of an [`EncodedFrame`], in one of the two lifecycle states of
/// the storage layer (see [`tabular::storage`]).
#[derive(Debug, Clone)]
enum FrameColumn {
    /// Freshly encoded: dense codes, cheap to replace.
    Mutable(EncodedColumn),
    /// Compressed and immutable, produced by [`EncodedFrame::seal`].
    Sealed(SealedColumn),
}

impl FrameColumn {
    fn view(&self) -> ColumnView<'_> {
        match self {
            FrameColumn::Mutable(c) => ColumnView::Plain(c),
            FrameColumn::Sealed(c) => ColumnView::Sealed(c),
        }
    }
}

/// The per-column outcome of sealing a frame: which encoding was selected and
/// the byte accounting that drove the selection. Mutable (unsealed) columns
/// report [`Encoding::Dense`] with equal dense and sealed byte counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnEncodingReport {
    /// Column name.
    pub name: String,
    /// Selected physical encoding.
    pub encoding: Encoding,
    /// Number of distinct codes.
    pub cardinality: usize,
    /// Number of maximal equal-code runs in the stream (0 when unsealed).
    pub n_runs: usize,
    /// Bytes of the dense (mutable) code vector.
    pub dense_bytes: usize,
    /// Bytes of the code payload in the selected encoding.
    pub sealed_bytes: usize,
}

/// Encoded view of a frame: one column of codes per original column, each in
/// the mutable or sealed state of the mutable → sealed lifecycle. Every
/// measure accepts both states transparently (sealed columns are folded
/// run-aware, with bit-identical results).
#[derive(Debug, Clone)]
pub struct EncodedFrame {
    columns: HashMap<String, FrameColumn>,
    n_rows: usize,
}

impl EncodedFrame {
    /// Encodes every column of the frame.
    pub fn from_frame(df: &DataFrame) -> Self {
        let columns = df
            .columns()
            .map(|c| (c.name().to_string(), FrameColumn::Mutable(c.encode())))
            .collect();
        EncodedFrame {
            columns,
            n_rows: df.n_rows(),
        }
    }

    /// Encodes the frame, reusing precomputed encodings where available.
    ///
    /// `precomputed` maps column names to encodings already produced upstream
    /// (the binning pass emits the bin codes of every column it bins); those
    /// columns are not re-encoded. Each precomputed encoding must describe the
    /// frame's column of the same name — same length, same row order.
    ///
    /// # Panics
    /// Panics if a precomputed encoding's length differs from the frame's row
    /// count (a mismatched encoding would silently mis-score every measure).
    pub fn from_frame_with(df: &DataFrame, precomputed: Vec<(String, EncodedColumn)>) -> Self {
        let n_rows = df.n_rows();
        let mut pre: HashMap<String, EncodedColumn> = HashMap::with_capacity(precomputed.len());
        for (name, enc) in precomputed {
            assert_eq!(
                enc.len(),
                n_rows,
                "precomputed encoding for {name:?} has {} rows, frame has {n_rows}",
                enc.len()
            );
            pre.insert(name, enc);
        }
        let columns = df
            .columns()
            .map(|c| {
                let enc = pre.remove(c.name()).unwrap_or_else(|| c.encode());
                (c.name().to_string(), FrameColumn::Mutable(enc))
            })
            .collect();
        EncodedFrame { columns, n_rows }
    }

    /// Encodes only the named columns of the frame.
    pub fn from_frame_columns(df: &DataFrame, names: &[&str]) -> Result<Self> {
        let mut columns = HashMap::with_capacity(names.len());
        for &n in names {
            columns.insert(n.to_string(), FrameColumn::Mutable(df.column(n)?.encode()));
        }
        Ok(EncodedFrame {
            columns,
            n_rows: df.n_rows(),
        })
    }

    /// Number of rows in the underlying frame.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Names of the encoded columns (unordered).
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.keys().map(|s| s.as_str()).collect()
    }

    /// Whether a column is present.
    pub fn has_column(&self, name: &str) -> bool {
        self.columns.contains_key(name)
    }

    /// Adds (or replaces) an encoded column. The column enters in the
    /// mutable state; call [`seal`](EncodedFrame::seal) again to compress a
    /// frame that was sealed before the insert.
    pub fn insert(&mut self, name: impl Into<String>, column: EncodedColumn) {
        self.columns
            .insert(name.into(), FrameColumn::Mutable(column));
    }

    /// Borrows a column as a state-agnostic [`ColumnView`].
    pub fn column(&self, name: &str) -> Result<ColumnView<'_>> {
        self.columns
            .get(name)
            .map(FrameColumn::view)
            .ok_or_else(|| TabularError::ColumnNotFound(name.to_string()))
    }

    /// Seals every mutable column in place, re-encoding its codes into the
    /// smallest applicable compressed layout (see [`EncodedColumn::seal`]).
    /// Already-sealed columns are left untouched. Every measure returns
    /// bit-identical results before and after sealing.
    pub fn seal(&mut self) {
        for col in self.columns.values_mut() {
            if let FrameColumn::Mutable(c) = col {
                *col = FrameColumn::Sealed(c.seal());
            }
        }
    }

    /// Whether every column is in the sealed state.
    pub fn is_sealed(&self) -> bool {
        self.columns
            .values()
            .all(|c| matches!(c, FrameColumn::Sealed(_)))
    }

    /// The per-column encoding decisions and byte footprints, sorted by
    /// column name. Meaningful after [`seal`](EncodedFrame::seal); mutable
    /// columns report the dense layout with zero compression.
    pub fn encoding_report(&self) -> Vec<ColumnEncodingReport> {
        let mut report: Vec<ColumnEncodingReport> = self
            .columns
            .iter()
            .map(|(name, col)| match col {
                FrameColumn::Mutable(c) => ColumnEncodingReport {
                    name: name.clone(),
                    encoding: Encoding::Dense,
                    cardinality: c.cardinality(),
                    n_runs: 0,
                    dense_bytes: 4 * c.len(),
                    sealed_bytes: 4 * c.len(),
                },
                FrameColumn::Sealed(c) => {
                    let choice = c.choice();
                    ColumnEncodingReport {
                        name: name.clone(),
                        encoding: choice.encoding,
                        cardinality: c.cardinality(),
                        n_runs: choice.n_runs,
                        dense_bytes: choice.dense_bytes,
                        sealed_bytes: choice.sealed_bytes,
                    }
                }
            })
            .collect();
        report.sort_by(|a, b| a.name.cmp(&b.name));
        report
    }

    fn columns_for(&self, names: &[&str]) -> Result<Vec<ColumnView<'_>>> {
        names.iter().map(|&n| self.column(n)).collect()
    }

    /// Checks the IPW weight contract (one finite, non-negative weight per
    /// row) up front, so weighted measures return a structured
    /// [`TabularError::InvalidArgument`] on the serving path instead of
    /// panicking inside the counting kernel.
    fn check_weights(&self, weights: Option<&[f64]>) -> Result<()> {
        crate::kernel::validate_weights(self.n_rows(), weights)
    }

    /// `H(X)`.
    pub fn entropy(&self, x: &str) -> Result<f64> {
        Ok(measures::entropy_view(self.column(x)?, None))
    }

    /// `H(X | Z)` for a set of conditioning columns.
    pub fn conditional_entropy(&self, x: &str, given: &[&str]) -> Result<f64> {
        Ok(measures::conditional_entropy_views(
            self.column(x)?,
            &self.columns_for(given)?,
            None,
        ))
    }

    /// `I(X; Y)`, optionally IPW-weighted.
    pub fn mutual_information(&self, x: &str, y: &str, weights: Option<&[f64]>) -> Result<f64> {
        self.check_weights(weights)?;
        Ok(measures::mutual_information_views(
            self.column(x)?,
            self.column(y)?,
            weights,
        ))
    }

    /// `I(X; Y | Z)` for a set of conditioning columns, optionally
    /// IPW-weighted.
    pub fn cmi(&self, x: &str, y: &str, z: &[&str], weights: Option<&[f64]>) -> Result<f64> {
        self.check_weights(weights)?;
        Ok(measures::conditional_mutual_information_views(
            self.column(x)?,
            self.column(y)?,
            &self.columns_for(z)?,
            weights,
        ))
    }

    /// Interaction information `II(X; Y; Z)`.
    pub fn interaction(&self, x: &str, y: &str, z: &str, weights: Option<&[f64]>) -> Result<f64> {
        self.check_weights(weights)?;
        Ok(measures::interaction_information_views(
            self.column(x)?,
            self.column(y)?,
            self.column(z)?,
            weights,
        ))
    }

    /// Conditional-independence G-test of `X ⫫ Y | Z`.
    pub fn ci_test(
        &self,
        x: &str,
        y: &str,
        z: &[&str],
        weights: Option<&[f64]>,
        config: CiTestConfig,
    ) -> Result<CiTestResult> {
        self.check_weights(weights)?;
        Ok(ci_test_views(
            self.column(x)?,
            self.column(y)?,
            &self.columns_for(z)?,
            weights,
            config,
        ))
    }

    /// Number of distinct non-null values of a column.
    pub fn cardinality(&self, x: &str) -> Result<usize> {
        Ok(self.column(x)?.cardinality())
    }

    /// Fraction of missing values of a column (from the validity bitmap).
    pub fn missing_fraction(&self, x: &str) -> Result<f64> {
        let col = self.column(x)?;
        if col.is_empty() {
            return Ok(0.0);
        }
        Ok(col.null_count() as f64 / col.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::DataFrameBuilder;

    fn frame() -> EncodedFrame {
        let df = DataFrameBuilder::new()
            .cat(
                "t",
                vec![
                    Some("a"),
                    Some("a"),
                    Some("b"),
                    Some("b"),
                    Some("a"),
                    Some("b"),
                ],
            )
            .cat(
                "o",
                vec![
                    Some("hi"),
                    Some("hi"),
                    Some("lo"),
                    Some("lo"),
                    Some("hi"),
                    Some("lo"),
                ],
            )
            .cat(
                "z",
                vec![
                    Some("x"),
                    Some("y"),
                    Some("x"),
                    Some("y"),
                    Some("y"),
                    Some("x"),
                ],
            )
            .float(
                "m",
                vec![Some(1.0), None, Some(3.0), None, Some(5.0), Some(6.0)],
            )
            .build()
            .unwrap();
        EncodedFrame::from_frame(&df)
    }

    #[test]
    fn basic_accessors() {
        let ef = frame();
        assert_eq!(ef.n_rows(), 6);
        assert!(ef.has_column("t"));
        assert!(!ef.has_column("nope"));
        assert!(ef.column("nope").is_err());
        assert_eq!(ef.cardinality("t").unwrap(), 2);
        assert!((ef.missing_fraction("m").unwrap() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(ef.missing_fraction("t").unwrap(), 0.0);
        let mut names = ef.column_names();
        names.sort_unstable();
        assert_eq!(names, vec!["m", "o", "t", "z"]);
    }

    #[test]
    fn measures_by_name() {
        let ef = frame();
        // o is a deterministic function of t, so I(t;o) = H(t) = 1 bit and
        // H(o | t) = 0.
        assert!((ef.entropy("t").unwrap() - 1.0).abs() < 1e-12);
        assert!((ef.mutual_information("t", "o", None).unwrap() - 1.0).abs() < 1e-12);
        assert!(ef.conditional_entropy("o", &["t"]).unwrap().abs() < 1e-12);
        // conditioning on an unrelated column keeps (most of) the MI
        assert!(ef.cmi("t", "o", &["z"], None).unwrap() > 0.9);
        // conditioning on o itself kills it
        assert!(ef.cmi("t", "o", &["o"], None).unwrap().abs() < 1e-12);
        assert!(ef.interaction("t", "o", "o", None).unwrap() > 0.9);
    }

    #[test]
    fn ci_test_by_name() {
        let ef = frame();
        let r = ef
            .ci_test("t", "z", &[], None, CiTestConfig::default())
            .unwrap();
        assert!(r.independent);
        assert!(ef
            .ci_test("t", "missing", &[], None, CiTestConfig::default())
            .is_err());
    }

    #[test]
    fn from_frame_columns_subset() {
        let df = DataFrameBuilder::new()
            .cat("a", vec![Some("x")])
            .cat("b", vec![Some("y")])
            .build()
            .unwrap();
        let ef = EncodedFrame::from_frame_columns(&df, &["a"]).unwrap();
        assert!(ef.has_column("a"));
        assert!(!ef.has_column("b"));
        assert!(EncodedFrame::from_frame_columns(&df, &["zz"]).is_err());
    }

    #[test]
    fn insert_overrides() {
        let mut ef = frame();
        let custom = tabular::Column::from_str_values("t", vec![Some("q"); 6]).encode();
        ef.insert("t", custom);
        assert_eq!(ef.cardinality("t").unwrap(), 1);
    }

    #[test]
    fn sealing_preserves_measures_bitwise() {
        let ef = frame();
        let mut sealed = ef.clone();
        assert!(!sealed.is_sealed());
        sealed.seal();
        assert!(sealed.is_sealed());
        assert_eq!(
            ef.entropy("t").unwrap().to_bits(),
            sealed.entropy("t").unwrap().to_bits()
        );
        assert_eq!(
            ef.mutual_information("t", "o", None).unwrap().to_bits(),
            sealed.mutual_information("t", "o", None).unwrap().to_bits()
        );
        assert_eq!(
            ef.cmi("t", "o", &["z"], None).unwrap().to_bits(),
            sealed.cmi("t", "o", &["z"], None).unwrap().to_bits()
        );
        assert_eq!(
            ef.conditional_entropy("o", &["t"]).unwrap().to_bits(),
            sealed.conditional_entropy("o", &["t"]).unwrap().to_bits()
        );
        let a = ef
            .ci_test("t", "z", &[], None, CiTestConfig::default())
            .unwrap();
        let b = sealed
            .ci_test("t", "z", &[], None, CiTestConfig::default())
            .unwrap();
        assert_eq!(a.cmi.to_bits(), b.cmi.to_bits());
        assert_eq!(a.p_value.to_bits(), b.p_value.to_bits());
        assert_eq!(a.independent, b.independent);
        // null bookkeeping is state-independent too
        assert_eq!(
            ef.missing_fraction("m").unwrap(),
            sealed.missing_fraction("m").unwrap()
        );
    }

    #[test]
    fn seal_is_idempotent_and_insert_unseals() {
        let mut ef = frame();
        ef.seal();
        let h = ef.entropy("t").unwrap();
        ef.seal();
        assert_eq!(ef.entropy("t").unwrap().to_bits(), h.to_bits());
        // Inserting puts the new column back in the mutable state.
        let custom = tabular::Column::from_str_values("t", vec![Some("q"); 6]).encode();
        ef.insert("t", custom);
        assert!(!ef.is_sealed());
        ef.seal();
        assert!(ef.is_sealed());
        assert_eq!(ef.cardinality("t").unwrap(), 1);
    }

    #[test]
    fn encoding_report_is_sorted_and_accounts_bytes() {
        let mut ef = frame();
        // Before sealing: every column dense, no compression claimed.
        for r in ef.encoding_report() {
            assert_eq!(r.encoding, tabular::Encoding::Dense);
            assert_eq!(r.dense_bytes, r.sealed_bytes);
        }
        ef.seal();
        let report = ef.encoding_report();
        let names: Vec<&str> = report.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["m", "o", "t", "z"]);
        for r in &report {
            assert_eq!(r.dense_bytes, 4 * ef.n_rows());
            assert!(r.sealed_bytes <= r.dense_bytes.max(8));
            assert!(r.n_runs >= 1);
        }
    }
}
