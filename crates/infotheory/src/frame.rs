//! A cache of encoded columns over a [`DataFrame`], exposing the
//! information-theoretic measures by column name.
//!
//! MESA evaluates hundreds of CMI terms against the same frame while running
//! MCIMR; encoding each column once and reusing the codes is what keeps the
//! algorithm fast on the multi-million-row Flights workload.

use std::collections::HashMap;

use tabular::{DataFrame, EncodedColumn, Result, TabularError};

use crate::independence::{ci_test, CiTestConfig, CiTestResult};
use crate::measures;

/// Encoded view of a frame: one [`EncodedColumn`] per original column.
#[derive(Debug, Clone)]
pub struct EncodedFrame {
    columns: HashMap<String, EncodedColumn>,
    n_rows: usize,
}

impl EncodedFrame {
    /// Encodes every column of the frame.
    pub fn from_frame(df: &DataFrame) -> Self {
        let columns = df
            .columns()
            .map(|c| (c.name().to_string(), c.encode()))
            .collect();
        EncodedFrame {
            columns,
            n_rows: df.n_rows(),
        }
    }

    /// Encodes the frame, reusing precomputed encodings where available.
    ///
    /// `precomputed` maps column names to encodings already produced upstream
    /// (the binning pass emits the bin codes of every column it bins); those
    /// columns are not re-encoded. Each precomputed encoding must describe the
    /// frame's column of the same name — same length, same row order.
    ///
    /// # Panics
    /// Panics if a precomputed encoding's length differs from the frame's row
    /// count (a mismatched encoding would silently mis-score every measure).
    pub fn from_frame_with(df: &DataFrame, precomputed: Vec<(String, EncodedColumn)>) -> Self {
        let n_rows = df.n_rows();
        let mut pre: HashMap<String, EncodedColumn> = HashMap::with_capacity(precomputed.len());
        for (name, enc) in precomputed {
            assert_eq!(
                enc.len(),
                n_rows,
                "precomputed encoding for {name:?} has {} rows, frame has {n_rows}",
                enc.len()
            );
            pre.insert(name, enc);
        }
        let columns = df
            .columns()
            .map(|c| {
                let enc = pre.remove(c.name()).unwrap_or_else(|| c.encode());
                (c.name().to_string(), enc)
            })
            .collect();
        EncodedFrame { columns, n_rows }
    }

    /// Encodes only the named columns of the frame.
    pub fn from_frame_columns(df: &DataFrame, names: &[&str]) -> Result<Self> {
        let mut columns = HashMap::with_capacity(names.len());
        for &n in names {
            columns.insert(n.to_string(), df.column(n)?.encode());
        }
        Ok(EncodedFrame {
            columns,
            n_rows: df.n_rows(),
        })
    }

    /// Number of rows in the underlying frame.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Names of the encoded columns (unordered).
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.keys().map(|s| s.as_str()).collect()
    }

    /// Whether a column is present.
    pub fn has_column(&self, name: &str) -> bool {
        self.columns.contains_key(name)
    }

    /// Adds (or replaces) an encoded column.
    pub fn insert(&mut self, name: impl Into<String>, column: EncodedColumn) {
        self.columns.insert(name.into(), column);
    }

    /// Borrows an encoded column.
    pub fn column(&self, name: &str) -> Result<&EncodedColumn> {
        self.columns
            .get(name)
            .ok_or_else(|| TabularError::ColumnNotFound(name.to_string()))
    }

    fn columns_for(&self, names: &[&str]) -> Result<Vec<&EncodedColumn>> {
        names.iter().map(|&n| self.column(n)).collect()
    }

    /// `H(X)`.
    pub fn entropy(&self, x: &str) -> Result<f64> {
        Ok(measures::entropy(self.column(x)?, None))
    }

    /// `H(X | Z)` for a set of conditioning columns.
    pub fn conditional_entropy(&self, x: &str, given: &[&str]) -> Result<f64> {
        Ok(measures::conditional_entropy(
            self.column(x)?,
            &self.columns_for(given)?,
            None,
        ))
    }

    /// `I(X; Y)`, optionally IPW-weighted.
    pub fn mutual_information(&self, x: &str, y: &str, weights: Option<&[f64]>) -> Result<f64> {
        Ok(measures::mutual_information(
            self.column(x)?,
            self.column(y)?,
            weights,
        ))
    }

    /// `I(X; Y | Z)` for a set of conditioning columns, optionally
    /// IPW-weighted.
    pub fn cmi(&self, x: &str, y: &str, z: &[&str], weights: Option<&[f64]>) -> Result<f64> {
        Ok(measures::conditional_mutual_information(
            self.column(x)?,
            self.column(y)?,
            &self.columns_for(z)?,
            weights,
        ))
    }

    /// Interaction information `II(X; Y; Z)`.
    pub fn interaction(&self, x: &str, y: &str, z: &str, weights: Option<&[f64]>) -> Result<f64> {
        Ok(measures::interaction_information(
            self.column(x)?,
            self.column(y)?,
            self.column(z)?,
            weights,
        ))
    }

    /// Conditional-independence G-test of `X ⫫ Y | Z`.
    pub fn ci_test(
        &self,
        x: &str,
        y: &str,
        z: &[&str],
        weights: Option<&[f64]>,
        config: CiTestConfig,
    ) -> Result<CiTestResult> {
        Ok(ci_test(
            self.column(x)?,
            self.column(y)?,
            &self.columns_for(z)?,
            weights,
            config,
        ))
    }

    /// Number of distinct non-null values of a column.
    pub fn cardinality(&self, x: &str) -> Result<usize> {
        Ok(self.column(x)?.cardinality())
    }

    /// Fraction of missing values of a column (from the validity bitmap).
    pub fn missing_fraction(&self, x: &str) -> Result<f64> {
        let col = self.column(x)?;
        if col.is_empty() {
            return Ok(0.0);
        }
        Ok(col.null_count() as f64 / col.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::DataFrameBuilder;

    fn frame() -> EncodedFrame {
        let df = DataFrameBuilder::new()
            .cat(
                "t",
                vec![
                    Some("a"),
                    Some("a"),
                    Some("b"),
                    Some("b"),
                    Some("a"),
                    Some("b"),
                ],
            )
            .cat(
                "o",
                vec![
                    Some("hi"),
                    Some("hi"),
                    Some("lo"),
                    Some("lo"),
                    Some("hi"),
                    Some("lo"),
                ],
            )
            .cat(
                "z",
                vec![
                    Some("x"),
                    Some("y"),
                    Some("x"),
                    Some("y"),
                    Some("y"),
                    Some("x"),
                ],
            )
            .float(
                "m",
                vec![Some(1.0), None, Some(3.0), None, Some(5.0), Some(6.0)],
            )
            .build()
            .unwrap();
        EncodedFrame::from_frame(&df)
    }

    #[test]
    fn basic_accessors() {
        let ef = frame();
        assert_eq!(ef.n_rows(), 6);
        assert!(ef.has_column("t"));
        assert!(!ef.has_column("nope"));
        assert!(ef.column("nope").is_err());
        assert_eq!(ef.cardinality("t").unwrap(), 2);
        assert!((ef.missing_fraction("m").unwrap() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(ef.missing_fraction("t").unwrap(), 0.0);
        let mut names = ef.column_names();
        names.sort_unstable();
        assert_eq!(names, vec!["m", "o", "t", "z"]);
    }

    #[test]
    fn measures_by_name() {
        let ef = frame();
        // o is a deterministic function of t, so I(t;o) = H(t) = 1 bit and
        // H(o | t) = 0.
        assert!((ef.entropy("t").unwrap() - 1.0).abs() < 1e-12);
        assert!((ef.mutual_information("t", "o", None).unwrap() - 1.0).abs() < 1e-12);
        assert!(ef.conditional_entropy("o", &["t"]).unwrap().abs() < 1e-12);
        // conditioning on an unrelated column keeps (most of) the MI
        assert!(ef.cmi("t", "o", &["z"], None).unwrap() > 0.9);
        // conditioning on o itself kills it
        assert!(ef.cmi("t", "o", &["o"], None).unwrap().abs() < 1e-12);
        assert!(ef.interaction("t", "o", "o", None).unwrap() > 0.9);
    }

    #[test]
    fn ci_test_by_name() {
        let ef = frame();
        let r = ef
            .ci_test("t", "z", &[], None, CiTestConfig::default())
            .unwrap();
        assert!(r.independent);
        assert!(ef
            .ci_test("t", "missing", &[], None, CiTestConfig::default())
            .is_err());
    }

    #[test]
    fn from_frame_columns_subset() {
        let df = DataFrameBuilder::new()
            .cat("a", vec![Some("x")])
            .cat("b", vec![Some("y")])
            .build()
            .unwrap();
        let ef = EncodedFrame::from_frame_columns(&df, &["a"]).unwrap();
        assert!(ef.has_column("a"));
        assert!(!ef.has_column("b"));
        assert!(EncodedFrame::from_frame_columns(&df, &["zz"]).is_err());
    }

    #[test]
    fn insert_overrides() {
        let mut ef = frame();
        let custom = tabular::Column::from_str_values("t", vec![Some("q"); 6]).encode();
        ef.insert("t", custom);
        assert_eq!(ef.cardinality("t").unwrap(), 1);
    }
}
