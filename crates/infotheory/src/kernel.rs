//! The columnar counting kernel behind every estimator in this crate.
//!
//! A joint count table over encoded columns can be stored two ways:
//!
//! * **Dense**: when the cross-product cardinality of the involved columns is
//!   at most [`DEFAULT_DENSE_CELLS`], counts live in a flat `Vec<f64>`
//!   indexed by mixed-radix packing of the per-column codes
//!   (`idx = c_0 + r_0·(c_1 + r_1·(c_2 + …))`, radix `r_i` = cardinality of
//!   column `i`). Accumulation is then one multiply-add per column per
//!   complete row — no hashing, no per-row key allocation — and marginals
//!   are dense folds.
//! * **Sparse**: above the threshold the kernel falls back to the hash-map
//!   representation (`Vec<u32>` joint key → weight), which handles
//!   pathological cardinalities without allocating the cross product.
//!
//! The complete-case mask (rows non-null in *every* involved column) is fused
//! into one word-wise bitmap `AND` over the columns' validity bitmaps instead
//! of a per-row `continue` chain.
//!
//! The sparse map uses a **fixed-state hasher** ([`FixedState`]), not the
//! standard library's per-process-randomised `RandomState`: entropy and
//! marginalisation fold the cells in map iteration order, and with a random
//! seed that order — and therefore the floating-point summation order —
//! changed from run to run, injecting ~1e-15 noise into CMI values that
//! flipped exactly-tied subset choices in the Brute-Force/MESA⁻ baselines.
//! With a fixed hasher the iteration order is a pure function of the
//! insertion sequence (row order), so every fold is bit-stable across runs.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use tabular::{Bitmap, EncodedColumn};

/// A deterministic FxHash-style hasher: multiply-xor folding with fixed
/// constants and no per-process seed. Quality is more than sufficient for
/// `Vec<u32>` joint keys, and determinism is the point — see the module docs.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    /// 2^64 / φ, the multiplicative constant used by FxHash.
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn fold(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.fold(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.fold(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.fold(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.fold(i as u64);
    }
}

/// The deterministic `BuildHasher` behind every sparse joint-count map.
pub type FixedState = BuildHasherDefault<FxHasher>;

/// The sparse joint-count map: joint code vector → accumulated weight, with
/// run-to-run deterministic iteration order.
pub type SparseCounts = HashMap<Vec<u32>, f64, FixedState>;

/// Hard maximum number of dense cells (8 MiB of `f64` counts). Cross
/// products larger than this fall back to the sparse hash path.
pub const DEFAULT_DENSE_CELLS: usize = 1 << 20;

/// The row-aware dense threshold used by default builds: a dense table pays
/// for allocating, zeroing, and scanning *every* cell of the cross product,
/// so it only wins while the cell count stays within a small multiple of the
/// number of rows feeding it. Capped at [`DEFAULT_DENSE_CELLS`].
pub fn adaptive_dense_cells(n_rows: usize) -> usize {
    n_rows
        .saturating_mul(8)
        .saturating_add(1024)
        .min(DEFAULT_DENSE_CELLS)
}

/// The complete-case mask of a set of columns over `n_rows` rows: bit `i` is
/// set iff row `i` is non-null in every column.
///
/// # Panics
/// Panics if any column's length differs from `n_rows`.
pub fn complete_case_mask(columns: &[&EncodedColumn], n_rows: usize) -> Bitmap {
    let mut mask = Bitmap::new_all_set(n_rows);
    for c in columns {
        mask.intersect_with(c.validity());
    }
    mask
}

/// Number of cells of the dense cross product, or `None` when it exceeds
/// `threshold` (or overflows `usize`). Columns with cardinality 0 (entirely
/// missing) contribute a radix of 1 so the product stays well-defined.
pub fn dense_cell_count(columns: &[&EncodedColumn], threshold: usize) -> Option<usize> {
    let mut cells: usize = 1;
    for c in columns {
        cells = cells.checked_mul(c.cardinality().max(1))?;
        if cells > threshold {
            return None;
        }
    }
    Some(cells)
}

/// Joint counts in either storage layout.
#[derive(Debug, Clone)]
pub enum JointCounts {
    /// Flat mixed-radix counts; `radices[i]` is the cardinality of dimension
    /// `i` and `counts.len()` is the product of all radices.
    Dense {
        /// Weighted count per cell of the cross product.
        counts: Vec<f64>,
        /// Per-dimension radix (column cardinality, at least 1).
        radices: Vec<usize>,
    },
    /// Hash-map counts keyed by the joint code vector (fixed-state hasher,
    /// deterministic iteration order).
    Sparse {
        /// Weighted count per observed joint key.
        counts: SparseCounts,
    },
}

/// What the kernel accumulated for one set of columns.
#[derive(Debug, Clone)]
pub struct Accumulated {
    /// The joint counts.
    pub counts: JointCounts,
    /// Total weight over all cells.
    pub total: f64,
    /// Number of rows that participated (complete cases with positive
    /// weight).
    pub complete_cases: usize,
}

/// Accumulates the weighted joint counts of `columns`, choosing the dense
/// layout when the cross product has at most `dense_cells` cells.
///
/// Rows with a missing value in any column are dropped (complete-case
/// analysis); rows with zero weight are dropped from the counts and the
/// complete-case tally.
///
/// # Panics
/// Panics if the columns (or the weight vector) have inconsistent lengths,
/// or if any weight is negative or non-finite (NaN / infinite weights would
/// silently corrupt every downstream entropy).
pub fn accumulate(
    columns: &[&EncodedColumn],
    weights: Option<&[f64]>,
    dense_cells: usize,
) -> Accumulated {
    let n = columns.first().map(|c| c.len()).unwrap_or(0);
    for c in columns {
        assert_eq!(c.len(), n, "all columns must have equal length");
    }
    if let Some(w) = weights {
        assert_eq!(w.len(), n, "weights must have one entry per row");
        for (i, &wi) in w.iter().enumerate() {
            assert!(
                wi.is_finite() && wi >= 0.0,
                "invalid IPW weight {wi} at row {i}: weights must be finite and non-negative"
            );
        }
    }
    let mask = complete_case_mask(columns, n);
    let mut total = 0.0;
    let mut complete_cases = 0usize;
    let counts = match dense_cell_count(columns, dense_cells) {
        Some(cells) => {
            let mut counts = vec![0.0f64; cells];
            let radices: Vec<usize> = columns.iter().map(|c| c.cardinality().max(1)).collect();
            for row in mask.iter_set() {
                let w = weights.map(|w| w[row]).unwrap_or(1.0);
                if w == 0.0 {
                    continue;
                }
                let mut idx = 0usize;
                let mut mult = 1usize;
                for (c, &radix) in columns.iter().zip(&radices) {
                    idx += c.codes()[row] as usize * mult;
                    mult *= radix;
                }
                counts[idx] += w;
                total += w;
                complete_cases += 1;
            }
            JointCounts::Dense { counts, radices }
        }
        None => {
            let mut counts = SparseCounts::default();
            for row in mask.iter_set() {
                let w = weights.map(|w| w[row]).unwrap_or(1.0);
                if w == 0.0 {
                    continue;
                }
                let key: Vec<u32> = columns.iter().map(|c| c.codes()[row]).collect();
                *counts.entry(key).or_insert(0.0) += w;
                total += w;
                complete_cases += 1;
            }
            JointCounts::Sparse { counts }
        }
    };
    Accumulated {
        counts,
        total,
        complete_cases,
    }
}

impl JointCounts {
    /// Number of observed (non-zero) cells.
    pub fn n_cells(&self) -> usize {
        match self {
            JointCounts::Dense { counts, .. } => counts.iter().filter(|&&c| c > 0.0).count(),
            JointCounts::Sparse { counts } => counts.len(),
        }
    }

    /// Plug-in Shannon entropy (base 2) of the counts normalised by `total`.
    /// Returns 0 for an empty table.
    pub fn entropy(&self, total: f64) -> f64 {
        if total <= 0.0 {
            return 0.0;
        }
        let mut h = 0.0;
        match self {
            JointCounts::Dense { counts, .. } => {
                for &count in counts {
                    if count > 0.0 {
                        let p = count / total;
                        h -= p * p.log2();
                    }
                }
            }
            JointCounts::Sparse { counts } => {
                for &count in counts.values() {
                    if count > 0.0 {
                        let p = count / total;
                        h -= p * p.log2();
                    }
                }
            }
        }
        // Clamp tiny negative values arising from floating point error.
        h.max(0.0)
    }

    /// The count of one joint key (0 when unobserved or out of range).
    pub fn get(&self, key: &[u32]) -> f64 {
        match self {
            JointCounts::Dense { counts, radices } => {
                if key.len() != radices.len() {
                    return 0.0;
                }
                let mut idx = 0usize;
                let mut mult = 1usize;
                for (&code, &radix) in key.iter().zip(radices) {
                    if code as usize >= radix {
                        return 0.0;
                    }
                    idx += code as usize * mult;
                    mult *= radix;
                }
                counts[idx]
            }
            JointCounts::Sparse { counts } => counts.get(key).copied().unwrap_or(0.0),
        }
    }

    /// Folds the counts onto a subset of the dimensions (by position). The
    /// result keeps the storage layout of the source.
    pub fn marginalize(&self, dims: &[usize]) -> JointCounts {
        match self {
            JointCounts::Dense { counts, radices } => {
                // Stride of each source dimension in the flat index.
                let mut strides = Vec::with_capacity(radices.len());
                let mut mult = 1usize;
                for &r in radices {
                    strides.push(mult);
                    mult *= r;
                }
                let out_radices: Vec<usize> = dims.iter().map(|&d| radices[d]).collect();
                let out_cells: usize = out_radices.iter().product::<usize>().max(1);
                let mut out = vec![0.0f64; out_cells];
                for (idx, &count) in counts.iter().enumerate() {
                    if count == 0.0 {
                        continue;
                    }
                    let mut oidx = 0usize;
                    let mut omult = 1usize;
                    for (&d, &out_radix) in dims.iter().zip(&out_radices) {
                        let code = (idx / strides[d]) % radices[d];
                        oidx += code * omult;
                        omult *= out_radix;
                    }
                    out[oidx] += count;
                }
                JointCounts::Dense {
                    counts: out,
                    radices: out_radices,
                }
            }
            JointCounts::Sparse { counts } => {
                let mut out = SparseCounts::default();
                for (key, &count) in counts {
                    let sub: Vec<u32> = dims.iter().map(|&d| key[d]).collect();
                    *out.entry(sub).or_insert(0.0) += count;
                }
                JointCounts::Sparse { counts: out }
            }
        }
    }

    /// Iterates `(joint key, weighted count)` pairs of the observed cells
    /// (keys are materialised; dense cells with zero count are skipped).
    pub fn iter_keyed(&self) -> Box<dyn Iterator<Item = (Vec<u32>, f64)> + '_> {
        match self {
            JointCounts::Dense { counts, radices } => {
                Box::new(counts.iter().enumerate().filter_map(move |(idx, &count)| {
                    if count <= 0.0 {
                        return None;
                    }
                    let mut key = Vec::with_capacity(radices.len());
                    let mut rest = idx;
                    for &r in radices {
                        key.push((rest % r) as u32);
                        rest /= r;
                    }
                    Some((key, count))
                }))
            }
            JointCounts::Sparse { counts } => Box::new(counts.iter().map(|(k, &v)| (k.clone(), v))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::Column;

    fn enc(vals: &[Option<&str>]) -> EncodedColumn {
        Column::from_str_values("c", vals.to_vec()).encode()
    }

    #[test]
    fn mask_is_intersection_of_validities() {
        let x = enc(&[Some("a"), None, Some("b"), Some("a")]);
        let y = enc(&[Some("0"), Some("1"), None, Some("0")]);
        let mask = complete_case_mask(&[&x, &y], 4);
        let rows: Vec<usize> = mask.iter_set().collect();
        assert_eq!(rows, vec![0, 3]);
    }

    #[test]
    fn cell_count_respects_threshold_and_overflow() {
        let x = enc(&[Some("a"), Some("b"), Some("c")]);
        let y = enc(&[Some("0"), Some("1"), Some("0")]);
        assert_eq!(dense_cell_count(&[&x, &y], 100), Some(6));
        assert_eq!(dense_cell_count(&[&x, &y], 5), None);
        assert_eq!(dense_cell_count(&[], 1), Some(1));
        // all-missing column contributes radix 1
        let empty = enc(&[None, None, None]);
        assert_eq!(dense_cell_count(&[&x, &empty], 100), Some(3));
    }

    #[test]
    fn dense_and_sparse_accumulate_identically() {
        let x = enc(&[Some("a"), Some("a"), Some("b"), None, Some("b")]);
        let y = enc(&[Some("0"), Some("1"), Some("0"), Some("1"), None]);
        let dense = accumulate(&[&x, &y], None, DEFAULT_DENSE_CELLS);
        let sparse = accumulate(&[&x, &y], None, 0);
        assert!(matches!(dense.counts, JointCounts::Dense { .. }));
        assert!(matches!(sparse.counts, JointCounts::Sparse { .. }));
        assert_eq!(dense.total, sparse.total);
        assert_eq!(dense.complete_cases, sparse.complete_cases);
        assert_eq!(dense.counts.n_cells(), sparse.counts.n_cells());
        let mut d: Vec<(Vec<u32>, f64)> = dense.counts.iter_keyed().collect();
        let mut s: Vec<(Vec<u32>, f64)> = sparse.counts.iter_keyed().collect();
        d.sort_by(|a, b| a.0.cmp(&b.0));
        s.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(
            d.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>(),
            s.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>()
        );
        for ((_, dc), (_, sc)) in d.iter().zip(&s) {
            assert!((dc - sc).abs() < 1e-12);
        }
        assert!(
            (dense.counts.entropy(dense.total) - sparse.counts.entropy(sparse.total)).abs() < 1e-12
        );
    }

    #[test]
    fn marginalize_matches_between_layouts() {
        let x = enc(&[Some("a"), Some("a"), Some("b"), Some("b"), Some("a")]);
        let y = enc(&[Some("0"), Some("1"), Some("0"), Some("1"), Some("1")]);
        let dense = accumulate(&[&x, &y], None, DEFAULT_DENSE_CELLS);
        let sparse = accumulate(&[&x, &y], None, 0);
        for dims in [vec![0], vec![1], vec![1, 0], vec![0, 1]] {
            let dm = dense.counts.marginalize(&dims);
            let sm = sparse.counts.marginalize(&dims);
            let mut d: Vec<(Vec<u32>, f64)> = dm.iter_keyed().collect();
            let mut s: Vec<(Vec<u32>, f64)> = sm.iter_keyed().collect();
            d.sort_by(|a, b| a.0.cmp(&b.0));
            s.sort_by(|a, b| a.0.cmp(&b.0));
            assert_eq!(d.len(), s.len(), "dims {dims:?}");
            for ((dk, dc), (sk, sc)) in d.iter().zip(&s) {
                assert_eq!(dk, sk);
                assert!((dc - sc).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn get_handles_out_of_range_keys() {
        let x = enc(&[Some("a"), Some("b")]);
        let acc = accumulate(&[&x], None, DEFAULT_DENSE_CELLS);
        assert_eq!(acc.counts.get(&[0]), 1.0);
        assert_eq!(acc.counts.get(&[7]), 0.0);
        assert_eq!(acc.counts.get(&[0, 0]), 0.0);
    }

    #[test]
    fn sparse_accumulation_is_deterministic() {
        // Two independent sparse builds over the same rows must produce the
        // same iteration order (fixed-state hasher) and therefore bitwise
        // identical entropies — this is the regression guard for the
        // Brute-Force tie-break flakiness.
        let cells: Vec<Option<&str>> = (0..200)
            .map(|i| {
                if i % 13 == 0 {
                    None
                } else {
                    Some(["a", "b", "c", "d", "e", "f", "g"][(i * 31) % 7])
                }
            })
            .collect();
        let x = enc(&cells);
        let y = enc(&cells.iter().rev().copied().collect::<Vec<_>>());
        let first = accumulate(&[&x, &y], None, 0);
        let second = accumulate(&[&x, &y], None, 0);
        let a: Vec<(Vec<u32>, f64)> = first.counts.iter_keyed().collect();
        let b: Vec<(Vec<u32>, f64)> = second.counts.iter_keyed().collect();
        assert_eq!(a, b, "iteration order must match between builds");
        assert_eq!(
            first.counts.entropy(first.total).to_bits(),
            second.counts.entropy(second.total).to_bits()
        );
    }

    #[test]
    fn fx_hasher_is_seedless_and_stable() {
        use std::hash::BuildHasher;
        let key = vec![3u32, 1, 4, 1, 5];
        let h1 = FixedState::default().hash_one(&key);
        let h2 = FixedState::default().hash_one(&key);
        assert_eq!(h1, h2, "two fresh states must hash identically");
    }

    #[test]
    #[should_panic(expected = "invalid IPW weight")]
    fn nan_weight_is_rejected() {
        let x = enc(&[Some("a"), Some("b")]);
        accumulate(&[&x], Some(&[1.0, f64::NAN]), DEFAULT_DENSE_CELLS);
    }

    #[test]
    #[should_panic(expected = "invalid IPW weight")]
    fn negative_weight_is_rejected() {
        let x = enc(&[Some("a"), Some("b")]);
        accumulate(&[&x], Some(&[1.0, -0.5]), DEFAULT_DENSE_CELLS);
    }
}
