//! The columnar counting kernel behind every estimator in this crate.
//!
//! A joint count table over encoded columns can be stored two ways:
//!
//! * **Dense**: when the cross-product cardinality of the involved columns is
//!   at most [`DEFAULT_DENSE_CELLS`], counts live in a flat `Vec<f64>`
//!   indexed by mixed-radix packing of the per-column codes
//!   (`idx = c_0 + r_0·(c_1 + r_1·(c_2 + …))`, radix `r_i` = cardinality of
//!   column `i`). Accumulation is then one multiply-add per column per
//!   complete row — no hashing, no per-row key allocation — and marginals
//!   are dense folds.
//! * **Sparse**: above the threshold the kernel falls back to the hash-map
//!   representation (`Vec<u32>` joint key → weight), which handles
//!   pathological cardinalities without allocating the cross product.
//!
//! The complete-case mask (rows non-null in *every* involved column) is fused
//! into one word-wise bitmap `AND` over the columns' validity bitmaps instead
//! of a per-row `continue` chain.
//!
//! The sparse map uses a **fixed-state hasher** ([`FixedState`]), not the
//! standard library's per-process-randomised `RandomState`: entropy and
//! marginalisation fold the cells in map iteration order, and with a random
//! seed that order — and therefore the floating-point summation order —
//! changed from run to run, injecting ~1e-15 noise into CMI values that
//! flipped exactly-tied subset choices in the Brute-Force/MESA⁻ baselines.
//! With a fixed hasher the iteration order is a pure function of the
//! insertion sequence (row order), so every fold is bit-stable across runs.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use tabular::{Access, Bitmap, ColumnView, EncodedColumn, PackedInts, Run, RunIter, TabularError};

/// Rows folded between cooperative cancellation checkpoints in the per-row
/// accumulation loops (the segment/block folds checkpoint at their natural
/// coarser boundaries instead). Coarse enough that the thread-local read is
/// invisible next to the fold work, fine enough that a deadline lands
/// within a fraction of a millisecond of kernel time.
const CHECKPOINT_ROWS: usize = 4096;

/// A deterministic FxHash-style hasher: multiply-xor folding with fixed
/// constants and no per-process seed. Quality is more than sufficient for
/// `Vec<u32>` joint keys, and determinism is the point — see the module docs.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    /// 2^64 / φ, the multiplicative constant used by FxHash.
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn fold(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.fold(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.fold(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.fold(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.fold(i as u64);
    }
}

/// The deterministic `BuildHasher` behind every sparse joint-count map.
pub type FixedState = BuildHasherDefault<FxHasher>;

/// The sparse joint-count map: joint code vector → accumulated weight, with
/// run-to-run deterministic iteration order.
pub type SparseCounts = HashMap<Vec<u32>, f64, FixedState>;

/// Hard maximum number of dense cells (8 MiB of `f64` counts). Cross
/// products larger than this fall back to the sparse hash path.
pub const DEFAULT_DENSE_CELLS: usize = 1 << 20;

/// Dense head-room per participating row in the dense/sparse crossover.
///
/// A dense table pays to allocate, zero, and (for every entropy or marginal)
/// scan *every* cell of the cross product, whether observed or not, while the
/// sparse map only pays per observed cell — but each observed cell costs a
/// hash, a probe, and a `Vec<u32>` key instead of one multiply-add. Since at
/// most `rows` cells can be observed, a cross product more than a small
/// multiple of `rows` is mostly zeros and the dense scan is wasted work; up
/// to that multiple the dense path's branch-free accumulation wins. Eight
/// cells of slack per row keeps the dense path through moderately sparse
/// tables (e.g. a 50×50 product over 400 rows) where hashing would dominate.
pub const DENSE_CELLS_PER_ROW: usize = 8;

/// Additive floor of the dense/sparse crossover: tables this small are always
/// cheaper dense, regardless of how few rows feed them — 1024 cells is one
/// 8 KiB allocation, below any measurable hashing break-even.
pub const DENSE_CELLS_FLOOR: usize = 1024;

/// The row-aware dense threshold used by default builds:
/// `min(DEFAULT_DENSE_CELLS, DENSE_CELLS_PER_ROW · n_rows + DENSE_CELLS_FLOOR)`.
///
/// See [`DENSE_CELLS_PER_ROW`] and [`DENSE_CELLS_FLOOR`] for the crossover
/// rationale and [`DEFAULT_DENSE_CELLS`] for the hard cap. The same threshold
/// governs every accumulation path — the dense/sparse row loops and the
/// run-aware sealed-column folds of [`accumulate_views`] — so layout choice
/// and storage state are independent decisions.
pub fn adaptive_dense_cells(n_rows: usize) -> usize {
    n_rows
        .saturating_mul(DENSE_CELLS_PER_ROW)
        .saturating_add(DENSE_CELLS_FLOOR)
        .min(DEFAULT_DENSE_CELLS)
}

/// The complete-case mask of a set of columns over `n_rows` rows: bit `i` is
/// set iff row `i` is non-null in every column.
///
/// # Panics
/// Panics if any column's length differs from `n_rows`.
pub fn complete_case_mask(columns: &[&EncodedColumn], n_rows: usize) -> Bitmap {
    let mut mask = Bitmap::new_all_set(n_rows);
    for c in columns {
        mask.intersect_with(c.validity());
    }
    mask
}

/// Number of cells of the dense cross product, or `None` when it exceeds
/// `threshold` (or overflows `usize`). Columns with cardinality 0 (entirely
/// missing) contribute a radix of 1 so the product stays well-defined.
pub fn dense_cell_count(columns: &[&EncodedColumn], threshold: usize) -> Option<usize> {
    let mut cells: usize = 1;
    for c in columns {
        cells = cells.checked_mul(c.cardinality().max(1))?;
        if cells > threshold {
            return None;
        }
    }
    Some(cells)
}

/// Joint counts in either storage layout.
#[derive(Debug, Clone)]
pub enum JointCounts {
    /// Flat mixed-radix counts; `radices[i]` is the cardinality of dimension
    /// `i` and `counts.len()` is the product of all radices.
    Dense {
        /// Weighted count per cell of the cross product.
        counts: Vec<f64>,
        /// Per-dimension radix (column cardinality, at least 1).
        radices: Vec<usize>,
    },
    /// Hash-map counts keyed by the joint code vector (fixed-state hasher,
    /// deterministic iteration order).
    Sparse {
        /// Weighted count per observed joint key.
        counts: SparseCounts,
    },
}

/// What the kernel accumulated for one set of columns.
#[derive(Debug, Clone)]
pub struct Accumulated {
    /// The joint counts.
    pub counts: JointCounts,
    /// Total weight over all cells.
    pub total: f64,
    /// Number of rows that participated (complete cases with positive
    /// weight).
    pub complete_cases: usize,
}

/// Accumulates the weighted joint counts of `columns`, choosing the dense
/// layout when the cross product has at most `dense_cells` cells.
///
/// Rows with a missing value in any column are dropped (complete-case
/// analysis); rows with zero weight are dropped from the counts and the
/// complete-case tally.
///
/// # Panics
/// Panics if the columns (or the weight vector) have inconsistent lengths,
/// or if any weight is negative or non-finite (NaN / infinite weights would
/// silently corrupt every downstream entropy). Serving paths that must not
/// unwind use [`try_accumulate`] instead.
pub fn accumulate(
    columns: &[&EncodedColumn],
    weights: Option<&[f64]>,
    dense_cells: usize,
) -> Accumulated {
    // mesa-lint: allow(serving-panic-free) -- documented `# Panics` convenience wrapper; serving paths call try_accumulate
    try_accumulate(columns, weights, dense_cells).unwrap_or_else(|e| panic!("{e}"))
}

/// [`accumulate`] with the length/weight contract surfaced as a structured
/// [`TabularError::InvalidArgument`] instead of a panic — the serving-path
/// entry point.
pub fn try_accumulate(
    columns: &[&EncodedColumn],
    weights: Option<&[f64]>,
    dense_cells: usize,
) -> Result<Accumulated, TabularError> {
    let n = columns.first().map(|c| c.len()).unwrap_or(0);
    validate_lengths(n, columns.iter().map(|c| c.len()))?;
    validate_weights(n, weights)?;
    parallel::fault_point!("infotheory.kernel.accumulate");
    Ok(accumulate_validated(columns, weights, dense_cells, n))
}

/// Returns an error unless every column length equals `n`.
fn validate_lengths(n: usize, lens: impl IntoIterator<Item = usize>) -> Result<(), TabularError> {
    for len in lens {
        if len != n {
            return Err(TabularError::InvalidArgument(format!(
                "all columns must have equal length (expected {n}, got {len})"
            )));
        }
    }
    Ok(())
}

/// Validates the IPW weight contract against `n` rows: one weight per row,
/// every weight finite and non-negative. Shared by the accumulate entry
/// points and by [`EncodedFrame`](crate::EncodedFrame)'s weighted measures
/// so invalid weights surface as structured errors before any fold runs.
pub fn validate_weights(n: usize, weights: Option<&[f64]>) -> Result<(), TabularError> {
    let Some(w) = weights else { return Ok(()) };
    if w.len() != n {
        return Err(TabularError::InvalidArgument(format!(
            "weights must have one entry per row (expected {n}, got {})",
            w.len()
        )));
    }
    for (i, &wi) in w.iter().enumerate() {
        if !(wi.is_finite() && wi >= 0.0) {
            return Err(TabularError::InvalidArgument(format!(
                "invalid IPW weight {wi} at row {i}: weights must be finite and non-negative"
            )));
        }
    }
    Ok(())
}

/// [`accumulate`]'s body, after the input contract has been checked.
fn accumulate_validated(
    columns: &[&EncodedColumn],
    weights: Option<&[f64]>,
    dense_cells: usize,
    n: usize,
) -> Accumulated {
    let mask = complete_case_mask(columns, n);
    let mut total = 0.0;
    let mut complete_cases = 0usize;
    let counts = match dense_cell_count(columns, dense_cells) {
        Some(cells) => {
            let mut counts = vec![0.0f64; cells];
            let radices: Vec<usize> = columns.iter().map(|c| c.cardinality().max(1)).collect();
            let mut ticker = 0usize;
            // mesa-lint: hot-loop -- masked fold over row blocks; polls the cooperative deadline every CHECKPOINT_ROWS rows
            for row in mask.iter_set() {
                ticker += 1;
                if ticker.is_multiple_of(CHECKPOINT_ROWS) {
                    parallel::checkpoint();
                }
                let w = weights.map(|w| w[row]).unwrap_or(1.0);
                if w == 0.0 {
                    continue;
                }
                let mut idx = 0usize;
                let mut mult = 1usize;
                for (c, &radix) in columns.iter().zip(&radices) {
                    idx += c.codes()[row] as usize * mult;
                    mult *= radix;
                }
                counts[idx] += w;
                total += w;
                complete_cases += 1;
            }
            JointCounts::Dense { counts, radices }
        }
        None => {
            let mut counts = SparseCounts::default();
            let mut ticker = 0usize;
            // mesa-lint: hot-loop -- masked fold over row blocks; polls the cooperative deadline every CHECKPOINT_ROWS rows
            for row in mask.iter_set() {
                ticker += 1;
                if ticker.is_multiple_of(CHECKPOINT_ROWS) {
                    parallel::checkpoint();
                }
                let w = weights.map(|w| w[row]).unwrap_or(1.0);
                if w == 0.0 {
                    continue;
                }
                let key: Vec<u32> = columns.iter().map(|c| c.codes()[row]).collect();
                *counts.entry(key).or_insert(0.0) += w;
                total += w;
                complete_cases += 1;
            }
            JointCounts::Sparse { counts }
        }
    };
    Accumulated {
        counts,
        total,
        complete_cases,
    }
}

/// The complete-case mask over columns in either lifecycle state: bit `i` is
/// set iff row `i` is non-null in every column. See [`complete_case_mask`].
///
/// # Panics
/// Panics if any column's length differs from `n_rows`.
pub fn complete_case_mask_views(columns: &[ColumnView<'_>], n_rows: usize) -> Bitmap {
    let mut mask = Bitmap::new_all_set(n_rows);
    for c in columns {
        mask.intersect_with(c.validity());
    }
    mask
}

/// Number of cells of the dense cross product over column views, or `None`
/// when it exceeds `threshold` (or overflows `usize`). See
/// [`dense_cell_count`].
pub fn dense_cell_count_views(columns: &[ColumnView<'_>], threshold: usize) -> Option<usize> {
    let mut cells: usize = 1;
    for c in columns {
        cells = cells.checked_mul(c.cardinality().max(1))?;
        if cells > threshold {
            return None;
        }
    }
    Some(cells)
}

/// Accumulates weighted joint counts over columns in either lifecycle state.
///
/// All-mutable inputs delegate to [`accumulate`] — the per-row dense/sparse
/// loop stays the reference oracle and mutable frames take exactly the code
/// path they always did. Sealed inputs are folded without a full decode:
///
/// * any RLE or delta column present → **run-aligned segment co-iteration**:
///   each segment is the intersection of the participating runs, the run
///   columns' contribution to the joint index is hoisted out of the row
///   loop, per-segment validity comes from the word-level range iterators of
///   the complete-case mask, and an all-run unweighted segment collapses to
///   a single `+= count_set_range(..)`;
/// * otherwise, any bit-packed column present → **64-row blocks** aligned to
///   the mask words: all-null/incomplete words are skipped wholesale and
///   each packed column unpacks one block sequentially into scratch instead
///   of paying the random-access shift per row;
/// * sealed-dense columns read their slices directly in either path.
///
/// Every path visits surviving rows in ascending row order and performs the
/// identical floating-point operations per row as the oracle (unweighted run
/// folds replace `n` additions of `1.0` with one `+= n`, exact for integer
/// counts), so results are **bit-identical** to the dense/sparse reference —
/// an equality the test suite asserts, not approximates.
///
/// # Panics
/// As [`accumulate`]: inconsistent lengths, or negative/non-finite weights.
/// Serving paths that must not unwind use [`try_accumulate_views`].
pub fn accumulate_views(
    columns: &[ColumnView<'_>],
    weights: Option<&[f64]>,
    dense_cells: usize,
) -> Accumulated {
    // mesa-lint: allow(serving-panic-free) -- documented `# Panics` convenience wrapper; serving paths call try_accumulate_views
    try_accumulate_views(columns, weights, dense_cells).unwrap_or_else(|e| panic!("{e}"))
}

/// [`accumulate_views`] with the length/weight contract surfaced as a
/// structured [`TabularError::InvalidArgument`] instead of a panic.
pub fn try_accumulate_views(
    columns: &[ColumnView<'_>],
    weights: Option<&[f64]>,
    dense_cells: usize,
) -> Result<Accumulated, TabularError> {
    let n = columns.first().map(|c| c.len()).unwrap_or(0);
    validate_lengths(n, columns.iter().map(|c| c.len()))?;
    validate_weights(n, weights)?;
    if columns.iter().all(|c| !c.is_sealed()) {
        let plain: Vec<&EncodedColumn> = columns
            .iter()
            .map(|c| match c {
                ColumnView::Plain(p) => *p,
                ColumnView::Sealed(_) => unreachable!("checked all-plain above"),
            })
            .collect();
        parallel::fault_point!("infotheory.kernel.accumulate");
        return Ok(accumulate_validated(&plain, weights, dense_cells, n));
    }
    parallel::fault_point!("infotheory.kernel.accumulate");
    Ok(accumulate_views_validated(columns, weights, dense_cells, n))
}

/// [`accumulate_views`]'s sealed-path body, after contract checks.
fn accumulate_views_validated(
    columns: &[ColumnView<'_>],
    weights: Option<&[f64]>,
    dense_cells: usize,
    n: usize,
) -> Accumulated {
    let mask = complete_case_mask_views(columns, n);
    let cells = dense_cell_count_views(columns, dense_cells);
    let any_runs = columns
        .iter()
        .any(|c| matches!(c.access(), Access::Runs(_)));
    let (counts, total, complete_cases) = if any_runs {
        fold_segments(columns, weights, &mask, cells, n)
    } else {
        fold_blocks(columns, weights, &mask, cells, n)
    };
    Accumulated {
        counts,
        total,
        complete_cases,
    }
}

/// Mixed-radix multipliers for the dense layout (`mults[i]` = product of the
/// radices before dimension `i`), or zeros when the sparse layout is in use.
fn dense_mults(radices: &[usize], dense: bool) -> Vec<usize> {
    if !dense {
        return vec![0; radices.len()];
    }
    let mut mults = Vec::with_capacity(radices.len());
    let mut acc = 1usize;
    for &r in radices {
        mults.push(acc);
        acc *= r;
    }
    mults
}

/// A column read run-at-a-time in the segment fold.
struct RunCol<'a> {
    iter: RunIter<'a>,
    cur: Run,
    dim: usize,
    mult: usize,
}

/// A column read row-at-a-time in the segment fold.
struct RowCol<'a> {
    codes: &'a [u32],
    dim: usize,
    mult: usize,
}

/// Run-aligned segment co-iteration over at least one RLE/delta column.
fn fold_segments(
    columns: &[ColumnView<'_>],
    weights: Option<&[f64]>,
    mask: &Bitmap,
    cells: Option<usize>,
    n: usize,
) -> (JointCounts, f64, usize) {
    let radices: Vec<usize> = columns.iter().map(|c| c.cardinality().max(1)).collect();
    let mults = dense_mults(&radices, cells.is_some());
    // Bit-packed columns in the mixed run×packed case are decoded once up
    // front; the co-iteration then reads them as plain slices.
    let decoded: Vec<Option<Vec<u32>>> = columns
        .iter()
        .map(|c| match c.access() {
            Access::Packed(p) => {
                let mut out = vec![0u32; p.len()];
                p.unpack_range(0, &mut out);
                Some(out)
            }
            _ => None,
        })
        .collect();
    let mut run_cols: Vec<RunCol<'_>> = Vec::new();
    let mut row_cols: Vec<RowCol<'_>> = Vec::new();
    for (dim, c) in columns.iter().enumerate() {
        let mult = mults[dim];
        match c.access() {
            Access::Runs(mut iter) => {
                let cur = iter.next().unwrap_or(Run {
                    value: 0,
                    start: 0,
                    end: n,
                });
                run_cols.push(RunCol {
                    iter,
                    cur,
                    dim,
                    mult,
                });
            }
            Access::Codes(codes) => row_cols.push(RowCol { codes, dim, mult }),
            Access::Packed(_) => row_cols.push(RowCol {
                codes: decoded[dim]
                    .as_deref()
                    // mesa-lint: allow(serving-panic-free) -- Some for every Packed column by the decode loop above; silently skipping would corrupt joint counts
                    .expect("packed columns decoded above"),
                dim,
                mult,
            }),
        }
    }
    let mut total = 0.0f64;
    let mut complete_cases = 0usize;
    let counts = match cells {
        Some(cells) => {
            let mut counts = vec![0.0f64; cells];
            let mut pos = 0usize;
            // mesa-lint: hot-loop -- run-aligned segment walk; polls the cooperative deadline once per segment
            while pos < n {
                parallel::checkpoint();
                let mut seg_end = n;
                let mut base = 0usize;
                for rc in &run_cols {
                    seg_end = seg_end.min(rc.cur.end);
                    base += rc.cur.value as usize * rc.mult;
                }
                assert!(seg_end > pos, "run iterators must partition the column");
                if row_cols.is_empty() {
                    if let Some(w) = weights {
                        for row in mask.iter_set_range(pos, seg_end) {
                            let wi = w[row];
                            if wi == 0.0 {
                                continue;
                            }
                            counts[base] += wi;
                            total += wi;
                            complete_cases += 1;
                        }
                    } else {
                        // The all-run payoff: one word-level popcount folds
                        // the whole segment. Exact-integer adds keep the
                        // result bit-identical to per-row `+= 1.0`.
                        let m = mask.count_set_range(pos, seg_end);
                        if m > 0 {
                            counts[base] += m as f64;
                            total += m as f64;
                            complete_cases += m;
                        }
                    }
                } else {
                    for row in mask.iter_set_range(pos, seg_end) {
                        let w = weights.map(|w| w[row]).unwrap_or(1.0);
                        if w == 0.0 {
                            continue;
                        }
                        let mut idx = base;
                        for rc in &row_cols {
                            idx += rc.codes[row] as usize * rc.mult;
                        }
                        counts[idx] += w;
                        total += w;
                        complete_cases += 1;
                    }
                }
                pos = seg_end;
                for rc in &mut run_cols {
                    if rc.cur.end == pos {
                        if let Some(next) = rc.iter.next() {
                            rc.cur = next;
                        }
                    }
                }
            }
            JointCounts::Dense { counts, radices }
        }
        None => {
            let mut counts = SparseCounts::default();
            let mut key: Vec<u32> = vec![0; columns.len()];
            let mut pos = 0usize;
            // mesa-lint: hot-loop -- run-aligned segment walk; polls the cooperative deadline once per segment
            while pos < n {
                parallel::checkpoint();
                let mut seg_end = n;
                for rc in &run_cols {
                    seg_end = seg_end.min(rc.cur.end);
                }
                assert!(seg_end > pos, "run iterators must partition the column");
                for rc in &run_cols {
                    key[rc.dim] = rc.cur.value;
                }
                if row_cols.is_empty() && weights.is_none() {
                    let m = mask.count_set_range(pos, seg_end);
                    if m > 0 {
                        *counts.entry(key.clone()).or_insert(0.0) += m as f64;
                        total += m as f64;
                        complete_cases += m;
                    }
                } else {
                    for row in mask.iter_set_range(pos, seg_end) {
                        let w = weights.map(|w| w[row]).unwrap_or(1.0);
                        if w == 0.0 {
                            continue;
                        }
                        for rc in &row_cols {
                            key[rc.dim] = rc.codes[row];
                        }
                        *counts.entry(key.clone()).or_insert(0.0) += w;
                        total += w;
                        complete_cases += 1;
                    }
                }
                pos = seg_end;
                for rc in &mut run_cols {
                    if rc.cur.end == pos {
                        if let Some(next) = rc.iter.next() {
                            rc.cur = next;
                        }
                    }
                }
            }
            JointCounts::Sparse { counts }
        }
    };
    (counts, total, complete_cases)
}

/// A column as read in the 64-row block fold.
enum BlockCol<'a> {
    /// Direct slice access (mutable or sealed-dense columns).
    Slice {
        codes: &'a [u32],
        dim: usize,
        mult: usize,
    },
    /// Bit-packed access through a per-block scratch decode.
    Packed {
        ints: &'a PackedInts,
        scratch: usize,
        dim: usize,
        mult: usize,
    },
}

/// 64-row block fold over bit-packed and dense columns (no run columns).
fn fold_blocks(
    columns: &[ColumnView<'_>],
    weights: Option<&[f64]>,
    mask: &Bitmap,
    cells: Option<usize>,
    n: usize,
) -> (JointCounts, f64, usize) {
    let radices: Vec<usize> = columns.iter().map(|c| c.cardinality().max(1)).collect();
    let mults = dense_mults(&radices, cells.is_some());
    let mut readers: Vec<BlockCol<'_>> = Vec::new();
    let mut n_packed = 0usize;
    for (dim, c) in columns.iter().enumerate() {
        let mult = mults[dim];
        match c.access() {
            Access::Codes(codes) => readers.push(BlockCol::Slice { codes, dim, mult }),
            Access::Packed(ints) => {
                readers.push(BlockCol::Packed {
                    ints,
                    scratch: n_packed,
                    dim,
                    mult,
                });
                n_packed += 1;
            }
            Access::Runs(_) => unreachable!("run columns take the segment path"),
        }
    }
    let mut scratch: Vec<[u32; 64]> = vec![[0u32; 64]; n_packed];
    let mut total = 0.0f64;
    let mut complete_cases = 0usize;
    let counts = match cells {
        Some(cells) => {
            let mut counts = vec![0.0f64; cells];
            // Joint index of every row in the current block, accumulated
            // column-major: one tight multiply-add pass per column keeps the
            // reader dispatch out of the per-row loop and lets the compiler
            // vectorise the unpack + mixed-radix packing.
            let mut idxs = [0usize; 64];
            // mesa-lint: hot-loop -- word-at-a-time fold over the mask bitmap; polls the cooperative deadline every 64 words
            for (wi, &word) in mask.words().iter().enumerate() {
                if wi % 64 == 0 {
                    parallel::checkpoint();
                }
                if word == 0 {
                    continue;
                }
                let start = wi << 6;
                let block_len = (n - start).min(64);
                idxs[..block_len].fill(0);
                for r in &readers {
                    match r {
                        BlockCol::Slice { codes, mult, .. } => {
                            let codes = &codes[start..start + block_len];
                            for (acc, &c) in idxs[..block_len].iter_mut().zip(codes) {
                                *acc += c as usize * mult;
                            }
                        }
                        BlockCol::Packed { ints, mult, .. } => {
                            ints.accumulate_range(start, *mult, &mut idxs[..block_len]);
                        }
                    }
                }
                if word == u64::MAX && block_len == 64 && weights.is_none() {
                    // Fully observed block, unit weights: no bit scan needed.
                    for &idx in &idxs {
                        counts[idx] += 1.0;
                    }
                    total += 64.0;
                    complete_cases += 64;
                    continue;
                }
                let mut bits = word;
                while bits != 0 {
                    let bit = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let w = weights.map(|w| w[start + bit]).unwrap_or(1.0);
                    if w == 0.0 {
                        continue;
                    }
                    counts[idxs[bit]] += w;
                    total += w;
                    complete_cases += 1;
                }
            }
            JointCounts::Dense { counts, radices }
        }
        None => {
            let mut counts = SparseCounts::default();
            let mut key: Vec<u32> = vec![0; columns.len()];
            // mesa-lint: hot-loop -- word-at-a-time fold over the mask bitmap; polls the cooperative deadline every 64 words
            for (wi, &word) in mask.words().iter().enumerate() {
                if wi % 64 == 0 {
                    parallel::checkpoint();
                }
                if word == 0 {
                    continue;
                }
                let start = wi << 6;
                let block_len = (n - start).min(64);
                for r in &readers {
                    if let BlockCol::Packed {
                        ints, scratch: k, ..
                    } = r
                    {
                        ints.unpack_range(start, &mut scratch[*k][..block_len]);
                    }
                }
                let mut bits = word;
                while bits != 0 {
                    let bit = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let row = start + bit;
                    let w = weights.map(|w| w[row]).unwrap_or(1.0);
                    if w == 0.0 {
                        continue;
                    }
                    for r in &readers {
                        match r {
                            BlockCol::Slice { codes, dim, .. } => key[*dim] = codes[row],
                            BlockCol::Packed {
                                scratch: k, dim, ..
                            } => key[*dim] = scratch[*k][bit],
                        }
                    }
                    *counts.entry(key.clone()).or_insert(0.0) += w;
                    total += w;
                    complete_cases += 1;
                }
            }
            JointCounts::Sparse { counts }
        }
    };
    (counts, total, complete_cases)
}

impl JointCounts {
    /// Number of observed (non-zero) cells.
    pub fn n_cells(&self) -> usize {
        match self {
            JointCounts::Dense { counts, .. } => counts.iter().filter(|&&c| c > 0.0).count(),
            JointCounts::Sparse { counts } => counts.len(),
        }
    }

    /// Plug-in Shannon entropy (base 2) of the counts normalised by `total`.
    /// Returns 0 for an empty table.
    pub fn entropy(&self, total: f64) -> f64 {
        if total <= 0.0 {
            return 0.0;
        }
        let mut h = 0.0;
        match self {
            JointCounts::Dense { counts, .. } => {
                for &count in counts {
                    if count > 0.0 {
                        let p = count / total;
                        h -= p * p.log2();
                    }
                }
            }
            JointCounts::Sparse { counts } => {
                for &count in counts.values() {
                    if count > 0.0 {
                        let p = count / total;
                        h -= p * p.log2();
                    }
                }
            }
        }
        // Clamp tiny negative values arising from floating point error.
        h.max(0.0)
    }

    /// The count of one joint key (0 when unobserved or out of range).
    pub fn get(&self, key: &[u32]) -> f64 {
        match self {
            JointCounts::Dense { counts, radices } => {
                if key.len() != radices.len() {
                    return 0.0;
                }
                let mut idx = 0usize;
                let mut mult = 1usize;
                for (&code, &radix) in key.iter().zip(radices) {
                    if code as usize >= radix {
                        return 0.0;
                    }
                    idx += code as usize * mult;
                    mult *= radix;
                }
                counts[idx]
            }
            JointCounts::Sparse { counts } => counts.get(key).copied().unwrap_or(0.0),
        }
    }

    /// Folds the counts onto a subset of the dimensions (by position). The
    /// result keeps the storage layout of the source.
    pub fn marginalize(&self, dims: &[usize]) -> JointCounts {
        match self {
            JointCounts::Dense { counts, radices } => {
                // Stride of each source dimension in the flat index.
                let mut strides = Vec::with_capacity(radices.len());
                let mut mult = 1usize;
                for &r in radices {
                    strides.push(mult);
                    mult *= r;
                }
                let out_radices: Vec<usize> = dims.iter().map(|&d| radices[d]).collect();
                let out_cells: usize = out_radices.iter().product::<usize>().max(1);
                let mut out = vec![0.0f64; out_cells];
                for (idx, &count) in counts.iter().enumerate() {
                    if count == 0.0 {
                        continue;
                    }
                    let mut oidx = 0usize;
                    let mut omult = 1usize;
                    for (&d, &out_radix) in dims.iter().zip(&out_radices) {
                        let code = (idx / strides[d]) % radices[d];
                        oidx += code * omult;
                        omult *= out_radix;
                    }
                    out[oidx] += count;
                }
                JointCounts::Dense {
                    counts: out,
                    radices: out_radices,
                }
            }
            JointCounts::Sparse { counts } => {
                let mut out = SparseCounts::default();
                for (key, &count) in counts {
                    let sub: Vec<u32> = dims.iter().map(|&d| key[d]).collect();
                    *out.entry(sub).or_insert(0.0) += count;
                }
                JointCounts::Sparse { counts: out }
            }
        }
    }

    /// Iterates `(joint key, weighted count)` pairs of the observed cells
    /// (keys are materialised; dense cells with zero count are skipped).
    pub fn iter_keyed(&self) -> Box<dyn Iterator<Item = (Vec<u32>, f64)> + '_> {
        match self {
            JointCounts::Dense { counts, radices } => {
                Box::new(counts.iter().enumerate().filter_map(move |(idx, &count)| {
                    if count <= 0.0 {
                        return None;
                    }
                    let mut key = Vec::with_capacity(radices.len());
                    let mut rest = idx;
                    for &r in radices {
                        key.push((rest % r) as u32);
                        rest /= r;
                    }
                    Some((key, count))
                }))
            }
            JointCounts::Sparse { counts } => Box::new(counts.iter().map(|(k, &v)| (k.clone(), v))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::Column;

    fn enc(vals: &[Option<&str>]) -> EncodedColumn {
        Column::from_str_values("c", vals.to_vec()).encode()
    }

    #[test]
    fn mask_is_intersection_of_validities() {
        let x = enc(&[Some("a"), None, Some("b"), Some("a")]);
        let y = enc(&[Some("0"), Some("1"), None, Some("0")]);
        let mask = complete_case_mask(&[&x, &y], 4);
        let rows: Vec<usize> = mask.iter_set().collect();
        assert_eq!(rows, vec![0, 3]);
    }

    #[test]
    fn cell_count_respects_threshold_and_overflow() {
        let x = enc(&[Some("a"), Some("b"), Some("c")]);
        let y = enc(&[Some("0"), Some("1"), Some("0")]);
        assert_eq!(dense_cell_count(&[&x, &y], 100), Some(6));
        assert_eq!(dense_cell_count(&[&x, &y], 5), None);
        assert_eq!(dense_cell_count(&[], 1), Some(1));
        // all-missing column contributes radix 1
        let empty = enc(&[None, None, None]);
        assert_eq!(dense_cell_count(&[&x, &empty], 100), Some(3));
    }

    #[test]
    fn dense_and_sparse_accumulate_identically() {
        let x = enc(&[Some("a"), Some("a"), Some("b"), None, Some("b")]);
        let y = enc(&[Some("0"), Some("1"), Some("0"), Some("1"), None]);
        let dense = accumulate(&[&x, &y], None, DEFAULT_DENSE_CELLS);
        let sparse = accumulate(&[&x, &y], None, 0);
        assert!(matches!(dense.counts, JointCounts::Dense { .. }));
        assert!(matches!(sparse.counts, JointCounts::Sparse { .. }));
        assert_eq!(dense.total, sparse.total);
        assert_eq!(dense.complete_cases, sparse.complete_cases);
        assert_eq!(dense.counts.n_cells(), sparse.counts.n_cells());
        let mut d: Vec<(Vec<u32>, f64)> = dense.counts.iter_keyed().collect();
        let mut s: Vec<(Vec<u32>, f64)> = sparse.counts.iter_keyed().collect();
        d.sort_by(|a, b| a.0.cmp(&b.0));
        s.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(
            d.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>(),
            s.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>()
        );
        for ((_, dc), (_, sc)) in d.iter().zip(&s) {
            assert!((dc - sc).abs() < 1e-12);
        }
        assert!(
            (dense.counts.entropy(dense.total) - sparse.counts.entropy(sparse.total)).abs() < 1e-12
        );
    }

    #[test]
    fn marginalize_matches_between_layouts() {
        let x = enc(&[Some("a"), Some("a"), Some("b"), Some("b"), Some("a")]);
        let y = enc(&[Some("0"), Some("1"), Some("0"), Some("1"), Some("1")]);
        let dense = accumulate(&[&x, &y], None, DEFAULT_DENSE_CELLS);
        let sparse = accumulate(&[&x, &y], None, 0);
        for dims in [vec![0], vec![1], vec![1, 0], vec![0, 1]] {
            let dm = dense.counts.marginalize(&dims);
            let sm = sparse.counts.marginalize(&dims);
            let mut d: Vec<(Vec<u32>, f64)> = dm.iter_keyed().collect();
            let mut s: Vec<(Vec<u32>, f64)> = sm.iter_keyed().collect();
            d.sort_by(|a, b| a.0.cmp(&b.0));
            s.sort_by(|a, b| a.0.cmp(&b.0));
            assert_eq!(d.len(), s.len(), "dims {dims:?}");
            for ((dk, dc), (sk, sc)) in d.iter().zip(&s) {
                assert_eq!(dk, sk);
                assert!((dc - sc).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn get_handles_out_of_range_keys() {
        let x = enc(&[Some("a"), Some("b")]);
        let acc = accumulate(&[&x], None, DEFAULT_DENSE_CELLS);
        assert_eq!(acc.counts.get(&[0]), 1.0);
        assert_eq!(acc.counts.get(&[7]), 0.0);
        assert_eq!(acc.counts.get(&[0, 0]), 0.0);
    }

    #[test]
    fn sparse_accumulation_is_deterministic() {
        // Two independent sparse builds over the same rows must produce the
        // same iteration order (fixed-state hasher) and therefore bitwise
        // identical entropies — this is the regression guard for the
        // Brute-Force tie-break flakiness.
        let cells: Vec<Option<&str>> = (0..200)
            .map(|i| {
                if i % 13 == 0 {
                    None
                } else {
                    Some(["a", "b", "c", "d", "e", "f", "g"][(i * 31) % 7])
                }
            })
            .collect();
        let x = enc(&cells);
        let y = enc(&cells.iter().rev().copied().collect::<Vec<_>>());
        let first = accumulate(&[&x, &y], None, 0);
        let second = accumulate(&[&x, &y], None, 0);
        let a: Vec<(Vec<u32>, f64)> = first.counts.iter_keyed().collect();
        let b: Vec<(Vec<u32>, f64)> = second.counts.iter_keyed().collect();
        assert_eq!(a, b, "iteration order must match between builds");
        assert_eq!(
            first.counts.entropy(first.total).to_bits(),
            second.counts.entropy(second.total).to_bits()
        );
    }

    #[test]
    fn fx_hasher_is_seedless_and_stable() {
        use std::hash::BuildHasher;
        let key = vec![3u32, 1, 4, 1, 5];
        let h1 = FixedState::default().hash_one(&key);
        let h2 = FixedState::default().hash_one(&key);
        assert_eq!(h1, h2, "two fresh states must hash identically");
    }

    #[test]
    #[should_panic(expected = "invalid IPW weight")]
    fn nan_weight_is_rejected() {
        let x = enc(&[Some("a"), Some("b")]);
        accumulate(&[&x], Some(&[1.0, f64::NAN]), DEFAULT_DENSE_CELLS);
    }

    #[test]
    #[should_panic(expected = "invalid IPW weight")]
    fn negative_weight_is_rejected() {
        let x = enc(&[Some("a"), Some("b")]);
        accumulate(&[&x], Some(&[1.0, -0.5]), DEFAULT_DENSE_CELLS);
    }

    /// Asserts that sealed-view accumulation is bit-identical to the dense
    /// row-loop oracle on the same columns, in both layouts.
    fn assert_views_match_oracle(cols: &[&EncodedColumn], weights: Option<&[f64]>) {
        let sealed: Vec<_> = cols.iter().map(|c| c.seal()).collect();
        for dense_cells in [DEFAULT_DENSE_CELLS, 0] {
            let oracle = accumulate(cols, weights, dense_cells);
            let views: Vec<ColumnView<'_>> = sealed.iter().map(ColumnView::from).collect();
            let got = accumulate_views(&views, weights, dense_cells);
            assert_eq!(got.total.to_bits(), oracle.total.to_bits());
            assert_eq!(got.complete_cases, oracle.complete_cases);
            let a: Vec<(Vec<u32>, f64)> = got.counts.iter_keyed().collect();
            let b: Vec<(Vec<u32>, f64)> = oracle.counts.iter_keyed().collect();
            assert_eq!(a.len(), b.len());
            for ((ka, va), (kb, vb)) in a.iter().zip(&b) {
                assert_eq!(ka, kb, "cell keys (and sparse order) must match");
                assert_eq!(va.to_bits(), vb.to_bits(), "cell {ka:?}");
            }
            assert_eq!(
                got.counts.entropy(got.total).to_bits(),
                oracle.counts.entropy(oracle.total).to_bits()
            );
        }
    }

    #[test]
    fn sealed_runny_columns_match_oracle() {
        // Long runs with interleaved nulls: the segment path with RLE inputs.
        let x: Vec<Option<&str>> = (0..300)
            .map(|i| {
                if i % 37 == 0 {
                    None
                } else {
                    Some(["a", "b"][i / 100 % 2])
                }
            })
            .collect();
        let y: Vec<Option<&str>> = (0..300)
            .map(|i| {
                if i % 41 == 0 {
                    None
                } else {
                    Some(["p", "q", "r"][i / 30 % 3])
                }
            })
            .collect();
        let (x, y) = (enc(&x), enc(&y));
        assert_views_match_oracle(&[&x, &y], None);
        let w: Vec<f64> = (0..300).map(|i| (i % 7) as f64 * 0.25).collect();
        assert_views_match_oracle(&[&x, &y], Some(&w));
    }

    #[test]
    fn sealed_shuffled_columns_match_oracle() {
        // Shuffled low-cardinality streams seal to bitpacked: the block path.
        let x: Vec<Option<&str>> = (0..500)
            .map(|i| {
                if i % 53 == 0 {
                    None
                } else {
                    Some(["a", "b", "c", "d", "e"][(i * 17) % 5])
                }
            })
            .collect();
        let y: Vec<Option<&str>> = (0..500)
            .map(|i| Some(["0", "1", "2", "3", "4", "5", "6"][(i * 31) % 7]))
            .collect();
        let (x, y) = (enc(&x), enc(&y));
        assert_views_match_oracle(&[&x, &y], None);
        let w: Vec<f64> = (0..500).map(|i| 0.5 + (i % 5) as f64).collect();
        assert_views_match_oracle(&[&x, &y], Some(&w));
    }

    #[test]
    fn mixed_run_and_packed_columns_match_oracle() {
        // One runny column (RLE) and one shuffled column (bitpacked) in the
        // same fold exercises the run×dense mixed segment case.
        let runny: Vec<Option<&str>> = (0..400).map(|i| Some(["u", "v"][i / 80 % 2])).collect();
        let shuffled: Vec<Option<&str>> = (0..400)
            .map(|i| Some(["a", "b", "c", "d", "e", "f"][(i * 13) % 6]))
            .collect();
        let (r, s) = (enc(&runny), enc(&shuffled));
        assert_views_match_oracle(&[&r, &s], None);
        // Mixed states too: sealed runny column alongside a mutable column.
        let oracle = accumulate(&[&r, &s], None, DEFAULT_DENSE_CELLS);
        let sealed_r = r.seal();
        let got = accumulate_views(
            &[ColumnView::from(&sealed_r), ColumnView::from(&s)],
            None,
            DEFAULT_DENSE_CELLS,
        );
        assert_eq!(got.total.to_bits(), oracle.total.to_bits());
        assert_eq!(
            got.counts.entropy(got.total).to_bits(),
            oracle.counts.entropy(oracle.total).to_bits()
        );
    }

    #[test]
    fn all_plain_views_delegate_to_oracle() {
        let x = enc(&[Some("a"), Some("b"), None, Some("a")]);
        let oracle = accumulate(&[&x], None, DEFAULT_DENSE_CELLS);
        let got = accumulate_views(&[ColumnView::from(&x)], None, DEFAULT_DENSE_CELLS);
        let a: Vec<(Vec<u32>, f64)> = got.counts.iter_keyed().collect();
        let b: Vec<(Vec<u32>, f64)> = oracle.counts.iter_keyed().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn sealed_empty_and_all_null_columns() {
        let empty = enc(&[]);
        let sealed = empty.seal();
        let got = accumulate_views(&[ColumnView::from(&sealed)], None, DEFAULT_DENSE_CELLS);
        assert_eq!(got.complete_cases, 0);
        assert_eq!(got.total, 0.0);
        let all_null = enc(&[None, None, None]);
        let sealed = all_null.seal();
        let got = accumulate_views(&[ColumnView::from(&sealed)], None, DEFAULT_DENSE_CELLS);
        assert_eq!(got.complete_cases, 0);
    }

    #[test]
    fn sealed_zero_weights_are_skipped() {
        let x = enc(&[Some("a"), Some("a"), Some("b"), Some("b")]);
        let sealed = x.seal();
        let got = accumulate_views(
            &[ColumnView::from(&sealed)],
            Some(&[1.0, 0.0, 2.0, 0.0]),
            DEFAULT_DENSE_CELLS,
        );
        assert_eq!(got.complete_cases, 2);
        assert_eq!(got.total, 3.0);
    }
}
