//! Criterion benchmark behind Figure 6: MCIMR running time as a function of
//! the explanation-size bound k.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bench::{prepare_workload, ExperimentData, Scale};
use datagen::{representative_queries_for, Dataset};
use mesa::{Mesa, MesaConfig};

fn bench_k(c: &mut Criterion) {
    let data = ExperimentData::generate(Scale::Quick);
    let wq = &representative_queries_for(Dataset::Covid)[0];
    let prepared = prepare_workload(&data, wq).expect("prepare");

    let mut group = c.benchmark_group("mcimr_vs_k");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for &k in &[1usize, 3, 5, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &prepared, |b, p| {
            let mesa = Mesa::with_config(MesaConfig::default().with_k(k));
            b.iter(|| mesa.explain_prepared(p).expect("explain"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_k);
criterion_main!(benches);
