//! Criterion benchmark behind Figure 4: MCIMR running time as a function of
//! the number of candidate attributes (with and without pruning).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bench::{prepare_workload, ExperimentData, Scale};
use datagen::{representative_queries_for, Dataset};
use mesa::{Mesa, MesaConfig, PruningConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn bench_attrs(c: &mut Criterion) {
    let data = ExperimentData::generate(Scale::Quick);
    let wq = &representative_queries_for(Dataset::Covid)[0];
    let prepared = prepare_workload(&data, wq).expect("prepare");
    let mut rng = StdRng::seed_from_u64(7);

    let mut group = c.benchmark_group("mcimr_vs_candidate_attributes");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for &n_attrs in &[50usize, 150, 250, 350] {
        let n = n_attrs.min(prepared.candidates.len());
        let mut cands = prepared.candidates.clone();
        cands.shuffle(&mut rng);
        cands.truncate(n);
        let mut sub = prepared.clone();
        sub.candidates = cands;
        group.bench_with_input(BenchmarkId::new("mcimr_pruned", n), &sub, |b, sub| {
            let mesa = Mesa::new();
            b.iter(|| mesa.explain_prepared(sub).expect("explain"));
        });
        group.bench_with_input(BenchmarkId::new("no_pruning", n), &sub, |b, sub| {
            let mesa = Mesa::with_config(MesaConfig {
                pruning: PruningConfig::disabled(),
                ..Default::default()
            });
            b.iter(|| mesa.explain_prepared(sub).expect("explain"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_attrs);
criterion_main!(benches);
