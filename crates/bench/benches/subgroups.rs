//! Benchmark of Algorithm 2 (top-k unexplained subgroups), backing the
//! running-time claim of Section 5.4.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use bench::{prepare_workload, ExperimentData, Scale};
use datagen::{representative_queries_for, Dataset};
use mesa::{Mesa, SubgroupConfig};

fn bench_subgroups(c: &mut Criterion) {
    let data = ExperimentData::generate(Scale::Quick);
    let mesa = Mesa::new();
    let wq = &representative_queries_for(Dataset::StackOverflow)[0];
    let prepared = prepare_workload(&data, wq).expect("prepare");
    let report = mesa.explain_prepared(&prepared).expect("explain");
    let config = SubgroupConfig {
        top_k: 5,
        tau: 0.2,
        ..Default::default()
    };

    let mut group = c.benchmark_group("unexplained_subgroups");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    group.bench_function("so_q1_top5", |b| {
        b.iter(|| {
            mesa.unexplained_subgroups(&prepared, &report.explanation, &config)
                .expect("subgroups")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_subgroups);
criterion_main!(benches);
