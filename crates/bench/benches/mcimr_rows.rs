//! Criterion benchmark behind Figure 5: MCIMR running time as a function of
//! the dataset size.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bench::{ExperimentData, Scale};
use datagen::{generate_so, Dataset};
use mesa::Mesa;
use tabular::AggregateQuery;

fn bench_rows(c: &mut Criterion) {
    let data = ExperimentData::generate(Scale::Quick);
    let mesa = Mesa::new();
    let query = AggregateQuery::avg("Country", "Salary");

    let mut group = c.benchmark_group("mcimr_vs_rows");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for &rows in &[2_000usize, 6_000, 12_000] {
        let frame = generate_so(&data.world, rows, 77).expect("generate");
        let prepared = mesa
            .prepare(
                &frame,
                &query,
                Some(&data.graph),
                Dataset::StackOverflow.extraction_columns(),
            )
            .expect("prepare");
        group.bench_with_input(BenchmarkId::from_parameter(rows), &prepared, |b, p| {
            b.iter(|| mesa.explain_prepared(p).expect("explain"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rows);
criterion_main!(benches);
