//! Microbenchmarks of the information-theoretic estimators that dominate
//! MCIMR's running time (CMI with growing conditioning sets).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use infotheory::EncodedFrame;
use tabular::{Column, DataFrame};

fn synthetic_frame(rows: usize) -> DataFrame {
    let cols = (0..6)
        .map(|c| {
            let vals: Vec<Option<i64>> = (0..rows)
                .map(|i| Some(((i * (c + 3) + c * 7) % 8) as i64))
                .collect();
            Column::from_i64(format!("c{c}"), vals)
        })
        .collect();
    DataFrame::from_columns(cols).expect("frame")
}

fn bench_cmi(c: &mut Criterion) {
    let mut group = c.benchmark_group("conditional_mutual_information");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &rows in &[10_000usize, 100_000] {
        let frame = synthetic_frame(rows);
        let encoded = EncodedFrame::from_frame(&frame);
        group.bench_with_input(BenchmarkId::new("mi", rows), &encoded, |b, ef| {
            b.iter(|| ef.mutual_information("c0", "c1", None).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("cmi_1cond", rows), &encoded, |b, ef| {
            b.iter(|| ef.cmi("c0", "c1", &["c2"], None).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("cmi_3cond", rows), &encoded, |b, ef| {
            b.iter(|| ef.cmi("c0", "c1", &["c2", "c3", "c4"], None).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cmi);
criterion_main!(benches);
