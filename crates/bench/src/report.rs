//! Machine-readable benchmark results.
//!
//! Every `fig*` experiment binary writes a `BENCH_<name>.json` next to its
//! human-readable table so the performance trajectory of the repository can
//! be tracked across commits without parsing stdout. Timings are wall-clock
//! milliseconds summarised as median/min/max over at least
//! [`DEFAULT_REPS`] repetitions.
//!
//! The JSON is hand-rolled (no serde in the dependency tree); the schema is
//! one object with a `name` and an `entries` array of
//! `{label, rows, reps, threads, median_ms, min_ms, max_ms}`. `threads` is
//! the effective fan-out concurrency at record time
//! ([`parallel::effective_threads`]) — the pool size clamped by any
//! enclosing `with_thread_cap`, so thread-scaling sweeps are
//! self-describing per entry.

use std::path::PathBuf;
use std::time::Instant;

/// Default number of repetitions per timed entry.
pub const DEFAULT_REPS: usize = 3;

/// One timed measurement: a label, the input size, and the wall-clock
/// summary over the repetitions.
#[derive(Debug, Clone)]
pub struct BenchEntry {
    /// What was measured (e.g. `"Flights/MCIMR/20000"`).
    pub label: String,
    /// Input rows behind the measurement.
    pub rows: usize,
    /// Number of repetitions.
    pub reps: usize,
    /// Effective fan-out thread count while the samples were taken.
    pub threads: usize,
    /// Median wall-clock milliseconds.
    pub median_ms: f64,
    /// Fastest repetition.
    pub min_ms: f64,
    /// Slowest repetition.
    pub max_ms: f64,
}

/// Collects [`BenchEntry`] records and writes `BENCH_<name>.json`.
#[derive(Debug, Clone)]
pub struct BenchReport {
    name: String,
    entries: Vec<BenchEntry>,
}

/// Median of an unsorted sample set (mean of the middle pair for even sizes).
pub fn median_ms(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

impl BenchReport {
    /// A report that will be written as `BENCH_<name>.json`.
    pub fn new(name: impl Into<String>) -> Self {
        BenchReport {
            name: name.into(),
            entries: Vec::new(),
        }
    }

    /// Times `f` over `reps` repetitions (at least [`DEFAULT_REPS`]), records
    /// an entry, and returns the median milliseconds.
    pub fn time<F: FnMut()>(&mut self, label: &str, rows: usize, reps: usize, mut f: F) -> f64 {
        let reps = reps.max(DEFAULT_REPS);
        let mut samples = Vec::with_capacity(reps);
        for _ in 0..reps {
            let start = Instant::now();
            f();
            samples.push(start.elapsed().as_secs_f64() * 1e3);
        }
        self.record(label, rows, &samples)
    }

    /// Records pre-measured samples (milliseconds); returns the median.
    pub fn record(&mut self, label: &str, rows: usize, samples_ms: &[f64]) -> f64 {
        let median = median_ms(samples_ms);
        let min = samples_ms.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples_ms.iter().copied().fold(0.0f64, f64::max);
        self.entries.push(BenchEntry {
            label: label.to_string(),
            rows,
            reps: samples_ms.len(),
            threads: parallel::effective_threads(),
            median_ms: median,
            min_ms: if min.is_finite() { min } else { 0.0 },
            max_ms: max,
        });
        median
    }

    /// The entries recorded so far.
    pub fn entries(&self) -> &[BenchEntry] {
        &self.entries
    }

    /// Renders the report as a JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"name\": \"{}\",\n", escape(&self.name)));
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"label\": \"{}\", \"rows\": {}, \"reps\": {}, \"threads\": {}, \
                 \"median_ms\": {:.3}, \"min_ms\": {:.3}, \"max_ms\": {:.3}}}{}\n",
                escape(&e.label),
                e.rows,
                e.reps,
                e.threads,
                e.median_ms,
                e.min_ms,
                e.max_ms,
                if i + 1 < self.entries.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes `BENCH_<name>.json` into `$MESA_BENCH_DIR` (or the current
    /// directory) and returns the path.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let dir = std::env::var("MESA_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
        let path = PathBuf::from(dir).join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// [`write`](BenchReport::write), reporting the outcome on stdout/stderr
    /// instead of propagating the error (experiment binaries should still
    /// print their tables when the working directory is read-only).
    pub fn write_or_warn(&self) {
        match self.write() {
            Ok(path) => println!("(benchmark results written to {})", path.display()),
            Err(e) => eprintln!("warning: could not write BENCH_{}.json: {e}", self.name),
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_handles_odd_even_empty() {
        assert_eq!(median_ms(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median_ms(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median_ms(&[]), 0.0);
    }

    #[test]
    fn time_enforces_min_reps_and_records() {
        let mut report = BenchReport::new("unit");
        let mut calls = 0;
        let median = report.time("noop", 10, 1, || calls += 1);
        assert_eq!(calls, DEFAULT_REPS);
        assert!(median >= 0.0);
        let e = &report.entries()[0];
        assert_eq!(e.reps, DEFAULT_REPS);
        assert!(e.min_ms <= e.median_ms && e.median_ms <= e.max_ms);
    }

    #[test]
    fn json_shape_and_escaping() {
        let mut report = BenchReport::new("unit");
        report.record("with \"quotes\"\n", 5, &[1.0, 2.0, 3.0]);
        let json = report.to_json();
        assert!(json.contains("\"name\": \"unit\""));
        assert!(json.contains("\\\"quotes\\\"\\n"));
        assert!(json.contains("\"median_ms\": 2.000"));
        assert!(json.contains("\"rows\": 5"));
        // trailing comma only between entries
        report.record("second", 1, &[1.0]);
        let json = report.to_json();
        assert_eq!(json.matches("},\n").count(), 1);
    }

    /// Restores (or removes) `MESA_BENCH_DIR` on drop, so a failing
    /// assertion cannot leak the override into other tests in the process.
    struct EnvGuard(Option<String>);

    impl EnvGuard {
        fn set(value: &std::path::Path) -> Self {
            let prior = std::env::var("MESA_BENCH_DIR").ok();
            std::env::set_var("MESA_BENCH_DIR", value);
            EnvGuard(prior)
        }
    }

    impl Drop for EnvGuard {
        fn drop(&mut self) {
            match &self.0 {
                Some(prior) => std::env::set_var("MESA_BENCH_DIR", prior),
                None => std::env::remove_var("MESA_BENCH_DIR"),
            }
        }
    }

    #[test]
    fn write_respects_bench_dir() {
        let dir = std::env::temp_dir().join("mesa_bench_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let _guard = EnvGuard::set(&dir);
        let mut report = BenchReport::new("unit_write");
        report.record("x", 1, &[1.0, 2.0, 3.0]);
        let path = report.write().unwrap();
        assert!(path.ends_with("BENCH_unit_write.json"));
        let body = std::fs::read_to_string(path).unwrap();
        assert!(body.contains("\"entries\""));
    }
}
