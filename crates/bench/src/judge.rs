//! The simulated judge that replaces the paper's MTurk user study (Table 3).
//!
//! The real study asks 150 subjects to score each explanation from 1 to 5.
//! We cannot run humans, but — unlike the paper — we *know* the ground-truth
//! confounders of the generating model, so we score an explanation by:
//!
//! * **coverage** of the ground-truth confounders for the query (does the
//!   explanation name the factors that actually drive the outcome?),
//! * **precision** (are the named attributes actually among the ground truth,
//!   or near-duplicates of it, rather than noise?), and
//! * **explainability** (how much of the correlation is removed, the same
//!   quantity Figure 2 reports).
//!
//! The score is mapped to the study's 1–5 scale. The purpose is to test
//! whether the *ordering* of methods the paper reports (Brute-Force ≈ MESA⁻ ≈
//! MESA > HypDB > Top-K > LR) emerges when ground truth is known.

use mesa::Explanation;

/// Ground-truth confounder names (lower-cased substrings) for a query.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// Substrings identifying attributes that genuinely drive the outcome.
    pub confounders: Vec<String>,
}

impl GroundTruth {
    /// Builds ground truth from substring patterns.
    pub fn new(patterns: &[&str]) -> Self {
        GroundTruth {
            confounders: patterns.iter().map(|p| p.to_lowercase()).collect(),
        }
    }

    /// Whether an attribute name matches any ground-truth pattern.
    pub fn matches(&self, attribute: &str) -> bool {
        let lower = attribute.to_lowercase();
        self.confounders.iter().any(|p| lower.contains(p))
    }
}

/// The simulated user-study score for one explanation.
#[derive(Debug, Clone, PartialEq)]
pub struct JudgeScore {
    /// Fraction of ground-truth confounders covered by the explanation.
    pub coverage: f64,
    /// Fraction of the explanation's attributes that match the ground truth.
    pub precision: f64,
    /// Fraction of the original correlation explained away.
    pub explained_fraction: f64,
    /// The 1–5 score shown in the Table 3 reproduction.
    pub score: f64,
}

/// Scores an explanation against the query's ground-truth confounders.
pub fn judge_explanation(explanation: &Explanation, truth: &GroundTruth) -> JudgeScore {
    let covered = truth
        .confounders
        .iter()
        .filter(|p| {
            explanation
                .attributes
                .iter()
                .any(|a| a.to_lowercase().contains(p.as_str()))
        })
        .count();
    let coverage = if truth.confounders.is_empty() {
        0.0
    } else {
        covered as f64 / truth.confounders.len() as f64
    };
    let matching = explanation
        .attributes
        .iter()
        .filter(|a| truth.matches(a))
        .count();
    let precision = if explanation.attributes.is_empty() {
        0.0
    } else {
        matching as f64 / explanation.attributes.len() as f64
    };
    let explained_fraction = explanation.explained_fraction();
    // Composite: convincing explanations cover the true story with little
    // noise and actually remove the correlation.
    let quality = 0.4 * coverage + 0.3 * precision + 0.3 * explained_fraction;
    let score = 1.0 + 4.0 * quality;
    JudgeScore {
        coverage,
        precision,
        explained_fraction,
        score,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn explanation(attrs: &[&str], baseline: f64, explainability: f64) -> Explanation {
        Explanation {
            attributes: attrs.iter().map(|s| s.to_string()).collect(),
            baseline_cmi: baseline,
            explainability,
            responsibilities: vec![1.0 / attrs.len().max(1) as f64; attrs.len()],
        }
    }

    #[test]
    fn perfect_explanation_scores_high() {
        let truth = GroundTruth::new(&["hdi", "gini"]);
        let e = explanation(&["HDI", "Gini"], 2.0, 0.05);
        let s = judge_explanation(&e, &truth);
        assert!(s.coverage > 0.99);
        assert!(s.precision > 0.99);
        assert!(s.score > 4.5);
    }

    #[test]
    fn noisy_explanation_scores_lower() {
        let truth = GroundTruth::new(&["hdi", "gini"]);
        let good = judge_explanation(&explanation(&["HDI", "Gini"], 2.0, 0.1), &truth);
        let noisy = judge_explanation(
            &explanation(&["HDI", "Time zone", "wikiID"], 2.0, 0.1),
            &truth,
        );
        let irrelevant = judge_explanation(&explanation(&["Language"], 2.0, 1.9), &truth);
        assert!(good.score > noisy.score);
        assert!(noisy.score > irrelevant.score);
        assert!(irrelevant.score < 2.0);
    }

    #[test]
    fn empty_explanation_scores_minimum_range() {
        let truth = GroundTruth::new(&["hdi"]);
        let s = judge_explanation(&explanation(&[], 2.0, 2.0), &truth);
        assert!(s.score >= 1.0 && s.score < 1.5);
    }

    #[test]
    fn substring_matching_handles_variants() {
        let truth = GroundTruth::new(&["gdp"]);
        assert!(truth.matches("GDP rank"));
        assert!(truth.matches("GDP nominal per capita"));
        assert!(!truth.matches("Density"));
    }
}
