//! Shared harness code for the experiment binaries in `src/bin/` and the
//! Criterion benchmarks in `benches/`.
//!
//! Every binary regenerates one table or figure of the paper's evaluation
//! (see `DESIGN.md` for the per-experiment index and `EXPERIMENTS.md` for the
//! recorded results). The harness keeps the experiment setup — world
//! generation, dataset sizes, method roster, the simulated judge — in one
//! place so every experiment runs against the same synthetic world.
//!
//! Run an experiment with, e.g.:
//!
//! ```text
//! cargo run --release -p bench --bin table2_explanations
//! MESA_SCALE=paper cargo run --release -p bench --bin fig5_scaling_rows
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod ground_truth;
pub mod judge;
pub mod methods;
pub mod report;
pub mod setup;

pub use ground_truth::ground_truth_for;
pub use judge::{judge_explanation, GroundTruth, JudgeScore};
pub use methods::{run_all_methods, run_method, Method, MethodResult};
pub use report::{median_ms, BenchEntry, BenchReport, DEFAULT_REPS};
pub use setup::{
    experiment_world, prepare_workload, scaled_rows, DatasetSessions, ExperimentData, Scale,
};
