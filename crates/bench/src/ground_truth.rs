//! Ground-truth confounders per representative query, derived from how the
//! world model generates each outcome (see `datagen::world` and
//! `datagen::datasets`). These play the role of the paper's "previous
//! in-domain findings" that support its explanations.

use crate::judge::GroundTruth;

/// The ground-truth confounder patterns for a representative query id
/// (`"SO Q1"`, `"Covid Q2"`, ...). Unknown ids get an empty ground truth.
pub fn ground_truth_for(query_id: &str) -> GroundTruth {
    let patterns: &[&str] = match query_id {
        // Salary is driven by GDP per capita and Gini of the developer's country.
        "SO Q1" | "SO Q3" => &["gdp", "gini", "hdi"],
        // Per-continent salary differences follow aggregate GDP / population.
        "SO Q2" => &["gdp", "density", "population"],
        // Delays are driven by origin weather + congestion (population) and
        // the airline's operational quality (fleet size / equity).
        "Flights Q1" | "Flights Q2" | "Flights Q3" | "Flights Q4" => &[
            "precipitation",
            "snow",
            "low f",
            "avg f",
            "percent sun",
            "population",
            "density",
            "fleet",
            "equity",
        ],
        "Flights Q5" => &["fleet", "equity", "revenue", "net income", "employees"],
        // Covid deaths are driven by health quality (HDI/GDP proxies) and density.
        "Covid Q1" | "Covid Q2" => &["hdi", "gdp", "gini", "confirmed", "density"],
        "Covid Q3" => &["density", "hdi", "gdp", "confirmed"],
        // Forbes pay: net worth everywhere; gender gap for actors; cups /
        // draft pick for athletes; awards for directors.
        "Forbes Q1" => &["net worth", "gender", "awards"],
        "Forbes Q2" => &["net worth", "awards", "years active"],
        "Forbes Q3" => &["cups", "draft pick", "net worth"],
        _ => &[],
    };
    GroundTruth::new(patterns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::representative_queries;

    #[test]
    fn every_representative_query_has_ground_truth() {
        for q in representative_queries() {
            let truth = ground_truth_for(&q.id);
            assert!(
                !truth.confounders.is_empty(),
                "no ground truth for {}",
                q.id
            );
        }
    }

    #[test]
    fn unknown_query_is_empty() {
        assert!(ground_truth_for("Nope Q9").confounders.is_empty());
    }
}
