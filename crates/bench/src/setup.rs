//! Shared experiment setup: one world, one knowledge graph, and the datasets
//! at configurable scale.

use datagen::{build_kg, Dataset, KgConfig, World, WorldConfig};
use kg::KnowledgeGraph;
use tabular::DataFrame;

/// Experiment scale. `Quick` keeps every run in seconds (the default for the
/// binaries and Criterion benches); `Paper` uses row counts close to Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small sizes for fast iteration and CI.
    Quick,
    /// Sizes close to the paper's Table 1.
    Paper,
}

impl Scale {
    /// Reads the scale from the `MESA_SCALE` environment variable
    /// (`quick` / `paper`), defaulting to `Quick`.
    pub fn from_env() -> Scale {
        match std::env::var("MESA_SCALE").as_deref() {
            Ok("paper") | Ok("PAPER") => Scale::Paper,
            _ => Scale::Quick,
        }
    }
}

/// Number of rows to generate for a dataset at a given scale.
pub fn scaled_rows(dataset: Dataset, scale: Scale) -> usize {
    match (dataset, scale) {
        (Dataset::Covid, _) => dataset.default_rows(),
        (_, Scale::Paper) => dataset.default_rows().min(1_000_000),
        (Dataset::StackOverflow, Scale::Quick) => 8_000,
        (Dataset::Flights, Scale::Quick) => 20_000,
        (Dataset::Forbes, Scale::Quick) => 1_647,
    }
}

/// The shared experiment fixture: world, knowledge graph, and one frame per
/// dataset.
pub struct ExperimentData {
    /// The ground-truth world.
    pub world: World,
    /// The synthetic DBpedia-like knowledge graph.
    pub graph: KnowledgeGraph,
    /// `(dataset, generated frame)` for all four datasets.
    pub frames: Vec<(Dataset, DataFrame)>,
    /// The scale the fixture was generated at.
    pub scale: Scale,
}

impl ExperimentData {
    /// Returns the frame for a dataset.
    pub fn frame(&self, dataset: Dataset) -> &DataFrame {
        &self
            .frames
            .iter()
            .find(|(d, _)| *d == dataset)
            .expect("all datasets generated")
            .1
    }
}

/// The world configuration every experiment uses.
pub fn experiment_world() -> WorldConfig {
    WorldConfig::default()
}

impl ExperimentData {
    /// Generates the full fixture at the given scale.
    pub fn generate(scale: Scale) -> ExperimentData {
        let world = World::generate(experiment_world());
        let graph = build_kg(&world, KgConfig::default());
        let frames = Dataset::all()
            .into_iter()
            .map(|d| {
                let rows = scaled_rows(d, scale);
                (
                    d,
                    d.generate(&world, rows, 1234).expect("generation succeeds"),
                )
            })
            .collect();
        ExperimentData {
            world,
            graph,
            frames,
            scale,
        }
    }
}

/// Prepares a workload query against the fixture (context + KG extraction +
/// binning) with MESA's default preparation settings.
///
/// This is the *cold* path: every call pays the full pipeline. Experiment
/// binaries that iterate a whole workload should go through
/// [`DatasetSessions`] instead, which shares the KG extraction across the
/// queries of each dataset.
pub fn prepare_workload(
    data: &ExperimentData,
    wq: &datagen::WorkloadQuery,
) -> mesa::Result<mesa::PreparedQuery> {
    let mesa = mesa::Mesa::new();
    mesa.prepare(
        data.frame(wq.dataset),
        &wq.query,
        Some(&data.graph),
        wq.dataset.extraction_columns(),
    )
}

/// One long-lived [`mesa::Session`] per dataset of the fixture — the shape a
/// traffic-serving deployment would hold, and what the experiment binaries
/// use to run a whole query workload without re-extracting the same
/// universal relation per query.
pub struct DatasetSessions<'a> {
    sessions: Vec<(Dataset, mesa::Session<'a>)>,
}

impl<'a> DatasetSessions<'a> {
    /// Sessions over every dataset of the fixture, under one configuration.
    pub fn with_config(data: &'a ExperimentData, config: mesa::MesaConfig) -> Self {
        let sessions = data
            .frames
            .iter()
            .map(|(dataset, frame)| {
                (
                    *dataset,
                    mesa::Session::new(
                        frame,
                        Some(&data.graph),
                        dataset.extraction_columns(),
                        config,
                    ),
                )
            })
            .collect();
        DatasetSessions { sessions }
    }

    /// Sessions with MESA's default configuration.
    pub fn new(data: &'a ExperimentData) -> Self {
        DatasetSessions::with_config(data, mesa::MesaConfig::default())
    }

    /// The session serving a dataset.
    pub fn session(&self, dataset: Dataset) -> &mesa::Session<'a> {
        &self
            .sessions
            .iter()
            .find(|(d, _)| *d == dataset)
            .expect("all datasets have sessions")
            .1
    }

    /// Prepares a workload query through its dataset's session (cached
    /// extraction, memoized repeats).
    pub fn prepare(
        &self,
        wq: &datagen::WorkloadQuery,
    ) -> mesa::Result<std::sync::Arc<mesa::PreparedQuery>> {
        self.session(wq.dataset).prepare(&wq.query)
    }

    /// Explains a workload query through its dataset's session.
    pub fn explain(
        &self,
        wq: &datagen::WorkloadQuery,
    ) -> mesa::Result<std::sync::Arc<mesa::MesaReport>> {
        self.session(wq.dataset).explain(&wq.query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fixture_generates_all_datasets() {
        let data = ExperimentData::generate(Scale::Quick);
        assert_eq!(data.frames.len(), 4);
        assert_eq!(data.frame(Dataset::StackOverflow).n_rows(), 8_000);
        assert_eq!(
            data.frame(Dataset::Covid).n_rows(),
            data.world.countries.len()
        );
        assert!(data.graph.n_triples() > 1000);
        assert_eq!(data.scale, Scale::Quick);
    }

    #[test]
    fn scaled_rows_respects_dataset_and_scale() {
        assert_eq!(scaled_rows(Dataset::Covid, Scale::Paper), 188);
        assert_eq!(scaled_rows(Dataset::Forbes, Scale::Quick), 1_647);
        assert!(
            scaled_rows(Dataset::Flights, Scale::Paper)
                > scaled_rows(Dataset::Flights, Scale::Quick)
        );
    }

    #[test]
    fn scale_from_env_defaults_to_quick() {
        // The env var is not set in tests.
        assert_eq!(Scale::from_env(), Scale::Quick);
    }
}
