//! Appendix experiment: the cost of serving-grade hardening.
//!
//! Emits `BENCH_robustness.json`; the committed copy is the canonical
//! record that the robustness machinery is (nearly) free:
//!
//! * `deadline/workload_without` vs `deadline/workload_with` — the 14-query
//!   representative workload on fresh sessions, without any deadline and
//!   under a generous (never-expiring) one. The difference is the whole
//!   cost of cooperative cancellation: deadline inheritance at pool claim
//!   boundaries plus the checkpoint polls in the kernel fold loops and the
//!   extraction BFS. `deadline/overhead_pct` records the relative overhead;
//!   the acceptance bar is ≤ 2%.
//! * `eviction/*` — warm re-explains through an unbounded session vs one
//!   whose tiers hold a single entry (every query evicts and re-warms), plus
//!   the observed eviction counts. This is the worst-case price of running
//!   with tight [`mesa::SessionLimits`]; the default budgets never evict on
//!   this workload.
//! * `dedup/*` — eight threads cold-missing the same fingerprint at once:
//!   the report memo's in-flight slot coalesces them onto one fill, so the
//!   cold pipeline runs exactly once (asserted, then recorded).

use std::sync::Arc;
use std::time::Duration;

use bench::report::BenchReport;
use bench::{DatasetSessions, ExperimentData, Scale};
use datagen::{representative_queries, Dataset};
use mesa::{CacheBudget, MesaConfig, MesaReport, Session, SessionLimits};

fn main() {
    let data = ExperimentData::generate(Scale::Quick);
    let queries = representative_queries();
    let total_rows: usize = data.frames.iter().map(|(_, f)| f.n_rows()).sum();
    let mut report = BenchReport::new("robustness");
    println!("== Appendix: serving-grade hardening (deadlines, eviction, dedup) ==\n");

    // -- Deadline overhead ------------------------------------------------
    // Fresh sessions per repetition so every query pays the full pipeline —
    // the regime where checkpoint polls could plausibly cost something. The
    // two variants are interleaved (after a discarded warm-up pass) so
    // allocator/cache warm-up drift hits both equally.
    let generous = Duration::from_secs(3600);
    let run_without = || {
        let fresh = DatasetSessions::new(&data);
        for wq in &queries {
            let _ = std::hint::black_box(fresh.explain(wq));
        }
    };
    let run_with = || {
        let fresh = DatasetSessions::new(&data);
        for wq in &queries {
            let _ = std::hint::black_box(
                fresh
                    .session(wq.dataset)
                    .explain_with_deadline(&wq.query, generous),
            );
        }
    };
    run_without(); // warm-up, discarded
    run_with();
    let mut without_samples = Vec::new();
    let mut with_samples = Vec::new();
    for _ in 0..7 {
        let t0 = std::time::Instant::now();
        run_without();
        without_samples.push(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = std::time::Instant::now();
        run_with();
        with_samples.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let without_ms = report.record("deadline/workload_without", total_rows, &without_samples);
    let with_ms = report.record("deadline/workload_with", total_rows, &with_samples);
    let overhead_pct = (with_ms - without_ms) / without_ms.max(1e-9) * 100.0;
    report.record("deadline/overhead_pct", total_rows, &[overhead_pct]);
    println!("14-query workload, fresh sessions (median over 7 reps):");
    println!("  without deadline           {without_ms:>10.3} ms");
    println!("  with 1 h deadline          {with_ms:>10.3} ms");
    println!("  cancellation overhead      {overhead_pct:>10.2} %\n");

    // -- Eviction: tight budgets vs unbounded -----------------------------
    let covid = data.frame(Dataset::Covid);
    let covid_queries: Vec<_> = queries
        .iter()
        .filter(|wq| wq.dataset == Dataset::Covid)
        .map(|wq| wq.query.clone())
        .collect();
    let config = MesaConfig::default();
    let unbounded = Session::with_limits(
        covid,
        Some(&data.graph),
        Dataset::Covid.extraction_columns(),
        config,
        SessionLimits::unbounded(),
    );
    let tight = SessionLimits {
        prepared: CacheBudget::entries(1),
        reports: CacheBudget::entries(1),
        extraction: CacheBudget::entries(1),
    };
    let bounded = Session::with_limits(
        covid,
        Some(&data.graph),
        Dataset::Covid.extraction_columns(),
        config,
        tight,
    );
    for q in &covid_queries {
        let a = unbounded.explain(q).expect("covid query explains");
        let b = bounded.explain(q).expect("covid query explains");
        assert_eq!(
            a.explanation, b.explanation,
            "budgets must not change results"
        );
    }
    let covid_rows = covid.n_rows();
    let warm_unbounded_ms = report.time("eviction/warm_unbounded", covid_rows, 30, || {
        for q in &covid_queries {
            let _ = std::hint::black_box(unbounded.explain(q));
        }
    });
    let warm_bounded_ms = report.time("eviction/warm_bounded_1_entry", covid_rows, 5, || {
        for q in &covid_queries {
            let _ = std::hint::black_box(bounded.explain(q));
        }
    });
    let bounded_stats = bounded.cache_stats();
    let unbounded_stats = unbounded.cache_stats();
    assert!(
        bounded_stats.reports.evictions > 0,
        "tight budget must evict"
    );
    assert_eq!(unbounded_stats.reports.evictions, 0);
    report.record(
        "eviction/bounded_evictions",
        covid_rows,
        &[bounded_stats.reports.evictions as f64],
    );
    report.record(
        "eviction/unbounded_warm_hits",
        covid_rows,
        &[unbounded_stats.reports.hits as f64],
    );
    println!(
        "covid workload ({} queries) warm pass:",
        covid_queries.len()
    );
    println!("  unbounded session          {warm_unbounded_ms:>10.3} ms   (pure memo hits)");
    println!(
        "  1-entry budgets            {warm_bounded_ms:>10.3} ms   ({} evictions so far)",
        bounded_stats.reports.evictions
    );
    println!(
        "  unbounded resident         {:>10} B prepared, {} B reports\n",
        unbounded_stats.prepared.resident_bytes, unbounded_stats.reports.resident_bytes
    );

    // -- In-flight dedup of concurrent identical misses -------------------
    let dedup = Session::new(
        covid,
        Some(&data.graph),
        Dataset::Covid.extraction_columns(),
        config,
    );
    let q = &covid_queries[0];
    let reports: Vec<Arc<MesaReport>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| s.spawn(|| dedup.explain(q).expect("explain succeeds")))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for r in &reports[1..] {
        assert!(Arc::ptr_eq(&reports[0], r), "all callers share one report");
    }
    let dedup_stats = dedup.cache_stats();
    assert_eq!(
        dedup_stats.reports.misses, 1,
        "8 concurrent identical misses must run the cold pipeline exactly once"
    );
    report.record(
        "dedup/cold_pipeline_runs",
        covid_rows,
        &[dedup_stats.reports.misses as f64],
    );
    report.record(
        "dedup/coalesced_waiters",
        covid_rows,
        &[dedup_stats.reports.coalesced as f64],
    );
    println!("8 concurrent cold misses of one fingerprint:");
    println!(
        "  cold pipeline runs         {:>10}   ({} coalesced, {} served warm)",
        dedup_stats.reports.misses, dedup_stats.reports.coalesced, dedup_stats.reports.hits
    );

    report.write_or_warn();
}
