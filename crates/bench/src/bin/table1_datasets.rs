//! Table 1: the examined datasets — row counts, number of extracted
//! attributes |E|, and the columns used for extraction.

use bench::{ExperimentData, Scale};
use kg::{extract_attributes, ExtractionConfig};

fn main() {
    let data = ExperimentData::generate(Scale::from_env());
    println!("== Table 1: examined datasets ==\n");
    println!(
        "{:<12} {:>9} {:>6}   columns used for extraction",
        "Dataset", "n", "|E|"
    );
    for (dataset, frame) in &data.frames {
        let mut total_attrs = 0usize;
        for col in dataset.extraction_columns() {
            let encoded = frame.column(col).expect("column exists").encode();
            let res = extract_attributes(
                &data.graph,
                encoded.labels(),
                "key",
                ExtractionConfig::default(),
            )
            .expect("extraction");
            total_attrs += res.stats.n_attributes;
        }
        println!(
            "{:<12} {:>9} {:>6}   {}",
            dataset.name(),
            frame.n_rows(),
            total_attrs,
            dataset.extraction_columns().join(", ")
        );
    }
    println!(
        "\n(paper: SO 47623/461, COVID-19 188/463, Flights 5819079/704, Forbes 1647/708; \
         run with MESA_SCALE=paper for full row counts)"
    );
}
