//! Figure 3: explainability of MESA's explanations as a function of the
//! percentage of missing values in the most relevant extracted attributes,
//! under missing-at-random removal, biased removal, and mean imputation.
//! The per-dataset explain time on the undegraded frame is recorded in
//! `BENCH_fig3.json`.

use bench::{BenchReport, ExperimentData, Scale, DEFAULT_REPS};
use datagen::Dataset;
use kg::{impute_mean, remove_at_random, remove_biased};
use mesa::{Mesa, MesaConfig, MissingPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tabular::AggregateQuery;

/// Finds the `top_n` extracted attributes most relevant to the outcome and
/// returns their names.
fn most_relevant_extracted(prepared: &mesa::PreparedQuery, top_n: usize) -> Vec<String> {
    let mut scored: Vec<(String, f64)> = prepared
        .extracted
        .iter()
        .filter_map(|a| {
            prepared
                .encoded
                .mutual_information(prepared.outcome(), a, None)
                .ok()
                .map(|mi| (a.clone(), mi))
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    scored.into_iter().take(top_n).map(|(a, _)| a).collect()
}

fn run_dataset(
    data: &ExperimentData,
    dataset: Dataset,
    exposure: &str,
    outcome: &str,
    bench_report: &mut BenchReport,
) {
    let frame = data.frame(dataset);
    let query = AggregateQuery::avg(exposure, outcome);
    let mesa = Mesa::new();
    let base_prepared = mesa
        .prepare(
            frame,
            &query,
            Some(&data.graph),
            dataset.extraction_columns(),
        )
        .expect("prepare");
    let targets = most_relevant_extracted(&base_prepared, 10);
    bench_report.time(
        &format!("{}/explain_undegraded", dataset.name()),
        base_prepared.frame.n_rows(),
        DEFAULT_REPS,
        || {
            let _ = mesa.explain_prepared(&base_prepared).expect("explain");
        },
    );

    println!(
        "--- {} : {} ---",
        dataset.name(),
        query.to_sql(dataset.name()).replace('\n', " ")
    );
    println!(
        "{:>8} {:>22} {:>18} {:>14}",
        "%missing", "missing-at-random", "biased removal", "imputation"
    );
    for pct in [10, 30, 50, 70, 90] {
        let fraction = pct as f64 / 100.0;
        let mut scores = Vec::new();
        for mode in ["mar", "biased", "impute"] {
            let mut degraded = base_prepared.frame.clone();
            let mut rng = StdRng::seed_from_u64(pct as u64);
            for t in &targets {
                degraded = match mode {
                    "mar" => remove_at_random(&degraded, t, fraction, &mut rng).expect("mar"),
                    _ => remove_biased(&degraded, t, fraction).expect("biased"),
                };
            }
            let policy = if mode == "impute" {
                for t in &targets {
                    degraded = impute_mean(&degraded, t).expect("impute");
                }
                MissingPolicy::CompleteCase
            } else {
                MissingPolicy::Ipw
            };
            // Re-encode the degraded frame and rerun MESA on it.
            let prepared =
                mesa::prepare_query(&degraded, &query, None, &[], mesa::PrepareConfig::default())
                    .expect("re-prepare");
            let system = Mesa::with_config(MesaConfig {
                missing: policy,
                ..MesaConfig::default()
            });
            let report = system.explain_prepared(&prepared).expect("explain");
            scores.push(report.explanation.explainability);
        }
        println!(
            "{:>7}% {:>22.4} {:>18.4} {:>14.4}",
            pct, scores[0], scores[1], scores[2]
        );
    }
    println!();
}

fn main() {
    let data = ExperimentData::generate(Scale::from_env());
    let mut bench_report = BenchReport::new("fig3");
    println!("== Figure 3: explainability as a function of missing data ==\n");
    run_dataset(
        &data,
        Dataset::StackOverflow,
        "Country",
        "Salary",
        &mut bench_report,
    );
    run_dataset(
        &data,
        Dataset::Covid,
        "Country",
        "Deaths_per_100_cases",
        &mut bench_report,
    );
    println!(
        "(expected shape: IPW-backed complete-case scores stay nearly flat up to ~50% missing,\n\
         while imputation degrades explainability markedly — as in the paper's Figure 3)"
    );
    bench_report.write_or_warn();
}
