//! Figure 6: running time as a function of the bound `k` on the explanation
//! size. Timings are medians over [`bench::DEFAULT_REPS`] repetitions, also
//! written to `BENCH_fig6.json`.

use bench::{BenchReport, DatasetSessions, ExperimentData, Scale, DEFAULT_REPS};
use datagen::{representative_queries_for, Dataset};
use mesa::{Mesa, MesaConfig, PruningConfig};

fn main() {
    let data = ExperimentData::generate(Scale::from_env());
    let sessions = DatasetSessions::new(&data);
    let mut bench_report = BenchReport::new("fig6");
    println!("== Figure 6: running time vs explanation-size bound k ==\n");
    for dataset in [Dataset::StackOverflow, Dataset::Flights, Dataset::Forbes] {
        let queries = representative_queries_for(dataset);
        let wq = &queries[0];
        let prepared = match sessions.prepare(wq) {
            Ok(p) => p,
            Err(_) => continue,
        };
        println!("--- {} ({}) ---", dataset.name(), wq.id);
        println!(
            "{:>4} {:>14} {:>18} {:>12} {:>10}",
            "k", "No Pruning", "Offline Pruning", "MCIMR", "|E| found"
        );
        for k in 1..=10 {
            let mut times = Vec::new();
            let mut found = 0;
            for (variant, config) in [
                (
                    "No Pruning",
                    MesaConfig {
                        pruning: PruningConfig::disabled(),
                        ..Default::default()
                    }
                    .with_k(k),
                ),
                (
                    "Offline Pruning",
                    MesaConfig {
                        pruning: PruningConfig::offline_only(),
                        ..Default::default()
                    }
                    .with_k(k),
                ),
                ("MCIMR", MesaConfig::default().with_k(k)),
            ] {
                let system = Mesa::with_config(config);
                let label = format!("{}/{}/k{}", dataset.name(), variant, k);
                let median =
                    bench_report.time(&label, prepared.frame.n_rows(), DEFAULT_REPS, || {
                        let report = system.explain_prepared(&prepared).expect("explain");
                        found = report.explanation.len();
                    });
                times.push(median / 1e3);
            }
            println!(
                "{:>4} {:>13.3}s {:>17.3}s {:>11.3}s {:>10}",
                k, times[0], times[1], times[2], found
            );
        }
        println!();
    }
    println!(
        "(expected shape: k has almost no effect because the responsibility test stops the search\n\
         after at most 3-4 attributes — as in the paper's Figure 6)"
    );
    bench_report.write_or_warn();
}
