//! Figure 6: running time as a function of the bound `k` on the explanation
//! size.

use std::time::Instant;

use bench::{prepare_workload, ExperimentData, Scale};
use datagen::{representative_queries_for, Dataset};
use mesa::{Mesa, MesaConfig, PruningConfig};

fn main() {
    let data = ExperimentData::generate(Scale::from_env());
    println!("== Figure 6: running time vs explanation-size bound k ==\n");
    for dataset in [Dataset::StackOverflow, Dataset::Flights, Dataset::Forbes] {
        let queries = representative_queries_for(dataset);
        let wq = &queries[0];
        let prepared = match prepare_workload(&data, wq) {
            Ok(p) => p,
            Err(_) => continue,
        };
        println!("--- {} ({}) ---", dataset.name(), wq.id);
        println!(
            "{:>4} {:>14} {:>18} {:>12} {:>10}",
            "k", "No Pruning", "Offline Pruning", "MCIMR", "|E| found"
        );
        for k in 1..=10 {
            let mut times = Vec::new();
            let mut found = 0;
            for config in [
                MesaConfig {
                    pruning: PruningConfig::disabled(),
                    ..Default::default()
                }
                .with_k(k),
                MesaConfig {
                    pruning: PruningConfig::offline_only(),
                    ..Default::default()
                }
                .with_k(k),
                MesaConfig::default().with_k(k),
            ] {
                let start = Instant::now();
                let report = Mesa::with_config(config)
                    .explain_prepared(&prepared)
                    .expect("explain");
                times.push(start.elapsed().as_secs_f64());
                found = report.explanation.len();
            }
            println!(
                "{:>4} {:>13.3}s {:>17.3}s {:>11.3}s {:>10}",
                k, times[0], times[1], times[2], found
            );
        }
        println!();
    }
    println!(
        "(expected shape: k has almost no effect because the responsibility test stops the search\n\
         after at most 3-4 attributes — as in the paper's Figure 6)"
    );
}
