//! Table 4: the top-5 largest unexplained data subgroups for SO Q1
//! (τ > 0.2), plus the average running time of Algorithm 2 over all
//! representative queries.

use std::time::Instant;

use bench::{DatasetSessions, ExperimentData, Scale};
use datagen::representative_queries;
use mesa::{subgroup_table, SubgroupConfig};

fn main() {
    let data = ExperimentData::generate(Scale::from_env());
    let sessions = DatasetSessions::new(&data);
    let queries = representative_queries();
    let so_q1 = queries
        .iter()
        .find(|q| q.id == "SO Q1")
        .expect("SO Q1 exists");

    let report = sessions.explain(so_q1).expect("explain SO Q1");
    println!("== Table 4: top-5 unexplained groups for SO Q1 ==\n");
    println!(
        "explanation for the full data: {}\n",
        mesa::explanation_line(&report.explanation)
    );
    let config = SubgroupConfig {
        top_k: 5,
        tau: 0.2,
        ..Default::default()
    };
    let groups = sessions
        .session(so_q1.dataset)
        .unexplained_subgroups(&so_q1.query, &config)
        .expect("subgroups");
    println!("{}", subgroup_table(&groups));

    // Average running time across all representative queries (the paper
    // reports 4.4 s on its hardware). The prepare + explain stages are
    // served from the session memo; only Algorithm 2 is timed.
    let mut total = 0.0;
    let mut count = 0usize;
    for wq in &queries {
        if sessions.explain(wq).is_err() {
            continue;
        }
        let session = sessions.session(wq.dataset);
        let start = Instant::now();
        let _ = session.unexplained_subgroups(&wq.query, &config);
        total += start.elapsed().as_secs_f64();
        count += 1;
    }
    println!(
        "average Algorithm 2 running time over {count} queries: {:.2}s",
        total / count.max(1) as f64
    );
}
