//! Ablation: the MCIMR greedy criterion (Equation 5: Min-CMI + Min-Redundancy
//! over bivariate terms) versus the exact multivariate criterion (Equation 1)
//! and versus relevance-only selection, on the Covid and Forbes queries.

use std::time::Instant;

use bench::{run_method, DatasetSessions, ExperimentData, Method, Scale};
use datagen::{representative_queries, Dataset};
use mesa::baselines::brute_force;
use mesa::{explanation_line, prune, PruningConfig};

fn main() {
    let data = ExperimentData::generate(Scale::from_env());
    let sessions = DatasetSessions::new(&data);
    println!("== Ablation: MCIMR criterion vs exact subset search vs relevance-only ==\n");
    for wq in representative_queries()
        .into_iter()
        .filter(|q| matches!(q.dataset, Dataset::Covid | Dataset::Forbes))
    {
        let prepared = match sessions.prepare(&wq) {
            Ok(p) => p,
            Err(_) => continue,
        };
        let pruned = prune(
            &prepared.encoded,
            &prepared.candidates,
            prepared.exposure(),
            prepared.outcome(),
            &PruningConfig::default(),
        )
        .expect("prune");
        println!("--- {} ---", wq.id);
        // MCIMR (greedy, Eq. 5)
        let mcimr = run_method(&prepared, Method::Mesa, 5).expect("mesa");
        println!(
            "  MCIMR (Eq.5 greedy)     I(O;T|E)={:.3}  E=[{}]  {:?}",
            mcimr.explanation.explainability,
            explanation_line(&mcimr.explanation),
            mcimr.elapsed
        );
        // Exact subset search (Eq. 1 objective)
        let capped: Vec<String> = pruned.kept.iter().take(14).cloned().collect();
        let start = Instant::now();
        let exact = brute_force(&prepared, &capped, 5).expect("brute force");
        println!(
            "  Exact (Eq.1 exhaustive) I(O;T|E)={:.3}  E=[{}]  {:?}",
            exact.explainability,
            explanation_line(&exact),
            start.elapsed()
        );
        // Relevance-only (no redundancy term)
        let topk = run_method(&prepared, Method::TopK, 5).expect("topk");
        println!(
            "  Relevance-only          I(O;T|E)={:.3}  E=[{}]  {:?}\n",
            topk.explanation.explainability,
            explanation_line(&topk.explanation),
            topk.elapsed
        );
    }
    println!("(expected: MCIMR matches the exact search closely at a fraction of the cost; relevance-only is worse)");
}
