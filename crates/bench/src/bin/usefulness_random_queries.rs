//! Section 5.1's usefulness statistic: the fraction of random aggregate
//! queries (10 per dataset) for which MESA's explanation (a) lowers the
//! partial correlation below the original correlation and (b) contains at
//! least one attribute extracted from the knowledge graph. The paper reports
//! 72.5%.

use bench::{DatasetSessions, ExperimentData, Scale};
use datagen::{random_queries, Dataset};

fn main() {
    let data = ExperimentData::generate(Scale::from_env());
    // Random queries share each dataset's session: overlapping contexts land
    // on the same distinct-value sets and reuse the cached extraction.
    let sessions = DatasetSessions::new(&data);
    let mut useful = 0usize;
    let mut total = 0usize;
    println!("== Usefulness over random aggregate queries (Section 5.1) ==\n");
    for dataset in Dataset::all() {
        let frame = data.frame(dataset);
        let queries = random_queries(dataset, frame, 10, 2023).expect("random queries");
        for wq in queries {
            total += 1;
            let prepared = match sessions.prepare(&wq) {
                Ok(p) => p,
                Err(_) => continue,
            };
            let report = match sessions.explain(&wq) {
                Ok(r) => r,
                Err(_) => continue,
            };
            let lowers = report.explanation.explainability < report.explanation.baseline_cmi - 1e-6;
            let uses_kg = report
                .explanation
                .attributes
                .iter()
                .any(|a| prepared.extracted.contains(a));
            let ok = lowers && uses_kg;
            useful += ok as usize;
            println!(
                "{:<14} {:<40} useful={} (ΔI = {:.3}, kg attrs = {})",
                wq.id,
                wq.description,
                ok,
                report.explanation.baseline_cmi - report.explanation.explainability,
                uses_kg
            );
        }
    }
    println!(
        "\nuseful in {useful}/{total} = {:.1}% of random queries (paper: 72.5%)",
        useful as f64 / total.max(1) as f64 * 100.0
    );
}
