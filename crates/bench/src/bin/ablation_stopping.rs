//! Ablation: the responsibility-test stopping rule versus a fixed explanation
//! size. The stopping rule trades a negligible amount of explainability for
//! much smaller (more interpretable) explanations.

use bench::{DatasetSessions, ExperimentData, Scale};
use datagen::representative_queries;
use mesa::{explanation_line, Mesa, MesaConfig};

fn main() {
    let data = ExperimentData::generate(Scale::from_env());
    let sessions = DatasetSessions::new(&data);
    println!("== Ablation: responsibility-test stopping rule vs fixed k ==\n");
    println!(
        "{:<12} {:>6} {:>12} {:>6} {:>12}   explanations (with rule | fixed k)",
        "Query", "|E|", "I(O;T|E)", "|E|", "I(O;T|E)"
    );
    for wq in representative_queries() {
        let prepared = match sessions.prepare(&wq) {
            Ok(p) => p,
            Err(_) => continue,
        };
        let with_rule = Mesa::new().explain_prepared(&prepared);
        let mut fixed_cfg = MesaConfig::default();
        fixed_cfg.mcimr.use_stopping_rule = false;
        let fixed = Mesa::with_config(fixed_cfg).explain_prepared(&prepared);
        if let (Ok(a), Ok(b)) = (with_rule, fixed) {
            println!(
                "{:<12} {:>6} {:>12.3} {:>6} {:>12.3}   [{}] | [{}]",
                wq.id.replace(' ', "-"),
                a.explanation.len(),
                a.explanation.explainability,
                b.explanation.len(),
                b.explanation.explainability,
                explanation_line(&a.explanation),
                explanation_line(&b.explanation),
            );
        }
    }
    println!("\n(expected: the rule keeps explanations at 2-3 attributes with nearly identical explainability)");
}
