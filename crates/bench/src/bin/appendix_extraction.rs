//! Appendix experiment: the KG extraction pipeline itself — entity linking
//! and attribute extraction wall-clock per dataset and hop count, plus the
//! end-to-end workloads of `table1_datasets` (extraction over every dataset's
//! extraction columns) and `appendix_multihop` (prepare + explain at 1 and 2
//! hops).
//!
//! Emits `BENCH_extraction.json`; the committed copy is the canonical
//! post-optimization baseline for the interned/CSR extraction path. With
//! `MESA_SCALE=paper` the run additionally generates the paper-scale Flights
//! dataset (~1M rows) and times generation + extraction end to end.

use std::time::Instant;

use bench::report::BenchReport;
use bench::{scaled_rows, ExperimentData, Scale};
use datagen::Dataset;
use kg::{extract_attributes, EntityLinker, ExtractionConfig};
use mesa::{Mesa, MesaConfig, PrepareConfig};
use tabular::AggregateQuery;

fn main() {
    // The per-dataset entries are always measured at quick scale so the
    // committed record stays comparable across machines and commits; the
    // paper-scale Flights entry is appended when MESA_SCALE=paper.
    let data = ExperimentData::generate(Scale::Quick);
    let mut report = BenchReport::new("extraction");
    println!("== Appendix: extraction pipeline ==\n");

    for (dataset, frame) in &data.frames {
        // Distinct surface forms across all of the dataset's extraction
        // columns — the linker's actual workload.
        let columns: Vec<Vec<String>> = dataset
            .extraction_columns()
            .iter()
            .map(|col| {
                frame
                    .column(col)
                    .expect("column exists")
                    .encode()
                    .labels()
                    .to_vec()
            })
            .collect();
        let n_values: usize = columns.iter().map(|v| v.len()).sum();

        let link_ms = report.time(&format!("{}/link", dataset.name()), n_values, 5, || {
            let linker = EntityLinker::new(&data.graph);
            for values in &columns {
                for v in values {
                    std::hint::black_box(linker.link(v));
                }
            }
        });
        println!(
            "{:<12} link   {n_values:>6} values  {link_ms:>9.3} ms",
            dataset.name()
        );

        for hops in [1usize, 2] {
            let config = ExtractionConfig {
                hops,
                ..Default::default()
            };
            let label = format!("{}/hops{hops}/extract", dataset.name());
            let ms = report.time(&label, n_values, 5, || {
                for values in &columns {
                    let res =
                        extract_attributes(&data.graph, values, "key", config).expect("extraction");
                    std::hint::black_box(res.stats.n_attributes);
                }
            });
            println!(
                "{:<12} hops={hops} {n_values:>6} values  {ms:>9.3} ms",
                dataset.name()
            );
        }
    }

    // End-to-end workload of `table1_datasets`: default-config extraction
    // over every dataset and extraction column.
    let table1_ms = report.time("table1_workload", 0, 5, || {
        for (dataset, frame) in &data.frames {
            for col in dataset.extraction_columns() {
                let values = frame.column(col).expect("column exists").encode();
                let res = extract_attributes(
                    &data.graph,
                    values.labels(),
                    "key",
                    ExtractionConfig::default(),
                )
                .expect("extraction");
                std::hint::black_box(res.stats.n_attributes);
            }
        }
    });
    println!("\ntable1_workload (all datasets, 1 hop): {table1_ms:.3} ms");

    // End-to-end workload of `appendix_multihop`: prepare + explain the Covid
    // query at 1 and 2 hops.
    let query = AggregateQuery::avg("Country", "Deaths_per_100_cases");
    let covid = data.frame(Dataset::Covid);
    for hops in [1usize, 2] {
        let config = MesaConfig {
            prepare: PrepareConfig {
                extraction: ExtractionConfig {
                    hops,
                    ..Default::default()
                },
                ..Default::default()
            },
            ..Default::default()
        };
        let mesa = Mesa::with_config(config);
        let label = format!("multihop_workload/hops{hops}");
        let ms = report.time(&label, covid.n_rows(), 5, || {
            let prepared = mesa
                .prepare(
                    covid,
                    &query,
                    Some(&data.graph),
                    Dataset::Covid.extraction_columns(),
                )
                .expect("prepare");
            let report = mesa.explain_prepared(&prepared).expect("explain");
            std::hint::black_box(report.explanation.len());
        });
        println!("multihop_workload hops={hops}: {ms:.3} ms");
    }

    if Scale::from_env() == Scale::Paper {
        let rows = scaled_rows(Dataset::Flights, Scale::Paper);
        println!("\npaper-scale Flights: generating {rows} rows + extracting ...");
        let start = Instant::now();
        let frame = Dataset::Flights
            .generate(&data.world, rows, 1234)
            .expect("paper-scale generation");
        let gen_ms = start.elapsed().as_secs_f64() * 1e3;
        let start = Instant::now();
        let mut total_attrs = 0usize;
        for col in Dataset::Flights.extraction_columns() {
            let values = frame.column(col).expect("column exists").encode();
            let res = extract_attributes(
                &data.graph,
                values.labels(),
                "key",
                ExtractionConfig::default(),
            )
            .expect("extraction");
            total_attrs += res.stats.n_attributes;
        }
        let extract_ms = start.elapsed().as_secs_f64() * 1e3;
        report.record("Flights/paper/generate", rows, &[gen_ms]);
        report.record("Flights/paper/extract", rows, &[extract_ms]);
        println!(
            "paper-scale Flights: generate {gen_ms:.1} ms, extract {extract_ms:.1} ms \
             ({total_attrs} attributes)"
        );
    }

    report.write_or_warn();
}
