//! Appendix experiment: the work-sharing runtime — a thread-scaling sweep
//! over the reproduction's parallel hot paths, plus a pool-vs-scoped-thread
//! microbenchmark.
//!
//! Emits `BENCH_parallel.json`; the committed copy is the canonical
//! baseline for the persistent-pool runtime. Each entry records the
//! effective thread count it ran at (`threads` field), so the sweep is
//! self-describing: the committed record comes from a **single-core**
//! container (`MESA_THREADS` governs only how many OS threads time-share
//! the one core there — expect flat medians), and regenerating on a
//! multi-core host shows the actual scaling. The sweep caps fan-out
//! concurrency at 1/2/4/8 via `with_thread_cap` inside one process; the
//! pool itself is sized by `MESA_THREADS` (default here: 8 via
//! `set_threads`).
//!
//! Three end-to-end workloads run per thread count:
//!
//! * `extraction/…` — the `table1_workload`: KG attribute extraction over
//!   every dataset's extraction columns (per-distinct-entity fan-out).
//! * `mcimr/…` — the explanation search on a prepared Flights query
//!   (per-candidate CMI scoring fan-out inside the greedy rounds).
//! * `explain_many/…` — the 14-query representative workload batched
//!   through fresh sessions (batch-level fan-out with the pipelines' own
//!   fan-outs nested beneath it — the composition case).
//!
//! The `micro/…` entries compare the pool directly against the retained
//! pre-PR scoped-thread chunker ([`parallel::scoped_map`]) on synthetic
//! uniform and skewed (one 100× item) workloads — `micro/*/pool/t*` vs
//! `micro/*/scoped/t*` at equal thread counts isolates runtime overhead
//! from workload effects; at 1 thread both degenerate to the same serial
//! loop, which is the ≤5%-regression gate the acceptance criteria name.

use bench::report::BenchReport;
use bench::{prepare_workload, DatasetSessions, ExperimentData, Scale};
use datagen::{representative_queries, Dataset};
use mesa::Mesa;
use parallel::{effective_threads, parallel_map, scoped_map, set_threads, with_thread_cap};

/// One synthetic work item: a short deterministic spin whose cost scales
/// with `weight` (black-boxed so the whole loop cannot fold away).
fn spin(weight: u64) -> u64 {
    let mut acc = 0u64;
    for i in 0..weight * 2_000 {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    std::hint::black_box(acc)
}

fn main() {
    // Pool size: MESA_THREADS wins; otherwise ask for 8 so the sweep's caps
    // all bind even on hosts reporting fewer cores.
    let pool_threads = set_threads(8);
    let data = ExperimentData::generate(Scale::Quick);
    let queries = representative_queries();
    let mut report = BenchReport::new("parallel");
    println!("== Appendix: work-sharing runtime (thread-scaling sweep) ==");
    println!("pool size: {pool_threads} threads\n");

    let caps: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&c| c <= pool_threads)
        .collect();

    // -- Microbenchmark: pool vs the retained scoped-thread reference ----
    let uniform: Vec<u64> = vec![1; 512];
    let mut skewed: Vec<u64> = vec![1; 512];
    skewed[0] = 100; // one item is 100× the rest — the static-chunk killer
    for &cap in &caps {
        with_thread_cap(cap, || {
            let t = effective_threads();
            report.time(
                &format!("micro/uniform/pool/t{t}"),
                uniform.len(),
                5,
                || {
                    std::hint::black_box(parallel_map(&uniform, |_, &w| spin(w)));
                },
            );
            report.time(
                &format!("micro/uniform/scoped/t{t}"),
                uniform.len(),
                5,
                || {
                    std::hint::black_box(scoped_map(&uniform, t, |_, &w| spin(w)));
                },
            );
            report.time(&format!("micro/skewed/pool/t{t}"), skewed.len(), 5, || {
                std::hint::black_box(parallel_map(&skewed, |_, &w| spin(w)));
            });
            report.time(
                &format!("micro/skewed/scoped/t{t}"),
                skewed.len(),
                5,
                || {
                    std::hint::black_box(scoped_map(&skewed, t, |_, &w| spin(w)));
                },
            );
        });
    }

    // -- Extraction workload (table1: all datasets, 1 hop) ---------------
    for &cap in &caps {
        with_thread_cap(cap, || {
            let t = effective_threads();
            report.time(&format!("extraction/t{t}"), 0, 5, || {
                for (dataset, frame) in &data.frames {
                    for col in dataset.extraction_columns() {
                        let values = frame.column(col).expect("column exists").encode();
                        let res = kg::extract_attributes(
                            &data.graph,
                            values.labels(),
                            "key",
                            kg::ExtractionConfig::default(),
                        )
                        .expect("extraction");
                        std::hint::black_box(res.stats.n_attributes);
                    }
                }
            });
        });
    }

    // -- MCIMR candidate scoring (explain a prepared Flights query) ------
    let flights_query = queries
        .iter()
        .find(|wq| wq.dataset == Dataset::Flights)
        .expect("workload has a Flights query");
    let prepared = prepare_workload(&data, flights_query).expect("prepare");
    let mesa = Mesa::new();
    for &cap in &caps {
        with_thread_cap(cap, || {
            let t = effective_threads();
            report.time(&format!("mcimr/t{t}"), prepared.frame.n_rows(), 5, || {
                std::hint::black_box(mesa.explain_prepared(&prepared).expect("explain"));
            });
        });
    }

    // -- Batched explain_many over the 14-query workload -----------------
    // Fresh sessions per repetition and one batch per dataset: every query
    // is a miss, so the batch-level fan-out runs with the per-query
    // pipelines' own fan-outs nested beneath it.
    let mut groups: Vec<(Dataset, Vec<tabular::AggregateQuery>)> = Vec::new();
    for wq in &queries {
        match groups.iter_mut().find(|(d, _)| *d == wq.dataset) {
            Some((_, qs)) => qs.push(wq.query.clone()),
            None => groups.push((wq.dataset, vec![wq.query.clone()])),
        }
    }
    for &cap in &caps {
        with_thread_cap(cap, || {
            let t = effective_threads();
            report.time(&format!("explain_many/t{t}"), queries.len(), 3, || {
                let sessions = DatasetSessions::new(&data);
                for (dataset, batch) in &groups {
                    let results = sessions.session(*dataset).explain_many(batch);
                    std::hint::black_box(results.len());
                }
            });
        });
    }

    println!("{:<32} {:>8} {:>12}", "entry", "threads", "median ms");
    for e in report.entries() {
        println!("{:<32} {:>8} {:>12.3}", e.label, e.threads, e.median_ms);
    }
    report.write_or_warn();
}
