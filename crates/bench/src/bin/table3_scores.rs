//! Table 3: average explanation scores per method.
//!
//! The paper uses a 150-subject MTurk study; we substitute the simulated
//! judge (see `bench::judge`) that scores each explanation against the
//! ground-truth confounders of the generating world model on the same 1–5
//! scale, and report the mean and variance per method.

use std::collections::HashMap;

use bench::{
    ground_truth_for, judge_explanation, run_all_methods, DatasetSessions, ExperimentData, Method,
    Scale,
};
use datagen::representative_queries;

fn main() {
    let data = ExperimentData::generate(Scale::from_env());
    let sessions = DatasetSessions::new(&data);
    let mut scores: HashMap<Method, Vec<f64>> = HashMap::new();

    for wq in representative_queries() {
        let prepared = match sessions.prepare(&wq) {
            Ok(p) => p,
            Err(_) => continue,
        };
        let truth = ground_truth_for(&wq.id);
        if let Ok(results) = run_all_methods(&prepared, 5) {
            for r in results {
                let s = judge_explanation(&r.explanation, &truth);
                scores.entry(r.method).or_default().push(s.score);
            }
        }
    }

    println!("== Table 3: average explanation scores (simulated judge, 1-5) ==\n");
    println!(
        "{:<14} {:>13} {:>18}",
        "Baseline", "Average Score", "Average Variance"
    );
    let mut rows: Vec<(Method, f64, f64)> = scores
        .into_iter()
        .map(|(m, v)| {
            let mean = v.iter().sum::<f64>() / v.len().max(1) as f64;
            let var =
                v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / v.len().max(1) as f64;
            (m, mean, var)
        })
        .collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    for (m, mean, var) in rows {
        println!("{:<14} {:>13.2} {:>18.2}", m.name(), mean, var);
    }
    println!(
        "\n(paper, human judges: Brute-Force 3.8, MESA- 3.7, MESA 3.5, HypDB 2.8, Top-K 2.1, LR 1.8;\n\
         the reproduction checks the ordering, not the absolute values)"
    );
}
