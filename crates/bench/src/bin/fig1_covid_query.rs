//! Figure 1: the motivating Covid-19 query — average deaths per 100 cases per
//! country — and MESA's explanation of the observed correlation. The
//! end-to-end explain time is recorded in `BENCH_fig1.json`.

use bench::{BenchReport, ExperimentData, Scale, DEFAULT_REPS};
use datagen::Dataset;
use mesa::{report_summary, Mesa};
use tabular::AggregateQuery;

fn main() {
    let data = ExperimentData::generate(Scale::from_env());
    let covid = data.frame(Dataset::Covid);
    let query = AggregateQuery::avg("Country", "Deaths_per_100_cases");

    println!("== Figure 1: visualisation of the query results ==\n");
    println!("{}\n", query.to_sql("Covid-Data"));
    let result = query.run(covid).expect("query runs");
    let sorted = result
        .sort_by("avg(Deaths_per_100_cases)")
        .expect("sortable");
    // Show the head and tail of the distribution, like the paper's bar chart.
    println!("{}", sorted.head(10).to_pretty_string(10));
    println!("... (total {} countries)\n", sorted.n_rows());

    println!("== MESA explanation of the Country ~ Deaths correlation ==\n");
    let mesa = Mesa::new();
    let mut bench_report = BenchReport::new("fig1");
    let mut report = None;
    bench_report.time(
        "Covid/explain_end_to_end",
        covid.n_rows(),
        DEFAULT_REPS,
        || {
            report = Some(
                mesa.explain(
                    covid,
                    &query,
                    Some(&data.graph),
                    Dataset::Covid.extraction_columns(),
                )
                .expect("explanation"),
            );
        },
    );
    println!("{}", report_summary(&report.expect("at least one rep ran")));
    bench_report.write_or_warn();
}
