//! Appendix experiment: the effect of extracting attributes from more than
//! one hop in the knowledge graph — explanation stability, candidate growth,
//! and running time.

use std::time::Instant;

use bench::{ExperimentData, Scale};
use datagen::Dataset;
use kg::ExtractionConfig;
use mesa::{explanation_line, Mesa, MesaConfig, PrepareConfig};
use tabular::AggregateQuery;

fn main() {
    let data = ExperimentData::generate(Scale::from_env());
    println!("== Appendix: 1-hop vs 2-hop extraction ==\n");
    let query = AggregateQuery::avg("Country", "Deaths_per_100_cases");
    let covid = data.frame(Dataset::Covid);
    for hops in [1usize, 2] {
        let config = MesaConfig {
            prepare: PrepareConfig {
                extraction: ExtractionConfig {
                    hops,
                    ..Default::default()
                },
                ..Default::default()
            },
            ..Default::default()
        };
        let mesa = Mesa::with_config(config);
        // One session per hop configuration: the hops are part of the
        // extraction cache key, so the two cannot alias.
        let session = mesa.session(
            covid,
            Some(&data.graph),
            Dataset::Covid.extraction_columns(),
        );
        let start = Instant::now();
        let prepared = session.prepare(&query).expect("prepare");
        let report = session.explain(&query).expect("explain");
        let elapsed = start.elapsed();
        println!(
            "hops = {hops}: {} candidate attributes ({} extracted), explanation = [{}], {:?}",
            prepared.candidates.len(),
            prepared.extracted.len(),
            explanation_line(&report.explanation),
            elapsed
        );
    }
    println!(
        "\n(paper: explanations are essentially unchanged by 2-hop extraction while the candidate\n\
         count grows ~145% and running times increase — most relevant information is one hop away)"
    );
}
