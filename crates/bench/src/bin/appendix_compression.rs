//! Appendix experiment: sealed compressed columns — per-column byte
//! footprints (dense vs sealed) and run-aware kernel timings against the
//! dense reference path, per dataset.
//!
//! Emits `BENCH_compression.json`. Entry labels come in two families:
//!
//! * `<dataset>/footprint/<column>/dense` and
//!   `<dataset>/footprint/<column>/<encoding>` — **bytes**, not
//!   milliseconds, carried in the `median_ms` slot of the shared schema
//!   (`reps` is 1; the label family makes the unit unambiguous). The sealed
//!   entry's label records the encoding the heuristic picked (`rle`,
//!   `bitpacked`, `delta`, or `dense`). `<dataset>/footprint/total/*` sums
//!   the per-column payloads.
//! * `<dataset>/kernel/<measure>_{dense,sealed}` — wall-clock milliseconds
//!   for the same estimate computed over the mutable frame (dense reference
//!   oracle) and the sealed frame (run-aware fold). The two are
//!   bit-identical in value; only the storage the kernel reads differs.
//!
//! The committed copy is the paper-scale (`MESA_SCALE=paper`) baseline: it
//! is the record of the footprint reduction sealing buys on the session's
//! prepared-query memo, and of the sealed kernel paths holding the dense
//! paths' throughput.

use bench::report::BenchReport;
use bench::{prepare_workload, ExperimentData, Scale};
use datagen::representative_queries;

fn main() {
    let scale = Scale::from_env();
    let data = ExperimentData::generate(scale);
    let mut report = BenchReport::new("compression");
    println!("== Appendix: sealed column footprints and run-aware kernel ==\n");

    let queries = representative_queries();
    for (dataset, _) in &data.frames {
        let wq = match queries.iter().find(|q| q.dataset == *dataset) {
            Some(wq) => wq,
            None => continue,
        };
        let name = dataset.name();
        let prepared = prepare_workload(&data, wq).expect("prepare");
        let mutable = prepared.encoded.clone();
        let mut sealed = prepared.encoded.clone();
        sealed.seal();
        let rows = sealed.n_rows();

        // Per-column byte accounting from the sealing decisions.
        let mut dense_total = 0usize;
        let mut sealed_total = 0usize;
        for col in sealed.encoding_report() {
            dense_total += col.dense_bytes;
            sealed_total += col.sealed_bytes;
            report.record(
                &format!("{name}/footprint/{}/dense", col.name),
                rows,
                &[col.dense_bytes as f64],
            );
            report.record(
                &format!("{name}/footprint/{}/{}", col.name, col.encoding.name()),
                rows,
                &[col.sealed_bytes as f64],
            );
        }
        report.record(
            &format!("{name}/footprint/total/dense"),
            rows,
            &[dense_total as f64],
        );
        report.record(
            &format!("{name}/footprint/total/sealed"),
            rows,
            &[sealed_total as f64],
        );
        let ratio = dense_total as f64 / (sealed_total.max(1)) as f64;

        // Kernel timings: the paper's measures over the same frame in both
        // lifecycle states. Values are bit-identical; only storage differs.
        let o = prepared.outcome();
        let t = prepared.exposure();
        let z: Vec<&str> = prepared
            .candidates
            .iter()
            .take(2)
            .map(|s| s.as_str())
            .collect();
        let mi_dense = report.time(&format!("{name}/kernel/mi_dense"), rows, 5, || {
            std::hint::black_box(mutable.mutual_information(o, t, None).expect("mi"));
        });
        let mi_sealed = report.time(&format!("{name}/kernel/mi_sealed"), rows, 5, || {
            std::hint::black_box(sealed.mutual_information(o, t, None).expect("mi"));
        });
        let cmi_dense = report.time(&format!("{name}/kernel/cmi_dense"), rows, 5, || {
            std::hint::black_box(mutable.cmi(o, t, &z, None).expect("cmi"));
        });
        let cmi_sealed = report.time(&format!("{name}/kernel/cmi_sealed"), rows, 5, || {
            std::hint::black_box(sealed.cmi(o, t, &z, None).expect("cmi"));
        });

        // The estimates themselves must agree bit for bit across states.
        let a = mutable.cmi(o, t, &z, None).expect("cmi");
        let b = sealed.cmi(o, t, &z, None).expect("cmi");
        assert_eq!(a.to_bits(), b.to_bits(), "sealed CMI drifted on {name}");

        println!(
            "{name:<12} {rows:>8} rows  codes {:>9} B -> {:>8} B ({ratio:>4.1}x)  \
             MI {mi_dense:>7.3} -> {mi_sealed:>7.3} ms  CMI {cmi_dense:>7.3} -> {cmi_sealed:>7.3} ms",
            dense_total, sealed_total
        );
        for col in sealed.encoding_report() {
            println!(
                "    {:<28} {:<9} {:>9} B -> {:>8} B  ({} runs)",
                col.name,
                col.encoding.name(),
                col.dense_bytes,
                col.sealed_bytes,
                col.n_runs
            );
        }
    }

    report.write_or_warn();
}
