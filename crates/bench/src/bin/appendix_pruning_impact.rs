//! Appendix experiment: how many candidate attributes the offline and online
//! pruning phases drop on each dataset.

use bench::{DatasetSessions, ExperimentData, Scale};
use datagen::representative_queries;
use mesa::{prune_offline, prune_online, PruningConfig};

fn main() {
    let data = ExperimentData::generate(Scale::from_env());
    let sessions = DatasetSessions::new(&data);
    println!("== Appendix: impact of pruning per dataset ==\n");
    println!(
        "{:<12} {:>8} {:>16} {:>16}",
        "Dataset", "|A|", "% dropped offline", "% dropped online"
    );
    let mut seen = std::collections::HashSet::new();
    for wq in representative_queries() {
        if !seen.insert(wq.dataset) {
            continue; // one representative query per dataset
        }
        let prepared = match sessions.prepare(&wq) {
            Ok(p) => p,
            Err(_) => continue,
        };
        let config = PruningConfig::default();
        let offline =
            prune_offline(&prepared.encoded, &prepared.candidates, &config).expect("offline");
        let online = prune_online(
            &prepared.encoded,
            &offline.kept,
            prepared.exposure(),
            prepared.outcome(),
            &config,
        )
        .expect("online");
        let n = prepared.candidates.len().max(1);
        println!(
            "{:<12} {:>8} {:>15.1}% {:>15.1}%",
            wq.dataset.name(),
            prepared.candidates.len(),
            offline.dropped.len() as f64 / n as f64 * 100.0,
            online.dropped.len() as f64 / offline.kept.len().max(1) as f64 * 100.0,
        );
    }
    println!(
        "\n(paper: offline drops 41-73% of extracted attributes; online drops a further 3-14%)"
    );
}
