//! Figure 5: running time as a function of the number of rows in the dataset
//! (rows removed uniformly at random). Timings are medians over
//! [`bench::DEFAULT_REPS`] repetitions and are also written to
//! `BENCH_fig5.json`.

use bench::{prepare_workload, BenchReport, ExperimentData, Scale, DEFAULT_REPS};
use datagen::{representative_queries_for, Dataset};
use mesa::{Mesa, MesaConfig, PruningConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let data = ExperimentData::generate(Scale::from_env());
    let mut report = BenchReport::new("fig5");
    println!("== Figure 5: running time vs number of rows ==\n");
    for dataset in [Dataset::StackOverflow, Dataset::Flights, Dataset::Forbes] {
        let queries = representative_queries_for(dataset);
        let wq = &queries[0];
        let full = data.frame(dataset);
        println!("--- {} ({}) ---", dataset.name(), wq.id);
        println!(
            "{:>10} {:>14} {:>18} {:>12}",
            "#rows", "No Pruning", "Offline Pruning", "MCIMR"
        );
        let mut rng = StdRng::seed_from_u64(5);
        for fraction in [0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
            let n = ((full.n_rows() as f64) * fraction).round() as usize;
            let mut rows: Vec<usize> = (0..full.n_rows()).collect();
            rows.shuffle(&mut rng);
            rows.truncate(n.max(50));
            let sample = full.take(&rows);
            let mut sample_data = ExperimentData {
                world: data.world.clone(),
                graph: data.graph.clone(),
                frames: vec![(dataset, sample)],
                scale: data.scale,
            };
            sample_data
                .frames
                .extend(data.frames.iter().filter(|(d, _)| *d != dataset).cloned());
            let prepared = match prepare_workload(&sample_data, wq) {
                Ok(p) => p,
                Err(_) => continue,
            };
            let mut times = Vec::new();
            for (variant, config) in [
                (
                    "No Pruning",
                    MesaConfig {
                        pruning: PruningConfig::disabled(),
                        ..Default::default()
                    },
                ),
                (
                    "Offline Pruning",
                    MesaConfig {
                        pruning: PruningConfig::offline_only(),
                        ..Default::default()
                    },
                ),
                ("MCIMR", MesaConfig::default()),
            ] {
                let system = Mesa::with_config(config);
                let label = format!("{}/{}/{}", dataset.name(), variant, rows.len());
                let median = report.time(&label, rows.len(), DEFAULT_REPS, || {
                    let _ = system.explain_prepared(&prepared).expect("explain");
                });
                times.push(median / 1e3);
            }
            println!(
                "{:>10} {:>13.3}s {:>17.3}s {:>11.3}s",
                rows.len(),
                times[0],
                times[1],
                times[2]
            );
        }
        println!();
    }
    println!(
        "(expected shape: SO and Flights are nearly flat in the row count because group sizes stay\n\
         large; Forbes grows roughly linearly because its groups are tiny — as in the paper's Figure 5)"
    );
    report.write_or_warn();
}
