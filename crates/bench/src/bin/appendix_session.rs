//! Appendix experiment: the session layer — cross-query caching and batched
//! explanation — on the 14-query representative workload.
//!
//! Emits `BENCH_session.json`; the committed copy is the canonical record of
//! the serving-path speedups. Four regimes are timed over the same queries:
//!
//! * `workload/cold_explain` — the one-shot path: every query pays context,
//!   KG extraction, join, binning, encoding, and the explanation search.
//! * `workload/session_first` — a fresh [`DatasetSessions`] per repetition:
//!   first contact with each query, but same-dataset queries share the
//!   extraction cache within the pass.
//! * `workload/warm_explain` — the same sessions asked again: every report
//!   is served from the fingerprint memo.
//! * `workload/batched_cold` / `workload/batched_warm` — the same two
//!   regimes through `Session::explain_many`, batching each dataset's
//!   queries in one call.
//!
//! Before timing, the binary verifies that the warm and batched reports are
//! byte-identical to the cold ones (the committed equivalence test lives in
//! `tests/session.rs`; this is the same check at the workload's scale).

use bench::report::BenchReport;
use bench::{DatasetSessions, ExperimentData, Scale};
use datagen::{representative_queries, Dataset, WorkloadQuery};
use mesa::{report_summary, Mesa, MesaReport};

/// Full-precision observable content of a report (summary + exact floats).
fn render(report: &MesaReport) -> String {
    format!("{}\n{:?}", report_summary(report), report.explanation)
}

/// The workload grouped per dataset, in workload order.
fn grouped(queries: &[WorkloadQuery]) -> Vec<(Dataset, Vec<tabular::AggregateQuery>)> {
    let mut groups: Vec<(Dataset, Vec<tabular::AggregateQuery>)> = Vec::new();
    for wq in queries {
        match groups.iter_mut().find(|(d, _)| *d == wq.dataset) {
            Some((_, qs)) => qs.push(wq.query.clone()),
            None => groups.push((wq.dataset, vec![wq.query.clone()])),
        }
    }
    groups
}

fn main() {
    // Always measured at quick scale so the committed record stays comparable
    // across machines and commits.
    let data = ExperimentData::generate(Scale::Quick);
    let queries = representative_queries();
    let groups = grouped(&queries);
    let total_rows: usize = data.frames.iter().map(|(_, f)| f.n_rows()).sum();
    let mut report = BenchReport::new("session");
    println!("== Appendix: explanation sessions (cold / warm / batched) ==\n");

    // Correctness first: cold one-shot reports vs the session's warm and
    // batched paths, byte for byte.
    let mesa = Mesa::new();
    let cold_reports: Vec<Option<String>> = queries
        .iter()
        .map(|wq| {
            mesa.explain(
                data.frame(wq.dataset),
                &wq.query,
                Some(&data.graph),
                wq.dataset.extraction_columns(),
            )
            .ok()
            .map(|r| render(&r))
        })
        .collect();
    let sessions = DatasetSessions::new(&data);
    let mut verified = 0;
    for (wq, cold) in queries.iter().zip(&cold_reports) {
        let warm = sessions.explain(wq).ok().map(|r| render(&r));
        assert_eq!(&warm, cold, "{}: warm differs from cold", wq.id);
        let batched = sessions
            .session(wq.dataset)
            .explain_many(std::slice::from_ref(&wq.query));
        let batched = batched[0].as_ref().ok().map(|r| render(r));
        assert_eq!(&batched, cold, "{}: batched differs from cold", wq.id);
        if cold.is_some() {
            verified += 1;
        }
    }
    println!("warm + batched reports byte-identical to cold on {verified}/14 queries\n");

    // Cold: the one-shot path, per query.
    let cold_ms = report.time("workload/cold_explain", total_rows, 3, || {
        for wq in &queries {
            let _ = std::hint::black_box(mesa.explain(
                data.frame(wq.dataset),
                &wq.query,
                Some(&data.graph),
                wq.dataset.extraction_columns(),
            ));
        }
    });

    // First pass over fresh sessions: extraction shared within the pass.
    let first_ms = report.time("workload/session_first", total_rows, 3, || {
        let fresh = DatasetSessions::new(&data);
        for wq in &queries {
            let _ = std::hint::black_box(fresh.explain(wq));
        }
    });

    // Warm: the primed sessions from the verification pass above.
    let warm_ms = report.time("workload/warm_explain", total_rows, 200, || {
        for wq in &queries {
            let _ = std::hint::black_box(sessions.explain(wq));
        }
    });

    // Batched: explain_many per dataset, cold sessions then warm ones.
    let batched_cold_ms = report.time("workload/batched_cold", total_rows, 3, || {
        let fresh = DatasetSessions::new(&data);
        for (dataset, qs) in &groups {
            let _ = std::hint::black_box(fresh.session(*dataset).explain_many(qs));
        }
    });
    let batched_warm_ms = report.time("workload/batched_warm", total_rows, 200, || {
        for (dataset, qs) in &groups {
            let _ = std::hint::black_box(sessions.session(*dataset).explain_many(qs));
        }
    });

    println!("14-query workload (median over reps):");
    println!("  cold one-shot explain      {cold_ms:>10.3} ms");
    println!(
        "  session first pass         {first_ms:>10.3} ms   ({:.2}x vs cold)",
        cold_ms / first_ms.max(1e-9)
    );
    println!(
        "  warm (memoized) explain    {warm_ms:>10.3} ms   ({:.0}x vs cold)",
        cold_ms / warm_ms.max(1e-9)
    );
    println!(
        "  batched cold explain_many  {batched_cold_ms:>10.3} ms   ({:.2}x vs cold)",
        cold_ms / batched_cold_ms.max(1e-9)
    );
    println!(
        "  batched warm explain_many  {batched_warm_ms:>10.3} ms   (sequential warm {warm_ms:.3} ms)"
    );

    // Cache accounting for the primed session set.
    println!("\nsession cache stats after the workload:");
    for (dataset, _) in &groups {
        let stats = sessions.session(*dataset).stats();
        println!(
            "  {:<14} extraction {} entries ({} hits / {} misses), prepared {} memoized, reports {} memoized",
            dataset.name(),
            stats.extraction_entries,
            stats.extraction_hits,
            stats.extraction_misses,
            stats.prepared_misses,
            stats.report_misses,
        );
    }

    report.write_or_warn();
}
