//! Figure 4: running time as a function of the number of candidate
//! attributes, for No-Pruning, Offline-Pruning, and full MCIMR. Timings are
//! medians over [`bench::DEFAULT_REPS`] repetitions, also written to
//! `BENCH_fig4.json`.

use bench::{BenchReport, DatasetSessions, ExperimentData, Scale, DEFAULT_REPS};
use datagen::{representative_queries_for, Dataset};
use mesa::{Mesa, MesaConfig, PruningConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn variant(name: &str) -> MesaConfig {
    match name {
        "No Pruning" => MesaConfig {
            pruning: PruningConfig::disabled(),
            ..Default::default()
        },
        "Offline Pruning" => MesaConfig {
            pruning: PruningConfig::offline_only(),
            ..Default::default()
        },
        _ => MesaConfig::default(),
    }
}

fn main() {
    let data = ExperimentData::generate(Scale::from_env());
    let sessions = DatasetSessions::new(&data);
    let mut report = BenchReport::new("fig4");
    println!("== Figure 4: running time vs number of candidate attributes ==\n");
    for dataset in [Dataset::StackOverflow, Dataset::Flights, Dataset::Forbes] {
        let queries = representative_queries_for(dataset);
        let wq = &queries[0];
        let prepared = match sessions.prepare(wq) {
            Ok(p) => p,
            Err(e) => {
                println!("({}: preparation failed: {e})", dataset.name());
                continue;
            }
        };
        println!("--- {} ({}) ---", dataset.name(), wq.id);
        println!(
            "{:>8} {:>14} {:>18} {:>12}",
            "|A|", "No Pruning", "Offline Pruning", "MCIMR"
        );
        let max = prepared.candidates.len();
        let steps: Vec<usize> = [50usize, 150, 250, 350, 450, 550, 650, 750]
            .iter()
            .copied()
            .filter(|s| *s <= max)
            .chain([max])
            .collect();
        let mut rng = StdRng::seed_from_u64(99);
        for n_attrs in steps {
            // Random subset of the candidate attributes, as in the paper.
            let mut cands = prepared.candidates.clone();
            cands.shuffle(&mut rng);
            cands.truncate(n_attrs);
            let mut sub = prepared.as_ref().clone();
            sub.candidates = cands;
            let mut times = Vec::new();
            for name in ["No Pruning", "Offline Pruning", "MCIMR"] {
                let system = Mesa::with_config(variant(name));
                let label = format!("{}/{}/{}attrs", dataset.name(), name, n_attrs);
                let median = report.time(&label, sub.frame.n_rows(), DEFAULT_REPS, || {
                    let _ = system.explain_prepared(&sub).expect("explain");
                });
                times.push(median / 1e3);
            }
            println!(
                "{:>8} {:>13.3}s {:>17.3}s {:>11.3}s",
                n_attrs, times[0], times[1], times[2]
            );
        }
        println!();
    }
    println!("(expected shape: near-linear growth in |A|; No Pruning slowest, MCIMR fastest on large datasets)");
    report.write_or_warn();
}
