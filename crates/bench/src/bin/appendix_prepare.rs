//! Appendix experiment: the prepare pipeline (context → KG join → binning →
//! encoding) stage by stage and end to end, per dataset, plus the full
//! 14-query workload of `table2_explanations`/`table3_scores`.
//!
//! Emits `BENCH_prepare.json`; the committed copy is the canonical record of
//! the columnar prepare path (code-based gather join, borrowed-slice binning,
//! reused bin codes). Two kinds of reference entries ride along so the file
//! carries its own before/after comparison on any machine: the
//! `<dataset>/join_rendered` entries time the retained rendered-string
//! reference join ([`tabular::join_rendered`]) over the same inputs, and the
//! `<dataset>/bin` + `<dataset>/encode_rehash` pair times the standalone
//! bin-then-re-encode decomposition, versus `<dataset>/bin_encode` which is
//! the shipping `bin_frame_encoded` → `from_frame_with` path that
//! `prepare_query` actually runs.

use bench::report::BenchReport;
use bench::{prepare_workload, ExperimentData, Scale};
use datagen::representative_queries;
use infotheory::EncodedFrame;
use mesa::{extract_and_join, ExtractionJoin, PrepareConfig};
use tabular::{bin_frame, bin_frame_encoded, DataFrame, JoinKind};

/// The extraction tables a dataset's first representative query joins in —
/// produced by the same [`mesa::extract_and_join`] stage `prepare_query`
/// runs, so the stage timings below replay exactly the real work.
struct JoinStage {
    filtered: DataFrame,
    tables: Vec<ExtractionJoin>,
}

fn join_stage_inputs(data: &ExperimentData, wq: &datagen::WorkloadQuery) -> JoinStage {
    let config = PrepareConfig::default();
    let frame = data.frame(wq.dataset);
    let filtered = wq.query.apply_context(frame).expect("context applies");
    let (_, tables) = extract_and_join(
        &filtered,
        &data.graph,
        wq.dataset.extraction_columns(),
        config.extraction,
    )
    .expect("extraction stage");
    JoinStage { filtered, tables }
}

fn replay_joins<F>(stage: &JoinStage, join_fn: F) -> DataFrame
where
    F: Fn(&DataFrame, &DataFrame, &str, &str) -> tabular::Result<DataFrame>,
{
    let mut joined = stage.filtered.clone();
    for ej in &stage.tables {
        joined = join_fn(&joined, &ej.table, &ej.column, &ej.key).expect("join");
    }
    joined
}

fn main() {
    // Always measured at quick scale so the committed record stays comparable
    // across machines and commits.
    let data = ExperimentData::generate(Scale::Quick);
    let mut report = BenchReport::new("prepare");
    println!("== Appendix: prepare pipeline (context → join → bin → encode) ==\n");

    let queries = representative_queries();
    for (dataset, _) in &data.frames {
        let wq = match queries.iter().find(|q| q.dataset == *dataset) {
            Some(wq) => wq,
            None => continue,
        };
        let name = dataset.name();
        let stage = join_stage_inputs(&data, wq);
        let rows = stage.filtered.n_rows();

        let join_ms = report.time(&format!("{name}/join"), rows, 5, || {
            std::hint::black_box(replay_joins(&stage, |l, r, on, key| {
                tabular::join(l, r, on, key, JoinKind::Left)
            }));
        });
        let rendered_ms = report.time(&format!("{name}/join_rendered"), rows, 5, || {
            std::hint::black_box(replay_joins(&stage, |l, r, on, key| {
                tabular::join_rendered(l, r, on, key, JoinKind::Left)
            }));
        });

        let joined = replay_joins(&stage, |l, r, on, key| {
            tabular::join(l, r, on, key, JoinKind::Left)
        });
        let config = PrepareConfig::default();
        // The shipping pipeline's discretisation: binning that emits codes,
        // threaded into the encoded frame (what prepare_query runs).
        let bin_encode_ms = report.time(&format!("{name}/bin_encode"), rows, 5, || {
            let (binned, encodings) =
                bin_frame_encoded(&joined, config.n_bins, config.bin_strategy, &[])
                    .expect("binning");
            std::hint::black_box(EncodedFrame::from_frame_with(&binned, encodings));
        });
        // Reference decomposition of the same work on the standalone APIs:
        // bin without code emission, then re-encode every column from
        // scratch (the pre-columnar shape of the encode step).
        let bin_ms = report.time(&format!("{name}/bin"), rows, 5, || {
            std::hint::black_box(
                bin_frame(&joined, config.n_bins, config.bin_strategy, &[]).expect("binning"),
            );
        });
        let binned = bin_frame(&joined, config.n_bins, config.bin_strategy, &[]).expect("binning");
        let encode_ms = report.time(&format!("{name}/encode_rehash"), rows, 5, || {
            std::hint::black_box(EncodedFrame::from_frame(&binned));
        });
        let prepare_ms = report.time(&format!("{name}/prepare"), rows, 5, || {
            std::hint::black_box(prepare_workload(&data, wq).expect("prepare"));
        });
        println!(
            "{name:<12} {rows:>6} rows  join {join_ms:>8.3} ms (rendered {rendered_ms:>8.3})  \
             bin+encode {bin_encode_ms:>8.3} ms (split {bin_ms:>8.3} + {encode_ms:>8.3})  \
             prepare {prepare_ms:>8.3} ms"
        );
    }

    // The full quick-scale prepare workload behind table2/table3: all 14
    // representative queries end to end.
    let all_ms = report.time("all_queries/prepare", 0, 5, || {
        for wq in &queries {
            if let Ok(p) = prepare_workload(&data, wq) {
                std::hint::black_box(p.candidates.len());
            }
        }
    });
    println!("\nall 14 representative queries prepare: {all_ms:.3} ms");

    report.write_or_warn();
}
