//! Table 2: the explanations every method produces for the 14 representative
//! queries.

use bench::{prepare_workload, run_all_methods, ExperimentData, Scale};
use datagen::representative_queries;
use mesa::explanation_line;

fn main() {
    let data = ExperimentData::generate(Scale::from_env());
    println!("== Table 2: explanations per method for the 14 representative queries ==\n");
    for wq in representative_queries() {
        println!("--- {} — {} ---", wq.id, wq.description);
        let prepared = match prepare_workload(&data, &wq) {
            Ok(p) => p,
            Err(e) => {
                println!("  (preparation failed: {e})\n");
                continue;
            }
        };
        match run_all_methods(&prepared, 5) {
            Ok(results) => {
                for r in results {
                    println!(
                        "  {:<12} {:<55} I(O;T|E)={:.3}  [{:?}]",
                        r.method.name(),
                        explanation_line(&r.explanation),
                        r.explanation.explainability,
                        r.elapsed
                    );
                }
            }
            Err(e) => println!("  (explanation failed: {e})"),
        }
        println!();
    }
}
