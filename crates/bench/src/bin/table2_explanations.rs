//! Table 2: the explanations every method produces for the 14 representative
//! queries.

use bench::{run_all_methods, DatasetSessions, ExperimentData, Scale};
use datagen::representative_queries;
use mesa::explanation_line;

fn main() {
    let data = ExperimentData::generate(Scale::from_env());
    // One session per dataset: queries of the same dataset share the KG
    // extraction instead of re-extracting the universal relation per query.
    let sessions = DatasetSessions::new(&data);
    println!("== Table 2: explanations per method for the 14 representative queries ==\n");
    for wq in representative_queries() {
        println!("--- {} — {} ---", wq.id, wq.description);
        let prepared = match sessions.prepare(&wq) {
            Ok(p) => p,
            Err(e) => {
                println!("  (preparation failed: {e})\n");
                continue;
            }
        };
        match run_all_methods(&prepared, 5) {
            Ok(results) => {
                for r in results {
                    println!(
                        "  {:<12} {:<55} I(O;T|E)={:.3}  [{:?}]",
                        r.method.name(),
                        explanation_line(&r.explanation),
                        r.explanation.explainability,
                        r.elapsed
                    );
                }
            }
            Err(e) => println!("  (explanation failed: {e})"),
        }
        println!();
    }
}
