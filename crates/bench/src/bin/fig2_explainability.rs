//! Figure 2: distance of each method's explainability score from
//! Brute-Force's, on the Covid and Forbes queries (the two datasets where the
//! exhaustive search is feasible). The per-query MESA running time is
//! recorded in `BENCH_fig2.json`.

use bench::{
    run_all_methods, run_method, BenchReport, DatasetSessions, ExperimentData, Method, Scale,
    DEFAULT_REPS,
};
use datagen::{representative_queries, Dataset};

fn main() {
    let data = ExperimentData::generate(Scale::from_env());
    let sessions = DatasetSessions::new(&data);
    let mut bench_report = BenchReport::new("fig2");
    println!("== Figure 2: distance from Brute-Force explainability ==\n");
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "Query", "LR", "Top-K", "HypDB", "MESA", "MESA-"
    );
    for wq in representative_queries()
        .into_iter()
        .filter(|q| matches!(q.dataset, Dataset::Covid | Dataset::Forbes))
    {
        let prepared = match sessions.prepare(&wq) {
            Ok(p) => p,
            Err(_) => continue,
        };
        let results = match run_all_methods(&prepared, 5) {
            Ok(r) => r,
            Err(_) => continue,
        };
        bench_report.time(
            &format!("{}/MESA", wq.id.replace(' ', "-")),
            prepared.frame.n_rows(),
            DEFAULT_REPS,
            || {
                let _ = run_method(&prepared, Method::Mesa, 5);
            },
        );
        let score = |m: Method| {
            results
                .iter()
                .find(|r| r.method == m)
                .map(|r| r.explanation.explainability)
                .unwrap_or(f64::NAN)
        };
        let reference = score(Method::BruteForce);
        let dist = |m: Method| (score(m) - reference).max(0.0);
        println!(
            "{:<12} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            wq.id.replace(' ', "-"),
            dist(Method::LinearRegression),
            dist(Method::TopK),
            dist(Method::HypDb),
            dist(Method::Mesa),
            dist(Method::MesaMinus),
        );
    }
    println!(
        "\n(lower is better; the paper's Figure 2 shows MESA and MESA- closest to Brute-Force)"
    );
    bench_report.write_or_warn();
}
