//! The roster of explanation methods compared in the evaluation, and a
//! uniform way to run them on a prepared query.

use std::time::{Duration, Instant};

use mesa::baselines::{brute_force, hypdb, linear_regression, top_k, HypDbConfig};
use mesa::{Explanation, Mesa, MesaConfig, PreparedQuery, PruningConfig};

/// The methods of Table 2 / Table 3 / Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Exhaustive search (optimal for Definition 2.1); only feasible on small
    /// candidate sets.
    BruteForce,
    /// MESA without pruning.
    MesaMinus,
    /// The full MESA system (MCIMR + pruning + IPW).
    Mesa,
    /// Rank by individual explanation power only.
    TopK,
    /// OLS coefficients with p < 0.05.
    LinearRegression,
    /// HypDB-style causal covariate detection over input-table attributes.
    HypDb,
}

impl Method {
    /// All methods, in the order used by the paper's tables.
    pub fn all() -> [Method; 6] {
        [
            Method::BruteForce,
            Method::MesaMinus,
            Method::Mesa,
            Method::TopK,
            Method::LinearRegression,
            Method::HypDb,
        ]
    }

    /// Display name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            Method::BruteForce => "Brute-Force",
            Method::MesaMinus => "MESA-",
            Method::Mesa => "MESA",
            Method::TopK => "Top-K",
            Method::LinearRegression => "LR",
            Method::HypDb => "HypDB",
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The outcome of running one method on one query.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Which method ran.
    pub method: Method,
    /// The explanation it produced.
    pub explanation: Explanation,
    /// Wall-clock time of the explanation search (excluding preparation).
    pub elapsed: Duration,
}

/// Runs one method on a prepared query.
///
/// Every method except MESA⁻ receives the pruned candidate set (the paper
/// runs all baselines after pruning "for a fair comparison"); HypDB is
/// additionally restricted to input-table attributes and capped at 50
/// candidates.
pub fn run_method(
    prepared: &PreparedQuery,
    method: Method,
    k: usize,
) -> mesa::Result<MethodResult> {
    let mesa_default = Mesa::with_config(MesaConfig::default().with_k(k));
    // Shared pruned candidate set for the baselines.
    let pruning = mesa::prune(
        &prepared.encoded,
        &prepared.candidates,
        prepared.exposure(),
        prepared.outcome(),
        &PruningConfig::default(),
    )?;
    let start = Instant::now();
    let explanation = match method {
        Method::Mesa => mesa_default.explain_prepared(prepared)?.explanation,
        Method::MesaMinus => {
            let mesa_minus = Mesa::with_config(MesaConfig::mesa_minus().with_k(k));
            mesa_minus.explain_prepared(prepared)?.explanation
        }
        Method::BruteForce => {
            // Keep the exhaustive search tractable: cap the candidate count.
            let capped: Vec<String> = pruning.kept.iter().take(16).cloned().collect();
            brute_force(prepared, &capped, k)?
        }
        Method::TopK => top_k(prepared, &pruning.kept, k)?,
        Method::LinearRegression => linear_regression(prepared, &pruning.kept, k)?,
        Method::HypDb => {
            // Input-table attributes only.
            let table_only: Vec<String> = pruning
                .kept
                .iter()
                .filter(|c| !prepared.extracted.contains(c))
                .cloned()
                .collect();
            hypdb(
                prepared,
                &table_only,
                HypDbConfig {
                    k,
                    ..Default::default()
                },
            )?
        }
    };
    Ok(MethodResult {
        method,
        explanation,
        elapsed: start.elapsed(),
    })
}

/// Runs every method on the prepared query.
pub fn run_all_methods(prepared: &PreparedQuery, k: usize) -> mesa::Result<Vec<MethodResult>> {
    Method::all()
        .into_iter()
        .map(|m| run_method(prepared, m, k))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::Dataset;

    use crate::setup::{ExperimentData, Scale};

    #[test]
    fn all_methods_run_on_covid_q1() {
        let data = ExperimentData::generate(Scale::Quick);
        let covid = data.frame(Dataset::Covid);
        let mesa = Mesa::new();
        let q = tabular::AggregateQuery::avg("Country", "Deaths_per_100_cases");
        let prepared = mesa
            .prepare(
                covid,
                &q,
                Some(&data.graph),
                Dataset::Covid.extraction_columns(),
            )
            .unwrap();
        let results = run_all_methods(&prepared, 3).unwrap();
        assert_eq!(results.len(), 6);
        for r in &results {
            assert!(
                r.explanation.explainability <= r.explanation.baseline_cmi + 1e-9,
                "{}",
                r.method
            );
        }
        // MESA must meaningfully reduce the correlation on this confounded query.
        let get = |m: Method| results.iter().find(|r| r.method == m).unwrap();
        let mesa_result = get(Method::Mesa);
        assert!(
            mesa_result.explanation.explainability < mesa_result.explanation.baseline_cmi * 0.9,
            "MESA did not reduce the correlation: {} -> {}",
            mesa_result.explanation.baseline_cmi,
            mesa_result.explanation.explainability
        );
        // HypDB never uses extracted attributes
        for a in &get(Method::HypDb).explanation.attributes {
            assert!(
                !prepared.extracted.contains(a),
                "HypDB used extracted attribute {a}"
            );
        }
    }

    #[test]
    fn method_names_unique() {
        let names: std::collections::HashSet<&str> =
            Method::all().iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), 6);
        assert_eq!(format!("{}", Method::Mesa), "MESA");
    }
}
