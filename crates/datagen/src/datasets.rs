//! Generators for the four evaluation datasets.
//!
//! Each generator samples rows from the [`World`] so that the exposure–outcome
//! correlation the paper's queries expose is genuinely driven by entity
//! attributes that live *outside* the dataset (in the knowledge graph):
//!
//! * **SO** — developer salaries are driven by the country's GDP per capita
//!   and inequality (Gini), plus within-dataset factors (dev type, gender,
//!   experience).
//! * **Covid-19** — deaths per 100 cases are driven by the country's latent
//!   health quality (correlated with HDI/GDP) and density.
//! * **Flights** — departure delays are driven by the origin city's weather
//!   and congestion and by the airline's operational quality (correlated with
//!   fleet size / equity).
//! * **Forbes** — celebrity pay is driven by net worth plus category-specific
//!   factors (gender gap for actors, cups / draft pick for athletes, awards
//!   for directors).

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use tabular::{Column, DataFrame, Result};

use crate::util::{choose, normal, weighted_index};
use crate::world::World;

/// Row counts mirroring Table 1 of the paper.
pub const SO_DEFAULT_ROWS: usize = 47_623;
/// Covid-19 has one row per country.
pub const COVID_DEFAULT_ROWS: usize = 188;
/// The full Flights dataset size (5.8M); the harness uses smaller samples by
/// default and scales up for the data-size experiment.
pub const FLIGHTS_DEFAULT_ROWS: usize = 5_819_079;
/// Forbes celebrity-earnings rows.
pub const FORBES_DEFAULT_ROWS: usize = 1_647;

const DEV_TYPES: &[(&str, f64)] = &[
    ("Back-end", 1.0),
    ("Front-end", 0.92),
    ("Full-stack", 1.02),
    ("Data scientist", 1.18),
    ("Mobile", 0.95),
    ("DevOps", 1.12),
    ("Embedded", 1.05),
];

const EDUCATION: &[&str] = &["Bachelor", "Master", "PhD", "Self-taught", "Bootcamp"];

/// Generates the Stack Overflow developer-survey dataset.
///
/// Columns: `Country`, `Continent`, `Gender`, `Age`, `DevType`, `Education`,
/// `YearsCode`, `Hobby`, `Salary`.
pub fn generate_so(world: &World, n_rows: usize, seed: u64) -> Result<DataFrame> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Developers are concentrated in more successful countries.
    let weights: Vec<f64> = world
        .countries
        .iter()
        .map(|c| 0.2 + c.success * c.population.sqrt())
        .collect();

    let mut country = Vec::with_capacity(n_rows);
    let mut continent = Vec::with_capacity(n_rows);
    let mut gender = Vec::with_capacity(n_rows);
    let mut age = Vec::with_capacity(n_rows);
    let mut dev_type = Vec::with_capacity(n_rows);
    let mut education = Vec::with_capacity(n_rows);
    let mut years_code = Vec::with_capacity(n_rows);
    let mut hobby = Vec::with_capacity(n_rows);
    let mut salary = Vec::with_capacity(n_rows);

    for _ in 0..n_rows {
        let c = &world.countries[weighted_index(&mut rng, &weights)];
        let (dt, dt_factor) = *choose(&mut rng, DEV_TYPES);
        let g = if rng.gen_bool(0.82) { "Man" } else { "Woman" };
        let years = rng.gen_range(1..30) as f64;
        let a = (20.0 + years + rng.gen_range(0.0..15.0)).round();
        // Salary (kUSD/year): driven by the country economy (outside the
        // dataset), with within-dataset modifiers.
        let country_factor = 6.0 + 0.95 * c.gdp_per_capita - 0.12 * (c.gini - 38.0);
        let gender_factor = if g == "Man" { 1.0 } else { 0.93 };
        let s = (country_factor * dt_factor * gender_factor * (1.0 + 0.012 * years)
            + normal(&mut rng, 0.0, 6.0))
        .max(2.0);
        country.push(Some(c.dataset_name.as_str()));
        continent.push(Some(c.continent.as_str()));
        gender.push(Some(g));
        age.push(Some(a as i64));
        dev_type.push(Some(dt));
        education.push(Some(*choose(&mut rng, EDUCATION)));
        years_code.push(Some(years as i64));
        hobby.push(Some(if rng.gen_bool(0.6) { "Yes" } else { "No" }));
        salary.push(Some((s * 1000.0).round()));
    }

    DataFrame::from_columns(vec![
        Column::from_str_values("Country", country),
        Column::from_str_values("Continent", continent),
        Column::from_str_values("Gender", gender),
        Column::from_i64("Age", age),
        Column::from_str_values("DevType", dev_type),
        Column::from_str_values("Education", education),
        Column::from_i64("YearsCode", years_code),
        Column::from_str_values("Hobby", hobby),
        Column::from_f64("Salary", salary),
    ])
}

/// Generates the Covid-19 dataset: one row per country.
///
/// Columns: `Country`, `WHO-Region`, `Confirmed_cases`, `Deaths_per_100_cases`,
/// `Recovered_per_100_cases`, `Active_per_100_cases`, `New_cases`.
pub fn generate_covid(world: &World, seed: u64) -> Result<DataFrame> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = world.countries.len();
    let mut country = Vec::with_capacity(n);
    let mut region = Vec::with_capacity(n);
    let mut confirmed = Vec::with_capacity(n);
    let mut deaths = Vec::with_capacity(n);
    let mut recovered = Vec::with_capacity(n);
    let mut active = Vec::with_capacity(n);
    let mut new_cases = Vec::with_capacity(n);

    for c in &world.countries {
        // Confirmed cases scale with population and (testing capacity ~) success.
        let conf = (c.population * 1000.0 * (0.5 + c.success) * rng.gen_range(0.5..1.5)).round();
        // Death rate: worse health systems and denser countries fare worse.
        let d = (11.5 - 9.0 * c.health_quality
            + 0.004 * c.density.min(1500.0)
            + normal(&mut rng, 0.0, 0.7))
        .clamp(0.3, 16.0);
        let r = (92.0 - d * 2.0 + normal(&mut rng, 0.0, 3.0)).clamp(30.0, 99.0);
        country.push(Some(c.dataset_name.clone()));
        region.push(Some(c.who_region.clone()));
        confirmed.push(Some(conf));
        deaths.push(Some((d * 100.0).round() / 100.0));
        recovered.push(Some((r * 100.0).round() / 100.0));
        active.push(Some(((100.0 - d - r).max(0.0) * 100.0).round() / 100.0));
        new_cases.push(Some((conf * rng.gen_range(0.001..0.01)).round()));
    }

    DataFrame::from_columns(vec![
        Column::from_str_values("Country", country),
        Column::from_str_values("WHO-Region", region),
        Column::from_f64("Confirmed_cases", confirmed),
        Column::from_f64("Deaths_per_100_cases", deaths),
        Column::from_f64("Recovered_per_100_cases", recovered),
        Column::from_f64("Active_per_100_cases", active),
        Column::from_f64("New_cases", new_cases),
    ])
}

/// Generates the Flights-delay dataset.
///
/// Columns: `Airline`, `Origin_city`, `Origin_state`, `Dest_city`,
/// `Dest_state`, `Day`, `Distance`, `Departure_delay`, `Arrival_delay`,
/// `Security_delay`, `Cancelled`.
pub fn generate_flights(world: &World, n_rows: usize, seed: u64) -> Result<DataFrame> {
    let mut rng = StdRng::seed_from_u64(seed);
    let city_weights: Vec<f64> = world.cities.iter().map(|c| 1.0 + c.population).collect();

    let mut airline = Vec::with_capacity(n_rows);
    let mut origin_city = Vec::with_capacity(n_rows);
    let mut origin_state = Vec::with_capacity(n_rows);
    let mut dest_city = Vec::with_capacity(n_rows);
    let mut dest_state = Vec::with_capacity(n_rows);
    let mut day = Vec::with_capacity(n_rows);
    let mut distance = Vec::with_capacity(n_rows);
    let mut dep_delay = Vec::with_capacity(n_rows);
    let mut arr_delay = Vec::with_capacity(n_rows);
    let mut sec_delay = Vec::with_capacity(n_rows);
    let mut cancelled = Vec::with_capacity(n_rows);

    for _ in 0..n_rows {
        let a = choose(&mut rng, &world.airlines);
        let o = &world.cities[weighted_index(&mut rng, &city_weights)];
        let d = &world.cities[weighted_index(&mut rng, &city_weights)];
        let dist = rng.gen_range(150.0_f64..2800.0).round();
        // Delay: weather + congestion at the origin, airline operations.
        let delay = (2.0
            + 28.0 * o.bad_weather
            + 24.0 * o.congestion
            + 18.0 * (1.0 - a.ops_quality)
            + normal(&mut rng, 0.0, 9.0))
        .max(-10.0);
        let security = (1.5 + 6.0 * o.congestion + normal(&mut rng, 0.0, 1.0)).max(0.0);
        airline.push(Some(a.name.as_str()));
        origin_city.push(Some(o.name.as_str()));
        origin_state.push(Some(o.state.as_str()));
        dest_city.push(Some(d.name.as_str()));
        dest_state.push(Some(d.state.as_str()));
        day.push(Some(rng.gen_range(1..366)));
        distance.push(Some(dist));
        dep_delay.push(Some((delay * 10.0).round() / 10.0));
        arr_delay.push(Some(
            ((delay + normal(&mut rng, 0.0, 4.0)) * 10.0).round() / 10.0,
        ));
        sec_delay.push(Some((security * 10.0).round() / 10.0));
        cancelled.push(Some(rng.gen_bool(0.015 + 0.02 * o.bad_weather)));
    }

    DataFrame::from_columns(vec![
        Column::from_str_values("Airline", airline),
        Column::from_str_values("Origin_city", origin_city),
        Column::from_str_values("Origin_state", origin_state),
        Column::from_str_values("Dest_city", dest_city),
        Column::from_str_values("Dest_state", dest_state),
        Column::from_i64("Day", day),
        Column::from_f64("Distance", distance),
        Column::from_f64("Departure_delay", dep_delay),
        Column::from_f64("Arrival_delay", arr_delay),
        Column::from_f64("Security_delay", sec_delay),
        Column::from_bool("Cancelled", cancelled),
    ])
}

/// Generates the Forbes celebrity-earnings dataset.
///
/// Columns: `Name`, `Category`, `Year`, `Pay` (millions of USD).
pub fn generate_forbes(world: &World, n_rows: usize, seed: u64) -> Result<DataFrame> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut name = Vec::with_capacity(n_rows);
    let mut category = Vec::with_capacity(n_rows);
    let mut year = Vec::with_capacity(n_rows);
    let mut pay = Vec::with_capacity(n_rows);

    for i in 0..n_rows {
        let c = &world.celebrities[i % world.celebrities.len()];
        let base = match c.category.as_str() {
            "Actors" => 8.0 + 0.045 * c.net_worth + if c.gender == "Male" { 14.0 } else { 0.0 },
            "Athletes" => 10.0 + 5.5 * c.cups - 0.35 * c.draft_pick + 0.02 * c.net_worth,
            "Directors/Producers" => 6.0 + 2.4 * c.awards + 0.04 * c.net_worth,
            _ => 5.0 + 1.2 * c.awards + 0.055 * c.net_worth,
        };
        name.push(Some(c.name.as_str()));
        category.push(Some(c.category.as_str()));
        year.push(Some(2005 + (i % 11) as i64));
        pay.push(Some((base + normal(&mut rng, 0.0, 4.0)).max(0.5).round()));
    }

    DataFrame::from_columns(vec![
        Column::from_str_values("Name", name),
        Column::from_str_values("Category", category),
        Column::from_i64("Year", year),
        Column::from_f64("Pay", pay),
    ])
}

/// The four evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Stack Overflow developer survey.
    StackOverflow,
    /// Covid-19 country statistics.
    Covid,
    /// US domestic flight delays.
    Flights,
    /// Forbes celebrity earnings.
    Forbes,
}

impl Dataset {
    /// All four datasets.
    pub fn all() -> [Dataset; 4] {
        [
            Dataset::StackOverflow,
            Dataset::Covid,
            Dataset::Flights,
            Dataset::Forbes,
        ]
    }

    /// Display name used in reports (matches Table 1).
    pub fn name(self) -> &'static str {
        match self {
            Dataset::StackOverflow => "SO",
            Dataset::Covid => "COVID-19",
            Dataset::Flights => "Flights",
            Dataset::Forbes => "Forbes",
        }
    }

    /// The columns used for KG attribute extraction (Table 1).
    pub fn extraction_columns(self) -> &'static [&'static str] {
        match self {
            Dataset::StackOverflow => &["Country", "Continent"],
            Dataset::Covid => &["Country", "WHO-Region"],
            Dataset::Flights => &["Airline", "Origin_city", "Origin_state"],
            Dataset::Forbes => &["Name"],
        }
    }

    /// The default number of rows reported in Table 1.
    pub fn default_rows(self) -> usize {
        match self {
            Dataset::StackOverflow => SO_DEFAULT_ROWS,
            Dataset::Covid => COVID_DEFAULT_ROWS,
            Dataset::Flights => FLIGHTS_DEFAULT_ROWS,
            Dataset::Forbes => FORBES_DEFAULT_ROWS,
        }
    }

    /// Generates the dataset at a chosen size (ignored for Covid, which has
    /// one row per country).
    pub fn generate(self, world: &World, n_rows: usize, seed: u64) -> Result<DataFrame> {
        match self {
            Dataset::StackOverflow => generate_so(world, n_rows, seed),
            Dataset::Covid => generate_covid(world, seed),
            Dataset::Flights => generate_flights(world, n_rows, seed),
            Dataset::Forbes => generate_forbes(world, n_rows, seed),
        }
    }

    /// Numeric outcome attributes that make sense for random queries (§5.1).
    pub fn outcome_columns(self) -> &'static [&'static str] {
        match self {
            Dataset::StackOverflow => &["Salary"],
            Dataset::Covid => &[
                "Deaths_per_100_cases",
                "New_cases",
                "Recovered_per_100_cases",
            ],
            Dataset::Flights => &["Departure_delay", "Arrival_delay"],
            Dataset::Forbes => &["Pay"],
        }
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;
    use stats::pearson;

    fn world() -> World {
        World::generate(WorldConfig {
            n_countries: 60,
            n_cities: 25,
            n_airlines: 8,
            n_celebrities: 80,
            seed: 5,
        })
    }

    fn col_f64(df: &DataFrame, name: &str) -> Vec<f64> {
        df.column(name)
            .unwrap()
            .to_f64()
            .into_iter()
            .map(|v| v.unwrap())
            .collect()
    }

    #[test]
    fn so_shape_and_columns() {
        let df = generate_so(&world(), 2000, 1).unwrap();
        assert_eq!(df.n_rows(), 2000);
        for c in ["Country", "Continent", "Gender", "Salary", "DevType"] {
            assert!(df.has_column(c), "missing {c}");
        }
        assert!(df.column("Salary").unwrap().mean().unwrap() > 10_000.0);
    }

    #[test]
    fn so_salary_confounded_by_country_economy() {
        let w = world();
        let df = generate_so(&w, 4000, 2).unwrap();
        // Average salary per country should correlate with GDP per capita.
        let q = tabular::AggregateQuery::avg("Country", "Salary");
        let per_country = q.run(&df).unwrap();
        let mut gdp = Vec::new();
        let mut sal = Vec::new();
        for i in 0..per_country.n_rows() {
            let cname = per_country.get(i, "Country").unwrap().render();
            if let Some(c) = w.countries.iter().find(|c| c.dataset_name == cname) {
                gdp.push(c.gdp_per_capita);
                sal.push(per_country.get(i, "avg(Salary)").unwrap().as_f64().unwrap());
            }
        }
        let r = pearson(&gdp, &sal).unwrap();
        assert!(r > 0.8, "salary should track GDP per capita, r = {r}");
    }

    #[test]
    fn covid_one_row_per_country() {
        let w = world();
        let df = generate_covid(&w, 3).unwrap();
        assert_eq!(df.n_rows(), w.countries.len());
        let deaths = col_f64(&df, "Deaths_per_100_cases");
        assert!(deaths.iter().all(|&d| (0.0..=16.0).contains(&d)));
        // death rate anti-correlates with health quality
        let hq: Vec<f64> = w.countries.iter().map(|c| c.health_quality).collect();
        assert!(pearson(&hq, &deaths).unwrap() < -0.5);
    }

    #[test]
    fn flights_delay_driven_by_weather_and_airline() {
        let w = world();
        let df = generate_flights(&w, 6000, 4).unwrap();
        assert_eq!(df.n_rows(), 6000);
        // Average delay per origin city should correlate with the city's bad weather factor.
        let q = tabular::AggregateQuery::avg("Origin_city", "Departure_delay");
        let per_city = q.run(&df).unwrap();
        let mut weather = Vec::new();
        let mut delay = Vec::new();
        for i in 0..per_city.n_rows() {
            let name = per_city.get(i, "Origin_city").unwrap().render();
            if let Some(c) = w.cities.iter().find(|c| c.name == name) {
                weather.push(c.bad_weather);
                delay.push(
                    per_city
                        .get(i, "avg(Departure_delay)")
                        .unwrap()
                        .as_f64()
                        .unwrap(),
                );
            }
        }
        assert!(pearson(&weather, &delay).unwrap() > 0.5);
    }

    #[test]
    fn forbes_pay_by_category_factors() {
        let w = world();
        let df = generate_forbes(&w, 500, 5).unwrap();
        assert_eq!(df.n_rows(), 500);
        // actors: males earn more on average (the paper's gender-gap finding)
        let actors = tabular::Predicate::eq("Category", "Actors")
            .apply(&df)
            .unwrap();
        if actors.n_rows() > 20 {
            let male_names: Vec<String> = w
                .celebrities
                .iter()
                .filter(|c| c.gender == "Male")
                .map(|c| c.name.clone())
                .collect();
            let mut male_pay = Vec::new();
            let mut female_pay = Vec::new();
            for i in 0..actors.n_rows() {
                let name = actors.get(i, "Name").unwrap().render();
                let pay = actors.get(i, "Pay").unwrap().as_f64().unwrap();
                if male_names.contains(&name) {
                    male_pay.push(pay);
                } else {
                    female_pay.push(pay);
                }
            }
            let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
            assert!(avg(&male_pay) > avg(&female_pay));
        }
    }

    #[test]
    fn dataset_enum_roundtrip() {
        for d in Dataset::all() {
            assert!(!d.name().is_empty());
            assert!(!d.extraction_columns().is_empty());
            assert!(!d.outcome_columns().is_empty());
            assert!(d.default_rows() > 0);
            assert_eq!(format!("{d}"), d.name());
        }
        let w = world();
        let df = Dataset::Covid.generate(&w, 10, 1).unwrap();
        assert_eq!(df.n_rows(), w.countries.len());
        let df = Dataset::Forbes.generate(&w, 100, 1).unwrap();
        assert_eq!(df.n_rows(), 100);
    }

    #[test]
    fn generation_deterministic_per_seed() {
        let w = world();
        let a = generate_so(&w, 500, 9).unwrap();
        let b = generate_so(&w, 500, 9).unwrap();
        assert_eq!(a.get(100, "Salary").unwrap(), b.get(100, "Salary").unwrap());
        let c = generate_so(&w, 500, 10).unwrap();
        assert_ne!(a.get(100, "Salary").unwrap(), c.get(100, "Salary").unwrap());
    }
}
