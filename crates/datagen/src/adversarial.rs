//! Adversarial scenario ingredients for the differential fuzzer.
//!
//! Everything here generates *hostile* instances on purpose: columns with
//! pathological null rates (up to and including 100%), cardinalities from 2
//! to ~100k (stressing the kernel's dense/sparse crossover), runny vs
//! shuffled physical layouts (stressing RLE sealing), and knowledge graphs
//! with deep hop chains, colliding aliases and one-to-many fans (stressing
//! extraction). All sampling goes through the vendored [`rand`] `StdRng`, so
//! an entire scenario replays from a single `u64` seed.
//!
//! The structures are deliberately dumb data ("specs") separated from their
//! `materialize` step: the fuzzer's minimizer shrinks *materialized* data,
//! while specs make the generated shape printable in a failure report.

use kg::{KnowledgeGraph, Object};
use rand::rngs::StdRng;
use rand::Rng;
use tabular::Column;

/// Data type of a generated adversarial column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversarialDType {
    /// Dictionary-encoded strings.
    Cat,
    /// 64-bit integers.
    Int,
    /// 64-bit floats (never NaN — the pipeline's float totals must stay
    /// comparable bitwise).
    Float,
    /// Booleans (cardinality clamped to 2).
    Bool,
}

/// Physical row order of a generated column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Values sorted, producing long runs (the best case for RLE sealing).
    Runny,
    /// Values in random order (the worst case for RLE sealing).
    Shuffled,
}

/// Shape of one adversarial column.
#[derive(Debug, Clone)]
pub struct ColumnSpec {
    /// Column name.
    pub name: String,
    /// Element type.
    pub dtype: AdversarialDType,
    /// Number of *potential* distinct non-null values (actual distinct count
    /// is bounded by the row count at materialization).
    pub cardinality: usize,
    /// Probability that any given row is null, in `0.0..=1.0`.
    pub null_rate: f64,
    /// Physical row order.
    pub layout: Layout,
}

/// Samples a cardinality log-uniformly in `2..=100_000`, so small and huge
/// dictionaries are equally likely and the dense/sparse kernel crossover is
/// exercised from both sides.
pub fn sample_cardinality(rng: &mut StdRng) -> usize {
    let exponent: f64 = rng.gen_range(1.0..16.6);
    (2.0f64.powf(exponent) as usize).clamp(2, 100_000)
}

impl ColumnSpec {
    /// Samples a random column shape: dtype mix, log-uniform cardinality,
    /// null rate 0–99% (with a small chance of an all-null column), and a
    /// coin-flip between runny and shuffled layouts.
    pub fn sample(rng: &mut StdRng, name: impl Into<String>) -> Self {
        let dtype = match rng.gen_range(0u32..4) {
            0 => AdversarialDType::Cat,
            1 => AdversarialDType::Int,
            2 => AdversarialDType::Float,
            _ => AdversarialDType::Bool,
        };
        let cardinality = match dtype {
            AdversarialDType::Bool => 2,
            _ => sample_cardinality(rng),
        };
        let null_rate = if rng.gen_bool(0.35) {
            0.0
        } else if rng.gen_bool(0.03) {
            1.0
        } else {
            rng.gen_range(0.0..0.99)
        };
        let layout = if rng.gen_bool(0.5) {
            Layout::Runny
        } else {
            Layout::Shuffled
        };
        ColumnSpec {
            name: name.into(),
            dtype,
            cardinality,
            null_rate,
            layout,
        }
    }

    /// Materializes `n_rows` rows of this column. Codes are drawn uniformly
    /// from the cardinality, sorted when the layout is runny, and nulled out
    /// independently per row at the spec's null rate.
    pub fn materialize(&self, n_rows: usize, rng: &mut StdRng) -> Column {
        let card = self.cardinality.max(1);
        let mut codes: Vec<usize> = (0..n_rows).map(|_| rng.gen_range(0..card)).collect();
        if self.layout == Layout::Runny {
            codes.sort_unstable();
        }
        let nulls: Vec<bool> = (0..n_rows).map(|_| rng.gen_bool(self.null_rate)).collect();
        let present = |i: usize| !nulls[i];
        match self.dtype {
            AdversarialDType::Cat => Column::from_str_values(
                &self.name,
                codes
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| present(i).then(|| format!("v{c}")))
                    .collect(),
            ),
            AdversarialDType::Int => Column::from_i64(
                &self.name,
                codes
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| present(i).then(|| c as i64 * 3 - card as i64))
                    .collect(),
            ),
            AdversarialDType::Float => Column::from_f64(
                &self.name,
                codes
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| present(i).then_some(c as f64 * 0.25 - 2.0))
                    .collect(),
            ),
            AdversarialDType::Bool => Column::from_bool(
                &self.name,
                codes
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| present(i).then_some(c % 2 == 0))
                    .collect(),
            ),
        }
    }
}

/// Generates the key column tying table rows to knowledge-graph entities:
/// a categorical column whose labels are the canonical entity names
/// (`E0..E{n_entities-1}`) produced by [`KgSpec::materialize`].
///
/// `n_entities == 1` produces the cardinality-1 join key hand case.
pub fn entity_key_column(
    rng: &mut StdRng,
    n_rows: usize,
    n_entities: usize,
    null_rate: f64,
    layout: Layout,
) -> Column {
    let spec = ColumnSpec {
        name: "Entity".into(),
        dtype: AdversarialDType::Cat,
        cardinality: n_entities.max(1),
        null_rate,
        layout,
    };
    // Re-label the generic "v{c}" values as entity names.
    let card = spec.cardinality;
    let mut codes: Vec<usize> = (0..n_rows).map(|_| rng.gen_range(0..card)).collect();
    if layout == Layout::Runny {
        codes.sort_unstable();
    }
    let values: Vec<Option<String>> = codes
        .into_iter()
        .map(|c| (!rng.gen_bool(null_rate)).then(|| format!("E{c}")))
        .collect();
    Column::from_str_values("Entity", values)
}

/// Shape of an adversarial knowledge graph.
#[derive(Debug, Clone)]
pub struct KgSpec {
    /// Number of base entities `E0..`.
    pub n_entities: usize,
    /// Length of the `next`-predicate hop chain hanging off every base
    /// entity (0 = attributes only, 5 = the deep-chain hand case).
    pub chain_depth: usize,
    /// Number of `fan` facts per base entity (one-to-many multiplicity).
    pub fan_out: usize,
    /// Number of attribute predicates (`num{a}` / `tag{a}`) at every chain
    /// level.
    pub attrs_per_level: usize,
    /// Size of the value pool attributes draw from: small pools give the
    /// grouped structure MCIMR needs, `2` is the degenerate binary case.
    pub value_pool: usize,
    /// Unique aliases (`aka{j}` → one entity).
    pub n_aliases: usize,
    /// Colliding aliases registered for *two* entities — these must refuse
    /// to resolve during extraction.
    pub ambiguous_aliases: usize,
}

impl KgSpec {
    /// Samples a random graph shape: 1–64 entities, chains up to 5 hops,
    /// fans up to 6 wide, and a few (possibly colliding) aliases.
    pub fn sample(rng: &mut StdRng) -> Self {
        KgSpec {
            n_entities: rng.gen_range(1..=64),
            chain_depth: rng.gen_range(0..=5),
            fan_out: rng.gen_range(0..=6),
            attrs_per_level: rng.gen_range(1..=3),
            value_pool: rng.gen_range(2..=8),
            n_aliases: rng.gen_range(0..=6),
            ambiguous_aliases: rng.gen_range(0..=2),
        }
    }

    /// Materializes the graph. Base entities are `E{i}`; chain nodes are
    /// `E{i}.h{level}` linked by the `next` predicate; every level carries
    /// `num{a}` (numeric) and `tag{a}` (text) attributes drawn from the
    /// value pool; `fan` facts give one-to-many numeric multiplicity at the
    /// base level.
    pub fn materialize(&self, rng: &mut StdRng) -> KnowledgeGraph {
        let mut graph = KnowledgeGraph::new();
        for i in 0..self.n_entities {
            let mut node = format!("E{i}");
            for level in 0..=self.chain_depth {
                for a in 0..self.attrs_per_level {
                    let v = rng.gen_range(0..self.value_pool);
                    graph.add_fact(node.clone(), format!("num{a}"), Object::number(v as f64));
                    graph.add_fact(
                        node.clone(),
                        format!("tag{a}"),
                        Object::text(format!("t{v}")),
                    );
                }
                if level == 0 {
                    for _ in 0..self.fan_out {
                        let v = rng.gen_range(0..self.value_pool);
                        graph.add_fact(node.clone(), "fan", Object::number(v as f64));
                    }
                }
                if level < self.chain_depth {
                    let next = format!("E{i}.h{}", level + 1);
                    graph.add_fact(node.clone(), "next", Object::entity(next.clone()));
                    node = next;
                }
            }
        }
        for j in 0..self.n_aliases {
            let target = rng.gen_range(0..self.n_entities.max(1));
            graph.add_alias(format!("aka{j}"), format!("E{target}"));
        }
        for j in 0..self.ambiguous_aliases {
            let a = rng.gen_range(0..self.n_entities.max(1));
            let b = (a + 1) % self.n_entities.max(1);
            graph.add_alias(format!("both{j}"), format!("E{a}"));
            graph.add_alias(format!("both{j}"), format!("E{b}"));
        }
        graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn column_spec_samples_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for i in 0..200 {
            let spec = ColumnSpec::sample(&mut rng, format!("c{i}"));
            assert!((2..=100_000).contains(&spec.cardinality), "{spec:?}");
            assert!((0.0..=1.0).contains(&spec.null_rate), "{spec:?}");
            if spec.dtype == AdversarialDType::Bool {
                assert_eq!(spec.cardinality, 2);
            }
        }
    }

    #[test]
    fn materialize_respects_rows_and_null_rate() {
        let mut rng = StdRng::seed_from_u64(11);
        let spec = ColumnSpec {
            name: "x".into(),
            dtype: AdversarialDType::Int,
            cardinality: 10,
            null_rate: 0.5,
            layout: Layout::Shuffled,
        };
        let col = spec.materialize(4000, &mut rng);
        assert_eq!(col.len(), 4000);
        let frac = col.null_fraction();
        assert!((0.45..0.55).contains(&frac), "null fraction {frac}");
    }

    #[test]
    fn all_null_columns_materialize() {
        let mut rng = StdRng::seed_from_u64(13);
        let spec = ColumnSpec {
            name: "gone".into(),
            dtype: AdversarialDType::Float,
            cardinality: 5,
            null_rate: 1.0,
            layout: Layout::Runny,
        };
        let col = spec.materialize(64, &mut rng);
        assert_eq!(col.null_count(), 64);
    }

    #[test]
    fn runny_layout_has_fewer_transitions_than_shuffled() {
        let transitions = |col: &Column| {
            let enc = col.encode();
            enc.codes().windows(2).filter(|w| w[0] != w[1]).count()
        };
        let mut rng = StdRng::seed_from_u64(17);
        let base = ColumnSpec {
            name: "x".into(),
            dtype: AdversarialDType::Cat,
            cardinality: 8,
            null_rate: 0.0,
            layout: Layout::Runny,
        };
        let runny = base.materialize(1000, &mut rng);
        let shuffled = ColumnSpec {
            layout: Layout::Shuffled,
            ..base
        }
        .materialize(1000, &mut rng);
        assert!(transitions(&runny) < transitions(&shuffled) / 4);
    }

    #[test]
    fn entity_key_matches_graph_entities() {
        let mut rng = StdRng::seed_from_u64(19);
        let kg_spec = KgSpec {
            n_entities: 4,
            chain_depth: 2,
            fan_out: 2,
            attrs_per_level: 1,
            value_pool: 3,
            n_aliases: 1,
            ambiguous_aliases: 1,
        };
        let graph = kg_spec.materialize(&mut rng);
        let col = entity_key_column(&mut rng, 100, 4, 0.1, Layout::Shuffled);
        for v in col.iter_values() {
            if let tabular::Value::Str(name) = v {
                assert!(graph.has_entity(&name), "missing {name}");
            }
        }
    }

    #[test]
    fn deep_chain_reaches_requested_depth() {
        let mut rng = StdRng::seed_from_u64(23);
        let spec = KgSpec {
            n_entities: 2,
            chain_depth: 5,
            fan_out: 0,
            attrs_per_level: 1,
            value_pool: 2,
            n_aliases: 0,
            ambiguous_aliases: 0,
        };
        let graph = spec.materialize(&mut rng);
        assert!(graph.has_entity("E0.h5"));
        assert!(graph
            .properties("E0.h4")
            .iter()
            .any(|(p, o)| *p == "next" && matches!(o, Object::Entity(e) if e == "E0.h5")));
    }

    #[test]
    fn ambiguous_aliases_refuse_to_resolve() {
        let mut rng = StdRng::seed_from_u64(29);
        let spec = KgSpec {
            n_entities: 3,
            chain_depth: 0,
            fan_out: 0,
            attrs_per_level: 1,
            value_pool: 2,
            n_aliases: 1,
            ambiguous_aliases: 1,
        };
        let graph = spec.materialize(&mut rng);
        assert!(graph.resolve_alias("aka0").is_some());
        assert!(graph.resolve_alias("both0").is_none());
    }

    #[test]
    fn same_seed_same_graph() {
        let build = || {
            let mut rng = StdRng::seed_from_u64(31);
            let spec = KgSpec::sample(&mut rng);
            let g = spec.materialize(&mut rng);
            (spec.n_entities, g.n_triples(), g.n_entities())
        };
        assert_eq!(build(), build());
    }
}
