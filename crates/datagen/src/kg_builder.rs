//! Builds the synthetic DBpedia-like knowledge graph from the world model.
//!
//! The graph contains, for every entity class used by the datasets, the
//! properties the paper's explanations reference (HDI, GDP, Gini, density,
//! weather, fleet size, net worth, ...) **plus** the kinds of attributes that
//! make extraction noisy in practice and that MESA's pruning exists for:
//!
//! * key-like attributes with a unique value per entity (`wikiID`, `abstract`),
//! * constant attributes (`type = Country`),
//! * attributes logically equivalent to the exposure (`country code`),
//! * redundant rank variants of real attributes (`HDI rank`, `GDP rank`),
//! * irrelevant noise attributes (`anthem length`, `flag colors`, ...),
//! * sparsity: a configurable fraction of facts is simply absent, and some
//!   properties are *systematically* absent for low/high values of the
//!   property (the selection-bias case of Section 3.2).

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use kg::{KnowledgeGraph, Object, StoredObject, Sym};

use crate::world::World;

/// Controls the sparsity and noise of the generated graph.
#[derive(Debug, Clone, Copy)]
pub struct KgConfig {
    /// Fraction of facts dropped uniformly at random.
    pub random_missing: f64,
    /// Fraction of *biased* dropout applied to a few selected properties:
    /// facts are dropped with a probability that grows with the property
    /// value, inducing selection bias in the extracted attribute.
    pub biased_missing: f64,
    /// Number of pure-noise properties per entity class.
    pub n_noise_properties: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KgConfig {
    fn default() -> Self {
        KgConfig {
            random_missing: 0.12,
            biased_missing: 0.25,
            n_noise_properties: 6,
            seed: 7,
        }
    }
}

struct FactWriter<'a> {
    graph: &'a mut KnowledgeGraph,
    rng: StdRng,
    config: KgConfig,
}

impl<'a> FactWriter<'a> {
    /// Interns `name` as an entity, returning the symbol the fact-adding
    /// methods take. Called once per entity loop iteration, so per-fact
    /// symbol lookups disappear from the build.
    fn entity(&mut self, name: &str) -> Sym {
        self.graph.intern_entity(name)
    }

    /// Converts a convenience [`Object`] into interned storage form.
    fn store(&mut self, object: Object) -> StoredObject {
        match object {
            Object::Entity(e) => self.graph.object_entity(&e),
            Object::Literal(v) => StoredObject::Literal(v),
        }
    }

    /// Adds a fact subject to random and (optionally) biased dropout.
    /// `bias_score` in [0,1] controls value-dependent dropout: higher scores
    /// are more likely to be dropped when the property is in the biased list.
    fn add(
        &mut self,
        subject: Sym,
        predicate: &str,
        object: Object,
        biased: bool,
        bias_score: f64,
    ) {
        if self
            .rng
            .gen_bool(self.config.random_missing.clamp(0.0, 1.0))
        {
            return;
        }
        if biased {
            let p_drop = (self.config.biased_missing * bias_score).clamp(0.0, 0.95);
            if self.rng.gen_bool(p_drop) {
                return;
            }
        }
        let p = self.graph.intern_predicate(predicate);
        let o = self.store(object);
        self.graph.add_fact_ids(subject, p, o);
    }

    fn add_always(&mut self, subject: Sym, predicate: &str, object: Object) {
        let p = self.graph.intern_predicate(predicate);
        let o = self.store(object);
        self.graph.add_fact_ids(subject, p, o);
    }
}

/// Rough per-entity fact counts used to preallocate the triple arrays.
fn estimated_sizes(world: &World, config: &KgConfig) -> (usize, usize) {
    let per_country = 20 + config.n_noise_properties + 2; // facts + leader facts
    let per_city = 17 + config.n_noise_properties;
    let per_celebrity = 12 + config.n_noise_properties;
    let n_triples = world.countries.len() * per_country
        + world.cities.len() * per_city
        + world.airlines.len() * 7
        + world.celebrities.len() * per_celebrity
        + 200; // regions, states, aggregates
    let n_entities = 2 * world.countries.len() // country + leader
        + world.cities.len()
        + world.airlines.len()
        + world.celebrities.len()
        + 100; // regions + states
    (n_triples, n_entities)
}

/// Builds the knowledge graph for the whole world.
pub fn build_kg(world: &World, config: KgConfig) -> KnowledgeGraph {
    let (n_triples, n_entities) = estimated_sizes(world, &config);
    let mut graph = KnowledgeGraph::with_capacity(n_triples, n_entities);
    let rng = StdRng::seed_from_u64(config.seed);
    let mut w = FactWriter {
        graph: &mut graph,
        rng,
        config,
    };

    add_countries(&mut w, world);
    add_cities(&mut w, world);
    add_airlines(&mut w, world);
    add_celebrities(&mut w, world);

    // Pre-build the CSR index and cached linker so the first extraction
    // doesn't pay for indexing.
    graph.finalize();
    graph
}

fn noise_value(rng: &mut StdRng) -> Object {
    Object::number((rng.gen::<f64>() * 1000.0).round())
}

fn add_countries(w: &mut FactWriter<'_>, world: &World) {
    let n_noise = w.config.n_noise_properties;
    // Ranks are computed over the full population so that "HDI rank" is
    // genuinely redundant with "HDI".
    let rank_of = |values: Vec<(usize, f64)>| -> Vec<i64> {
        let mut order: Vec<usize> = (0..values.len()).collect();
        order.sort_by(|&a, &b| {
            values[b]
                .1
                .partial_cmp(&values[a].1)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut ranks = vec![0i64; values.len()];
        for (rank, idx) in order.into_iter().enumerate() {
            ranks[values[idx].0] = rank as i64 + 1;
        }
        ranks
    };
    let hdi_rank = rank_of(world.countries.iter().map(|c| c.hdi).enumerate().collect());
    let gdp_rank = rank_of(
        world
            .countries
            .iter()
            .map(|c| c.gdp_total)
            .enumerate()
            .collect(),
    );
    let gini_rank = rank_of(world.countries.iter().map(|c| c.gini).enumerate().collect());
    let area_rank = rank_of(world.countries.iter().map(|c| c.area).enumerate().collect());

    for (i, c) in world.countries.iter().enumerate() {
        let name = c.name.as_str();
        let s = w.entity(name);
        let hdi_bias = (c.hdi - 0.3) / 0.7; // high-HDI countries more likely missing
        w.add(s, "HDI", Object::number(round3(c.hdi)), true, hdi_bias);
        w.add(s, "HDI rank", Object::integer(hdi_rank[i]), false, 0.0);
        w.add(s, "GDP", Object::number(round3(c.gdp_total)), false, 0.0);
        w.add(
            s,
            "GDP nominal per capita",
            Object::number(round3(c.gdp_per_capita)),
            false,
            0.0,
        );
        w.add(s, "GDP rank", Object::integer(gdp_rank[i]), false, 0.0);
        let gini_bias = (c.gini - 22.0) / 43.0;
        w.add(s, "Gini", Object::number(round3(c.gini)), true, gini_bias);
        w.add(s, "Gini rank", Object::integer(gini_rank[i]), false, 0.0);
        w.add(s, "Density", Object::number(round3(c.density)), false, 0.0);
        w.add(
            s,
            "Population census",
            Object::number(round3(c.population)),
            false,
            0.0,
        );
        w.add(
            s,
            "Population estimate",
            Object::number(round3(c.population * 1.02)),
            false,
            0.0,
        );
        w.add(s, "Area km", Object::number(round3(c.area)), false, 0.0);
        w.add(s, "Area rank", Object::integer(area_rank[i]), false, 0.0);
        w.add(s, "Currency", Object::text(c.currency.clone()), false, 0.0);
        w.add(s, "Language", Object::text(c.language.clone()), false, 0.0);
        w.add(
            s,
            "Established date",
            Object::integer(c.established),
            false,
            0.0,
        );
        w.add(
            s,
            "Time zone",
            Object::text(format!("UTC{:+}", (i as i64 % 25) - 12)),
            false,
            0.0,
        );
        // Attributes MESA must prune:
        w.add_always(s, "wikiID", Object::integer(1_000_000 + i as i64));
        w.add_always(s, "type", Object::text("Country"));
        w.add_always(s, "country code", Object::text(format!("C{i:03}")));
        for k in 0..n_noise {
            let obj = noise_value(&mut w.rng);
            w.add(s, &format!("noise country {k}"), obj, false, 0.0);
        }
        // Leader: entity-valued property for the multi-hop experiments.
        let leader = format!("Leader of {name}");
        w.add(s, "leader", Object::entity(leader.clone()), false, 0.0);
        let leader_sym = w.entity(&leader);
        let leader_age = 45 + (i as i64 % 30);
        w.add_always(leader_sym, "age", Object::integer(leader_age));
        w.add_always(
            leader_sym,
            "gender",
            Object::text(if i % 4 == 0 { "Female" } else { "Male" }),
        );
        // Dataset-name alias where the spelling differs.
        if c.dataset_name != c.name {
            w.graph.add_alias(c.dataset_name.clone(), c.name.clone());
        }
    }

    // Continent- and WHO-region-level aggregate entities: the SO and Covid
    // queries also group by these, and their extracted attributes (aggregate
    // GDP, density, ...) are the explanations the paper reports for Q2/Q3.
    let mut groups: std::collections::BTreeMap<(&str, &str), Vec<&crate::world::Country>> =
        Default::default();
    for c in &world.countries {
        groups
            .entry(("continent", c.continent.as_str()))
            .or_default()
            .push(c);
        groups
            .entry(("who", c.who_region.as_str()))
            .or_default()
            .push(c);
    }
    for (i, ((kind, name), members)) in groups.into_iter().enumerate() {
        // WHO regions share names with continents (e.g. "Europe"); a single
        // entity per name is fine because the aggregates coincide.
        if kind == "who" && w.graph.has_entity(name) {
            continue;
        }
        let s = w.entity(name);
        let n = members.len() as f64;
        let sum = |f: fn(&crate::world::Country) -> f64| members.iter().map(|c| f(c)).sum::<f64>();
        let avg = |f: fn(&crate::world::Country) -> f64| sum(f) / n;
        w.add(
            s,
            "GDP",
            Object::number(round3(sum(|c| c.gdp_total))),
            false,
            0.0,
        );
        w.add(
            s,
            "GDP rank",
            Object::integer(((1.0 / avg(|c| c.gdp_per_capita)) * 100.0) as i64),
            false,
            0.0,
        );
        w.add(
            s,
            "Density",
            Object::number(round3(avg(|c| c.density))),
            false,
            0.0,
        );
        w.add(s, "Area rank", Object::integer(i as i64 + 1), false, 0.0);
        w.add(
            s,
            "Area km",
            Object::number(round3(sum(|c| c.area))),
            false,
            0.0,
        );
        w.add(
            s,
            "Population census",
            Object::number(round3(sum(|c| c.population))),
            false,
            0.0,
        );
        w.add(s, "HDI", Object::number(round3(avg(|c| c.hdi))), false, 0.0);
        w.add_always(s, "type", Object::text("Region"));
        w.add_always(s, "wikiID", Object::integer(6_000_000 + i as i64));
    }
}

fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

fn add_cities(w: &mut FactWriter<'_>, world: &World) {
    let n_noise = w.config.n_noise_properties;
    for (i, city) in world.cities.iter().enumerate() {
        let s = w.entity(&city.name);
        w.add(
            s,
            "Population total",
            Object::number(round3(city.population)),
            false,
            0.0,
        );
        w.add(
            s,
            "Population urban",
            Object::number(round3(city.population_urban)),
            false,
            0.0,
        );
        w.add(
            s,
            "Population metropolitan",
            Object::number(round3(city.population_metro)),
            false,
            0.0,
        );
        w.add(
            s,
            "Population ranking",
            Object::integer(city.population_rank),
            false,
            0.0,
        );
        w.add(
            s,
            "Population estimation",
            Object::number(round3(city.population * 1.01)),
            false,
            0.0,
        );
        w.add(
            s,
            "Density",
            Object::number(round3(city.density)),
            false,
            0.0,
        );
        let income_bias = (city.median_income - 38.0) / 45.0;
        w.add(
            s,
            "Median household income",
            Object::number(round3(city.median_income)),
            true,
            income_bias,
        );
        w.add(
            s,
            "Precipitation days",
            Object::number(round3(city.precipitation_days)),
            false,
            0.0,
        );
        w.add(
            s,
            "Year snow",
            Object::number(round3(city.year_snow)),
            false,
            0.0,
        );
        w.add(
            s,
            "Year low F",
            Object::number(round3(city.year_low_f)),
            false,
            0.0,
        );
        w.add(
            s,
            "Year avg F",
            Object::number(round3(city.year_avg_f)),
            false,
            0.0,
        );
        w.add(
            s,
            "December low F",
            Object::number(round3(city.december_low_f)),
            false,
            0.0,
        );
        w.add(
            s,
            "December percent sun",
            Object::number(round3(city.percent_sun)),
            false,
            0.0,
        );
        w.add_always(s, "wikiID", Object::integer(2_000_000 + i as i64));
        w.add_always(s, "type", Object::text("City"));
        w.add(s, "State", Object::text(city.state.clone()), false, 0.0);
        for k in 0..n_noise {
            let obj = noise_value(&mut w.rng);
            w.add(s, &format!("noise city {k}"), obj, false, 0.0);
        }
    }
    // State-level aggregate entities (the Flights queries also group by state).
    let mut states: std::collections::BTreeMap<&str, Vec<&crate::world::City>> = Default::default();
    for city in &world.cities {
        states.entry(city.state.as_str()).or_default().push(city);
    }
    for (i, (state, cities)) in states.into_iter().enumerate() {
        let s = w.entity(state);
        let n = cities.len() as f64;
        let avg = |f: fn(&crate::world::City) -> f64| cities.iter().map(|c| f(c)).sum::<f64>() / n;
        w.add(
            s,
            "Population estimation",
            Object::number(round3(avg(|c| c.population) * n)),
            false,
            0.0,
        );
        w.add(
            s,
            "Population urban",
            Object::number(round3(avg(|c| c.population_urban) * n)),
            false,
            0.0,
        );
        w.add(
            s,
            "Population rank",
            Object::integer(i as i64 + 1),
            false,
            0.0,
        );
        w.add(
            s,
            "Density",
            Object::number(round3(avg(|c| c.density))),
            false,
            0.0,
        );
        w.add(
            s,
            "Year snow",
            Object::number(round3(avg(|c| c.year_snow))),
            false,
            0.0,
        );
        w.add(
            s,
            "Year low F",
            Object::number(round3(avg(|c| c.year_low_f))),
            false,
            0.0,
        );
        w.add(
            s,
            "Record low F",
            Object::number(round3(avg(|c| c.year_low_f) - 20.0)),
            false,
            0.0,
        );
        w.add(
            s,
            "Median household income",
            Object::number(round3(avg(|c| c.median_income))),
            false,
            0.0,
        );
        w.add_always(s, "type", Object::text("State"));
        w.add_always(s, "wikiID", Object::integer(3_000_000 + i as i64));
    }
}

fn add_airlines(w: &mut FactWriter<'_>, world: &World) {
    for (i, a) in world.airlines.iter().enumerate() {
        let s = w.entity(&a.name);
        w.add(
            s,
            "Fleet size",
            Object::number(round3(a.fleet_size)),
            false,
            0.0,
        );
        w.add(s, "Equity", Object::number(round3(a.equity)), false, 0.0);
        w.add(s, "Revenue", Object::number(round3(a.revenue)), false, 0.0);
        w.add(
            s,
            "Net income",
            Object::number(round3(a.net_income)),
            false,
            0.0,
        );
        w.add(
            s,
            "Num of employees",
            Object::number(round3(a.employees)),
            false,
            0.0,
        );
        w.add_always(s, "wikiID", Object::integer(4_000_000 + i as i64));
        w.add_always(s, "type", Object::text("Airline"));
    }
}

fn add_celebrities(w: &mut FactWriter<'_>, world: &World) {
    let n_noise = w.config.n_noise_properties;
    for (i, c) in world.celebrities.iter().enumerate() {
        let s = w.entity(&c.name);
        let worth_bias = (c.net_worth / 950.0).clamp(0.0, 1.0);
        w.add(
            s,
            "Net worth",
            Object::number(round3(c.net_worth)),
            true,
            worth_bias,
        );
        w.add(s, "Gender", Object::text(c.gender.clone()), false, 0.0);
        w.add(s, "Age", Object::number(round3(c.age)), false, 0.0);
        w.add(
            s,
            "ActiveSince",
            Object::integer(c.active_since),
            false,
            0.0,
        );
        w.add(
            s,
            "Years active",
            Object::integer(2022 - c.active_since),
            false,
            0.0,
        );
        w.add(
            s,
            "Citizenship",
            Object::entity(c.citizenship.clone()),
            false,
            0.0,
        );
        // Category-specific properties: absent for other categories, which is
        // why Forbes has the highest missing-value rate in Table 1 / Sec 5.2.
        match c.category.as_str() {
            "Athletes" => {
                w.add(s, "Cups", Object::number(c.cups), false, 0.0);
                w.add(
                    s,
                    "National cups",
                    Object::number((c.cups * 1.5).floor()),
                    false,
                    0.0,
                );
                w.add(
                    s,
                    "Total cups",
                    Object::number((c.cups * 2.2).floor()),
                    false,
                    0.0,
                );
                w.add(s, "Draft pick", Object::number(c.draft_pick), false, 0.0);
            }
            "Actors" | "Directors/Producers" => {
                w.add(s, "Awards", Object::number(c.awards), false, 0.0);
                w.add(
                    s,
                    "Honors",
                    Object::number((c.awards / 2.0).floor()),
                    false,
                    0.0,
                );
            }
            _ => {
                w.add(s, "Awards", Object::number(c.awards), false, 0.0);
            }
        }
        w.add_always(s, "wikiID", Object::integer(5_000_000 + i as i64));
        w.add_always(s, "type", Object::text("Person"));
        for k in 0..n_noise {
            let obj = noise_value(&mut w.rng);
            w.add(s, &format!("noise person {k}"), obj, false, 0.0);
        }
    }
    // One deliberately ambiguous celebrity alias (the paper's Ronaldo case).
    if world.celebrities.len() >= 2 {
        let a = world.celebrities[0].name.clone();
        let b = world.celebrities[1].name.clone();
        w.graph.add_alias("The Star", a);
        w.graph.add_alias("The Star", b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{World, WorldConfig};
    use kg::{extract_attributes, ExtractionConfig};

    fn small_world() -> World {
        World::generate(WorldConfig {
            n_countries: 40,
            n_cities: 20,
            n_airlines: 6,
            n_celebrities: 30,
            seed: 3,
        })
    }

    #[test]
    fn graph_contains_all_entity_classes() {
        let w = small_world();
        let g = build_kg(&w, KgConfig::default());
        assert!(g.has_entity("Germany"));
        assert!(g.has_entity("Airline A"));
        assert!(g.has_entity(&w.cities[0].name));
        assert!(g.has_entity(&w.celebrities[0].name));
        assert!(g.n_triples() > 500);
    }

    #[test]
    fn key_and_constant_attributes_present() {
        let w = small_world();
        let g = build_kg(&w, KgConfig::default());
        let props = g.properties("Germany");
        let names: Vec<&str> = props.iter().map(|(p, _)| *p).collect();
        assert!(names.contains(&"wikiID"));
        assert!(names.contains(&"type"));
        assert!(names.contains(&"country code"));
    }

    #[test]
    fn sparsity_produces_missing_values() {
        let w = small_world();
        let g = build_kg(&w, KgConfig::default());
        let values: Vec<String> = w.countries.iter().map(|c| c.name.clone()).collect();
        let res = extract_attributes(&g, &values, "Country", ExtractionConfig::default()).unwrap();
        let hdi = res.table.column("HDI").unwrap();
        assert!(hdi.null_count() > 0, "some HDI values should be missing");
        assert!(
            hdi.null_count() < hdi.len(),
            "not all HDI values should be missing"
        );
    }

    #[test]
    fn zero_missing_config_keeps_everything() {
        let w = small_world();
        let cfg = KgConfig {
            random_missing: 0.0,
            biased_missing: 0.0,
            ..Default::default()
        };
        let g = build_kg(&w, cfg);
        let values: Vec<String> = w.countries.iter().map(|c| c.name.clone()).collect();
        let res = extract_attributes(&g, &values, "Country", ExtractionConfig::default()).unwrap();
        assert_eq!(res.table.column("HDI").unwrap().null_count(), 0);
        assert_eq!(res.table.column("Gini").unwrap().null_count(), 0);
    }

    #[test]
    fn biased_missingness_targets_high_values() {
        let w = World::generate(WorldConfig {
            n_countries: 150,
            ..Default::default()
        });
        let cfg = KgConfig {
            random_missing: 0.0,
            biased_missing: 0.8,
            seed: 11,
            ..Default::default()
        };
        let g = build_kg(&w, cfg);
        let values: Vec<String> = w.countries.iter().map(|c| c.name.clone()).collect();
        let res = extract_attributes(&g, &values, "Country", ExtractionConfig::default()).unwrap();
        let hdi = res.table.column("HDI").unwrap();
        // Missing HDI entries should correspond to higher true HDI on average.
        let mut missing_true = Vec::new();
        let mut present_true = Vec::new();
        for (i, c) in w.countries.iter().enumerate() {
            if hdi.is_null_at(i) {
                missing_true.push(c.hdi);
            } else {
                present_true.push(c.hdi);
            }
        }
        assert!(!missing_true.is_empty() && !present_true.is_empty());
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            avg(&missing_true) > avg(&present_true),
            "dropout should be biased towards high HDI"
        );
    }

    #[test]
    fn dataset_name_aliases_registered() {
        let w = World::generate(WorldConfig::default());
        let g = build_kg(&w, KgConfig::default());
        assert_eq!(g.resolve_alias("Russian Federation"), Some("Russia"));
    }

    #[test]
    fn leader_links_enable_two_hops() {
        let w = small_world();
        let cfg = KgConfig {
            random_missing: 0.0,
            biased_missing: 0.0,
            ..Default::default()
        };
        let g = build_kg(&w, cfg);
        let res = extract_attributes(
            &g,
            &["Germany".to_string()],
            "Country",
            ExtractionConfig {
                hops: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(res.table.has_column("leader.age"));
    }
}
