//! Small sampling helpers shared by the dataset generators.

use rand::Rng;

/// Samples a standard normal variate via the Box–Muller transform.
pub fn normal<R: Rng>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + std_dev * z
}

/// Samples an index in `0..weights.len()` proportionally to `weights`.
///
/// # Panics
/// Panics when `weights` is empty or sums to a non-positive value.
pub fn weighted_index<R: Rng>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "weights must be non-empty");
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must sum to a positive value");
    let mut target = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Picks a uniformly random element of a slice.
pub fn choose<'a, R: Rng, T>(rng: &mut R, items: &'a [T]) -> &'a T {
    &items[rng.gen_range(0..items.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..20000).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = StdRng::seed_from_u64(2);
        let weights = [1.0, 0.0, 9.0];
        let mut counts = [0usize; 3];
        for _ in 0..5000 {
            counts[weighted_index(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn weighted_index_empty_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        weighted_index(&mut rng, &[]);
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = StdRng::seed_from_u64(4);
        let items = ["a", "b", "c"];
        for _ in 0..20 {
            assert!(items.contains(choose(&mut rng, &items)));
        }
    }
}
