//! The ground-truth world model.
//!
//! The paper's evaluation relies on four real datasets (Stack Overflow,
//! Covid-19, Flights, Forbes) plus DBpedia. Offline we substitute a single
//! *world model*: a population of countries, US cities/states, airlines, and
//! celebrities with latent factors that causally drive both
//!
//! * the outcomes in the generated datasets (salary, death rate, flight
//!   delay, celebrity pay), and
//! * the properties stored in the synthetic knowledge graph (HDI, GDP, Gini,
//!   density, weather, fleet size, net worth, ...).
//!
//! Because the *same* factors appear on both sides, the exposure–outcome
//! correlations in the datasets are genuinely confounded by attributes that
//! live outside the dataset — exactly the situation MESA is designed to
//! explain — and the ground truth confounders are known, which the test suite
//! and the simulated user study exploit.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Names and continents of the seed countries (real names keep the examples
/// readable; every numeric attribute is synthetic).
pub const SEED_COUNTRIES: &[(&str, &str)] = &[
    ("Germany", "Europe"),
    ("France", "Europe"),
    ("Italy", "Europe"),
    ("Spain", "Europe"),
    ("Poland", "Europe"),
    ("Sweden", "Europe"),
    ("Norway", "Europe"),
    ("Switzerland", "Europe"),
    ("Netherlands", "Europe"),
    ("Portugal", "Europe"),
    ("Greece", "Europe"),
    ("Romania", "Europe"),
    ("Ukraine", "Europe"),
    ("United Kingdom", "Europe"),
    ("Ireland", "Europe"),
    ("Austria", "Europe"),
    ("Belgium", "Europe"),
    ("Denmark", "Europe"),
    ("Finland", "Europe"),
    ("Hungary", "Europe"),
    ("United States", "North America"),
    ("Canada", "North America"),
    ("Mexico", "North America"),
    ("Guatemala", "North America"),
    ("Cuba", "North America"),
    ("Costa Rica", "North America"),
    ("Panama", "North America"),
    ("Honduras", "North America"),
    ("Brazil", "South America"),
    ("Argentina", "South America"),
    ("Chile", "South America"),
    ("Colombia", "South America"),
    ("Peru", "South America"),
    ("Uruguay", "South America"),
    ("Bolivia", "South America"),
    ("Ecuador", "South America"),
    ("China", "Asia"),
    ("India", "Asia"),
    ("Japan", "Asia"),
    ("South Korea", "Asia"),
    ("Indonesia", "Asia"),
    ("Vietnam", "Asia"),
    ("Thailand", "Asia"),
    ("Malaysia", "Asia"),
    ("Philippines", "Asia"),
    ("Pakistan", "Asia"),
    ("Bangladesh", "Asia"),
    ("Israel", "Asia"),
    ("Turkey", "Asia"),
    ("Saudi Arabia", "Asia"),
    ("Russia", "Asia"),
    ("Nigeria", "Africa"),
    ("Egypt", "Africa"),
    ("South Africa", "Africa"),
    ("Kenya", "Africa"),
    ("Ethiopia", "Africa"),
    ("Ghana", "Africa"),
    ("Morocco", "Africa"),
    ("Tanzania", "Africa"),
    ("Algeria", "Africa"),
    ("Australia", "Oceania"),
    ("New Zealand", "Oceania"),
];

/// WHO regions, used by the Covid dataset.
pub const WHO_REGIONS: &[&str] = &[
    "Europe",
    "Americas",
    "South-East Asia",
    "Eastern Mediterranean",
    "Africa",
    "Western Pacific",
];

/// A country with its latent "success" factor and derived attributes.
#[derive(Debug, Clone)]
pub struct Country {
    /// Canonical name (the KG entity name).
    pub name: String,
    /// The name as it appears in the *datasets* — occasionally different from
    /// the canonical KG name so that entity linking realistically fails for a
    /// small fraction of values (e.g. `"Russian Federation"` vs `"Russia"`).
    pub dataset_name: String,
    /// Continent.
    pub continent: String,
    /// WHO region.
    pub who_region: String,
    /// Latent socio-economic success in `[0, 1]`; drives HDI, GDP, Gini and —
    /// through them — salaries and Covid outcomes. Never exposed directly.
    pub success: f64,
    /// Human Development Index in `[0.3, 1.0]`.
    pub hdi: f64,
    /// GDP per capita (thousands of USD).
    pub gdp_per_capita: f64,
    /// Total GDP (billions of USD).
    pub gdp_total: f64,
    /// Gini inequality index (higher = more unequal).
    pub gini: f64,
    /// Population (millions).
    pub population: f64,
    /// Area (thousands of km^2).
    pub area: f64,
    /// Population density (people per km^2).
    pub density: f64,
    /// Currency name.
    pub currency: String,
    /// Main language.
    pub language: String,
    /// Year the current state was established.
    pub established: i64,
    /// Latent quality of the public-health response in `[0, 1]` (partially
    /// driven by `success`); drives Covid death rates together with density.
    pub health_quality: f64,
}

/// A US city used by the Flights dataset, with the weather and population
/// attributes the paper's explanations reference.
#[derive(Debug, Clone)]
pub struct City {
    /// City name (KG entity name and dataset value).
    pub name: String,
    /// Two-letter state code.
    pub state: String,
    /// Total population (thousands).
    pub population: f64,
    /// Urban population (thousands).
    pub population_urban: f64,
    /// Metropolitan population (thousands).
    pub population_metro: f64,
    /// Population density.
    pub density: f64,
    /// National population rank (1 = largest).
    pub population_rank: i64,
    /// Median household income (thousands of USD).
    pub median_income: f64,
    /// Days of precipitation per year.
    pub precipitation_days: f64,
    /// Annual snowfall (inches).
    pub year_snow: f64,
    /// Mean annual low temperature (F).
    pub year_low_f: f64,
    /// Mean annual temperature (F).
    pub year_avg_f: f64,
    /// Mean December low temperature (F).
    pub december_low_f: f64,
    /// Percentage of sunny days.
    pub percent_sun: f64,
    /// Latent congestion factor in `[0, 1]` (driven by population); drives
    /// delays together with weather.
    pub congestion: f64,
    /// Latent bad-weather factor in `[0, 1]`; drives delays.
    pub bad_weather: f64,
}

/// An airline used by the Flights dataset.
#[derive(Debug, Clone)]
pub struct Airline {
    /// Airline name / IATA-like code.
    pub name: String,
    /// Fleet size (number of aircraft).
    pub fleet_size: f64,
    /// Shareholder equity (billions).
    pub equity: f64,
    /// Annual revenue (billions).
    pub revenue: f64,
    /// Net income (billions).
    pub net_income: f64,
    /// Number of employees (thousands).
    pub employees: f64,
    /// Latent operational quality in `[0, 1]` (larger fleet / equity → better
    /// operations); drives airline-attributable delay.
    pub ops_quality: f64,
}

/// Celebrity categories in the Forbes dataset.
pub const CELEB_CATEGORIES: &[&str] = &["Actors", "Athletes", "Directors/Producers", "Musicians"];

/// A celebrity used by the Forbes dataset.
#[derive(Debug, Clone)]
pub struct Celebrity {
    /// Name (KG entity name and dataset value).
    pub name: String,
    /// Category (Actors, Athletes, ...).
    pub category: String,
    /// Gender.
    pub gender: String,
    /// Age in years.
    pub age: f64,
    /// Year the career started.
    pub active_since: i64,
    /// Net worth (millions of USD).
    pub net_worth: f64,
    /// Number of major awards (actors / directors / musicians).
    pub awards: f64,
    /// Number of cups / championships (athletes).
    pub cups: f64,
    /// Draft pick position (athletes; lower = better).
    pub draft_pick: f64,
    /// Citizenship country (canonical name).
    pub citizenship: String,
    /// Latent experience/skill in `[0, 1]`; drives pay together with
    /// category-specific factors.
    pub experience: f64,
}

/// Configuration for world generation.
#[derive(Debug, Clone, Copy)]
pub struct WorldConfig {
    /// Total number of countries (seed countries plus synthetic ones).
    pub n_countries: usize,
    /// Number of US cities.
    pub n_cities: usize,
    /// Number of airlines.
    pub n_airlines: usize,
    /// Number of celebrities.
    pub n_celebrities: usize,
    /// RNG seed (the whole world is deterministic given the seed).
    pub seed: u64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            n_countries: 188,
            n_cities: 120,
            n_airlines: 14,
            n_celebrities: 400,
            seed: 42,
        }
    }
}

/// The generated world: the common ground truth behind every dataset and the
/// knowledge graph.
#[derive(Debug, Clone)]
pub struct World {
    /// All countries.
    pub countries: Vec<Country>,
    /// All US cities.
    pub cities: Vec<City>,
    /// All airlines.
    pub airlines: Vec<Airline>,
    /// All celebrities.
    pub celebrities: Vec<Celebrity>,
    /// The configuration the world was generated with.
    pub config: WorldConfig,
}

const US_STATES: &[&str] = &[
    "CA", "TX", "NY", "FL", "IL", "WA", "MA", "CO", "GA", "AZ", "NV", "OR", "MN", "NC", "PA", "OH",
];

const LANGUAGES: &[&str] = &[
    "English",
    "Spanish",
    "French",
    "German",
    "Mandarin",
    "Arabic",
    "Portuguese",
    "Hindi",
    "Local",
];

fn who_region_for(continent: &str, rng: &mut StdRng) -> String {
    match continent {
        "Europe" => "Europe".to_string(),
        "North America" | "South America" => "Americas".to_string(),
        "Africa" => "Africa".to_string(),
        "Oceania" => "Western Pacific".to_string(),
        "Asia" => {
            let opts = [
                "South-East Asia",
                "Eastern Mediterranean",
                "Western Pacific",
            ];
            opts[rng.gen_range(0..opts.len())].to_string()
        }
        _ => "Americas".to_string(),
    }
}

impl World {
    /// Generates a world deterministically from the configuration.
    pub fn generate(config: WorldConfig) -> World {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let countries = Self::gen_countries(&mut rng, config.n_countries);
        let cities = Self::gen_cities(&mut rng, config.n_cities);
        let airlines = Self::gen_airlines(&mut rng, config.n_airlines);
        let celebrities = Self::gen_celebrities(&mut rng, config.n_celebrities, &countries);
        World {
            countries,
            cities,
            airlines,
            celebrities,
            config,
        }
    }

    fn gen_countries(rng: &mut StdRng, n: usize) -> Vec<Country> {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let (name, continent) = if let Some(&(n, c)) = SEED_COUNTRIES.get(i) {
                (n.to_string(), c.to_string())
            } else {
                let continents = [
                    "Europe",
                    "Asia",
                    "Africa",
                    "North America",
                    "South America",
                    "Oceania",
                ];
                (
                    format!("Country {i:03}"),
                    continents[rng.gen_range(0..continents.len())].to_string(),
                )
            };
            // Latent success: continent-dependent prior plus noise, so that
            // refining by continent changes which attributes explain (the
            // unexplained-subgroups experiment relies on HDI being internally
            // consistent within Europe).
            let base: f64 = match continent.as_str() {
                "Europe" => 0.78,
                "North America" => 0.70,
                "Oceania" => 0.75,
                "Asia" => 0.55,
                "South America" => 0.50,
                _ => 0.35,
            };
            let success = (base + rng.gen_range(-0.13..0.13)).clamp(0.05, 0.98);
            let hdi = (0.35 + 0.62 * success + rng.gen_range(-0.02..0.02)).clamp(0.3, 0.99);
            let population = (2.0 + rng.gen::<f64>().powi(3) * 1300.0).max(0.3);
            let gdp_per_capita =
                (2.0 + 75.0 * success.powf(1.5) + rng.gen_range(-2.0..2.0)).max(0.8);
            let gdp_total = gdp_per_capita * population / 1000.0 * 1000.0; // billions
            let gini = (55.0 - 28.0 * success + rng.gen_range(-3.0..3.0)).clamp(22.0, 65.0);
            let area = (10.0 + rng.gen::<f64>().powi(2) * 9000.0).max(1.0);
            let density = population * 1_000_000.0 / (area * 1000.0);
            let currency = if continent == "Europe" && success > 0.6 && rng.gen_bool(0.7) {
                "Euro".to_string()
            } else {
                format!("{name} currency")
            };
            let language = LANGUAGES[rng.gen_range(0..LANGUAGES.len())].to_string();
            let established = rng.gen_range(1700..1995);
            let health_quality = (0.55 * success + 0.45 * rng.gen::<f64>()).clamp(0.0, 1.0);
            // A few dataset spellings differ from the canonical KG name.
            let dataset_name = match name.as_str() {
                "Russia" => "Russian Federation".to_string(),
                "South Korea" => "Republic of Korea".to_string(),
                "Vietnam" => "Viet Nam".to_string(),
                _ => name.clone(),
            };
            out.push(Country {
                name,
                dataset_name,
                who_region: who_region_for(&continent, rng),
                continent,
                success,
                hdi,
                gdp_per_capita,
                gdp_total,
                gini,
                population,
                area,
                density,
                currency,
                language,
                established,
                health_quality,
            });
        }
        out
    }

    fn gen_cities(rng: &mut StdRng, n: usize) -> Vec<City> {
        let mut cities: Vec<City> = (0..n)
            .map(|i| {
                let state = US_STATES[i % US_STATES.len()].to_string();
                let population = (40.0 + rng.gen::<f64>().powi(3) * 8000.0).max(20.0);
                let bad_weather = rng.gen::<f64>();
                let congestion = ((population / 8000.0).powf(0.5) * 0.8 + rng.gen::<f64>() * 0.2)
                    .clamp(0.0, 1.0);
                City {
                    name: format!("City {i:03} {state}"),
                    state,
                    population,
                    population_urban: population * rng.gen_range(0.6..0.95),
                    population_metro: population * rng.gen_range(1.1..2.5),
                    density: population * rng.gen_range(2.0..18.0),
                    population_rank: 0, // filled below
                    median_income: 38.0 + 45.0 * rng.gen::<f64>(),
                    precipitation_days: 60.0 + 120.0 * bad_weather + rng.gen_range(-10.0..10.0),
                    year_snow: (bad_weather * 60.0 + rng.gen_range(-5.0..5.0)).max(0.0),
                    year_low_f: 55.0 - 35.0 * bad_weather + rng.gen_range(-4.0..4.0),
                    year_avg_f: 68.0 - 25.0 * bad_weather + rng.gen_range(-4.0..4.0),
                    december_low_f: 45.0 - 38.0 * bad_weather + rng.gen_range(-5.0..5.0),
                    percent_sun: 75.0 - 40.0 * bad_weather + rng.gen_range(-5.0..5.0),
                    congestion,
                    bad_weather,
                }
            })
            .collect();
        // Population ranks.
        let mut order: Vec<usize> = (0..cities.len()).collect();
        order.sort_by(|&a, &b| {
            cities[b]
                .population
                .partial_cmp(&cities[a].population)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for (rank, idx) in order.into_iter().enumerate() {
            cities[idx].population_rank = rank as i64 + 1;
        }
        cities
    }

    fn gen_airlines(rng: &mut StdRng, n: usize) -> Vec<Airline> {
        (0..n)
            .map(|i| {
                let ops_quality = rng.gen::<f64>();
                let fleet_size = 60.0 + 900.0 * ops_quality + rng.gen_range(-30.0..30.0);
                Airline {
                    name: format!("Airline {}", (b'A' + (i % 26) as u8) as char),
                    fleet_size: fleet_size.max(10.0),
                    equity: (1.0 + 18.0 * ops_quality + rng.gen_range(-1.0..1.0)).max(0.2),
                    revenue: (3.0 + 40.0 * ops_quality + rng.gen_range(-2.0..2.0)).max(0.5),
                    net_income: -1.0 + 6.0 * ops_quality + rng.gen_range(-0.5..0.5),
                    employees: (5.0 + 90.0 * ops_quality + rng.gen_range(-3.0..3.0)).max(1.0),
                    ops_quality,
                }
            })
            .collect()
    }

    fn gen_celebrities(rng: &mut StdRng, n: usize, countries: &[Country]) -> Vec<Celebrity> {
        (0..n)
            .map(|i| {
                let category =
                    CELEB_CATEGORIES[rng.gen_range(0..CELEB_CATEGORIES.len())].to_string();
                let gender = if rng.gen_bool(0.62) { "Male" } else { "Female" }.to_string();
                let experience = rng.gen::<f64>();
                let age = match category.as_str() {
                    "Athletes" => 20.0 + 22.0 * experience,
                    _ => 25.0 + 50.0 * experience,
                } + rng.gen_range(-3.0..3.0);
                let active_since = (2022.0 - (age - 18.0).max(1.0)) as i64;
                let net_worth =
                    (5.0 + 900.0 * experience.powi(2) + rng.gen_range(0.0..40.0)).max(1.0);
                let awards = (experience * 10.0 + rng.gen_range(0.0..2.0)).floor();
                let cups = if category == "Athletes" {
                    (experience * 8.0 + rng.gen_range(0.0..2.0)).floor()
                } else {
                    0.0
                };
                let draft_pick = if category == "Athletes" {
                    (1.0 + (1.0 - experience) * 40.0 + rng.gen_range(0.0..5.0)).floor()
                } else {
                    0.0
                };
                let citizenship = countries[rng.gen_range(0..countries.len().min(40))]
                    .name
                    .clone();
                Celebrity {
                    name: format!("Celebrity {i:04}"),
                    category,
                    gender,
                    age,
                    active_since,
                    net_worth,
                    awards,
                    cups,
                    draft_pick,
                    citizenship,
                    experience,
                }
            })
            .collect()
    }

    /// Looks up a country by canonical name.
    pub fn country(&self, name: &str) -> Option<&Country> {
        self.countries.iter().find(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::generate(WorldConfig {
            n_countries: 80,
            n_cities: 30,
            n_airlines: 8,
            n_celebrities: 60,
            seed: 1,
        })
    }

    #[test]
    fn generation_is_deterministic() {
        let a = World::generate(WorldConfig::default());
        let b = World::generate(WorldConfig::default());
        assert_eq!(a.countries.len(), b.countries.len());
        assert_eq!(a.countries[5].hdi, b.countries[5].hdi);
        assert_eq!(a.cities[3].population, b.cities[3].population);
        assert_eq!(a.celebrities[7].net_worth, b.celebrities[7].net_worth);
    }

    #[test]
    fn sizes_match_config() {
        let w = world();
        assert_eq!(w.countries.len(), 80);
        assert_eq!(w.cities.len(), 30);
        assert_eq!(w.airlines.len(), 8);
        assert_eq!(w.celebrities.len(), 60);
    }

    #[test]
    fn country_attributes_in_plausible_ranges() {
        for c in &world().countries {
            assert!((0.3..=0.99).contains(&c.hdi), "hdi {}", c.hdi);
            assert!(c.gdp_per_capita > 0.0);
            assert!((22.0..=65.0).contains(&c.gini));
            assert!(c.population > 0.0);
            assert!(c.density > 0.0);
            assert!(!c.currency.is_empty());
        }
    }

    #[test]
    fn success_drives_hdi_and_gini() {
        let w = world();
        // HDI increases with success; Gini decreases: check rank correlation sign
        let mut by_success: Vec<&Country> = w.countries.iter().collect();
        by_success.sort_by(|a, b| a.success.partial_cmp(&b.success).unwrap());
        let lo = &by_success[..20];
        let hi = &by_success[by_success.len() - 20..];
        let mean = |xs: &[&Country], f: fn(&Country) -> f64| {
            xs.iter().map(|c| f(c)).sum::<f64>() / xs.len() as f64
        };
        assert!(mean(hi, |c| c.hdi) > mean(lo, |c| c.hdi) + 0.1);
        assert!(mean(hi, |c| c.gini) < mean(lo, |c| c.gini) - 5.0);
        assert!(mean(hi, |c| c.gdp_per_capita) > mean(lo, |c| c.gdp_per_capita));
    }

    #[test]
    fn europe_has_consistent_hdi() {
        // The unexplained-subgroup experiment needs European HDIs to be similar.
        let w = World::generate(WorldConfig::default());
        let eu: Vec<f64> = w
            .countries
            .iter()
            .filter(|c| c.continent == "Europe")
            .map(|c| c.hdi)
            .collect();
        let all: Vec<f64> = w.countries.iter().map(|c| c.hdi).collect();
        let var = |xs: &[f64]| {
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
        };
        assert!(
            var(&eu) < var(&all) / 2.0,
            "European HDI should be much less varied"
        );
    }

    #[test]
    fn dataset_names_mostly_match_canonical() {
        let w = World::generate(WorldConfig::default());
        let mismatches = w
            .countries
            .iter()
            .filter(|c| c.dataset_name != c.name)
            .count();
        assert!(mismatches >= 2, "some spellings should differ");
        assert!(mismatches < 10, "but only a handful");
    }

    #[test]
    fn city_ranks_are_a_permutation() {
        let w = world();
        let mut ranks: Vec<i64> = w.cities.iter().map(|c| c.population_rank).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, (1..=w.cities.len() as i64).collect::<Vec<_>>());
    }

    #[test]
    fn airline_ops_quality_tracks_fleet() {
        let w = World::generate(WorldConfig::default());
        let mut sorted: Vec<&Airline> = w.airlines.iter().collect();
        sorted.sort_by(|a, b| a.ops_quality.partial_cmp(&b.ops_quality).unwrap());
        assert!(sorted.last().unwrap().fleet_size > sorted.first().unwrap().fleet_size);
    }

    #[test]
    fn athletes_have_cups_others_do_not() {
        let w = World::generate(WorldConfig::default());
        for c in &w.celebrities {
            if c.category != "Athletes" {
                assert_eq!(c.cups, 0.0);
                assert_eq!(c.draft_pick, 0.0);
            }
        }
        assert!(w
            .celebrities
            .iter()
            .any(|c| c.category == "Athletes" && c.cups > 0.0));
    }

    #[test]
    fn country_lookup() {
        let w = world();
        assert!(w.country("Germany").is_some());
        assert!(w.country("Atlantis").is_none());
    }
}
