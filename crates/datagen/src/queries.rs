//! Query workloads: the 14 representative queries of Table 2 and the random
//! query generator of Section 5.1.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use tabular::{AggregateQuery, DataFrame, Predicate, Result, Value};

use crate::datasets::Dataset;

/// One workload query: its paper identifier, the dataset it runs on, a short
/// description, and the query itself.
#[derive(Debug, Clone)]
pub struct WorkloadQuery {
    /// Identifier matching Table 2 (e.g. `"SO Q1"`).
    pub id: String,
    /// The dataset the query runs on.
    pub dataset: Dataset,
    /// Human-readable description (the "Query" column of Table 2).
    pub description: String,
    /// The aggregate query.
    pub query: AggregateQuery,
}

impl WorkloadQuery {
    fn new(id: &str, dataset: Dataset, description: &str, query: AggregateQuery) -> Self {
        WorkloadQuery {
            id: id.to_string(),
            dataset,
            description: description.to_string(),
            query,
        }
    }
}

/// The 14 representative queries of Table 2.
pub fn representative_queries() -> Vec<WorkloadQuery> {
    use Dataset::*;
    vec![
        WorkloadQuery::new(
            "SO Q1",
            StackOverflow,
            "Average salary per country",
            AggregateQuery::avg("Country", "Salary"),
        ),
        WorkloadQuery::new(
            "SO Q2",
            StackOverflow,
            "Average salary per continent",
            AggregateQuery::avg("Continent", "Salary"),
        ),
        WorkloadQuery::new(
            "SO Q3",
            StackOverflow,
            "Average salary per country in Europe",
            AggregateQuery::avg("Country", "Salary")
                .with_context(Predicate::eq("Continent", "Europe")),
        ),
        WorkloadQuery::new(
            "Flights Q1",
            Flights,
            "Average delay per origin city",
            AggregateQuery::avg("Origin_city", "Departure_delay"),
        ),
        WorkloadQuery::new(
            "Flights Q2",
            Flights,
            "Average delay per origin state",
            AggregateQuery::avg("Origin_state", "Departure_delay"),
        ),
        WorkloadQuery::new(
            "Flights Q3",
            Flights,
            "Average delay per origin cities in CA",
            AggregateQuery::avg("Origin_city", "Departure_delay")
                .with_context(Predicate::eq("Origin_state", "CA")),
        ),
        WorkloadQuery::new(
            "Flights Q4",
            Flights,
            "Average delay per origin state and airline",
            // A single grouping attribute keeps the exposition simple (as in
            // the paper); the airline restriction enters through the context.
            AggregateQuery::avg("Origin_state", "Departure_delay")
                .with_context(Predicate::eq("Airline", "Airline A")),
        ),
        WorkloadQuery::new(
            "Flights Q5",
            Flights,
            "Average delay per airline",
            AggregateQuery::avg("Airline", "Departure_delay"),
        ),
        WorkloadQuery::new(
            "Covid Q1",
            Covid,
            "Deaths per country",
            AggregateQuery::avg("Country", "Deaths_per_100_cases"),
        ),
        WorkloadQuery::new(
            "Covid Q2",
            Covid,
            "Deaths per country in Europe",
            AggregateQuery::avg("Country", "Deaths_per_100_cases")
                .with_context(Predicate::eq("WHO-Region", "Europe")),
        ),
        WorkloadQuery::new(
            "Covid Q3",
            Covid,
            "Average deaths per WHO-Region",
            AggregateQuery::avg("WHO-Region", "Deaths_per_100_cases"),
        ),
        WorkloadQuery::new(
            "Forbes Q1",
            Forbes,
            "Salary of Actors",
            AggregateQuery::avg("Name", "Pay").with_context(Predicate::eq("Category", "Actors")),
        ),
        WorkloadQuery::new(
            "Forbes Q2",
            Forbes,
            "Salary of Directors/Producers",
            AggregateQuery::avg("Name", "Pay")
                .with_context(Predicate::eq("Category", "Directors/Producers")),
        ),
        WorkloadQuery::new(
            "Forbes Q3",
            Forbes,
            "Salary of Athletes",
            AggregateQuery::avg("Name", "Pay").with_context(Predicate::eq("Category", "Athletes")),
        ),
    ]
}

/// The representative queries restricted to one dataset.
pub fn representative_queries_for(dataset: Dataset) -> Vec<WorkloadQuery> {
    representative_queries()
        .into_iter()
        .filter(|q| q.dataset == dataset)
        .collect()
}

/// Generates `n` random aggregate queries over a dataset, following §5.1:
/// the exposure is one of the extraction columns, the outcome is a numeric
/// attribute, and a random `WHERE` clause on another attribute is added while
/// ensuring the selected subset keeps more than 10% of the tuples.
pub fn random_queries(
    dataset: Dataset,
    df: &DataFrame,
    n: usize,
    seed: u64,
) -> Result<Vec<WorkloadQuery>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    let exposures = dataset.extraction_columns();
    let outcomes = dataset.outcome_columns();
    let all_columns: Vec<String> = df.column_names().iter().map(|s| s.to_string()).collect();
    let min_rows = (df.n_rows() as f64 * 0.1).ceil() as usize;

    let mut attempts = 0;
    while out.len() < n && attempts < n * 50 {
        attempts += 1;
        let exposure = exposures[rng.gen_range(0..exposures.len())];
        let outcome = outcomes[rng.gen_range(0..outcomes.len())];
        // Pick a context attribute different from exposure and outcome.
        let candidates: Vec<&String> = all_columns
            .iter()
            .filter(|c| c.as_str() != exposure && c.as_str() != outcome)
            .collect();
        if candidates.is_empty() || df.n_rows() == 0 {
            break;
        }
        let ctx_col = candidates[rng.gen_range(0..candidates.len())].clone();
        let row = rng.gen_range(0..df.n_rows());
        let value = df.get(row, &ctx_col)?;
        let context = if value.is_null() {
            Predicate::True
        } else {
            // Numeric context values are turned into a >= condition so the
            // selected subset is not a single group; categorical values use
            // equality.
            match value {
                Value::Float(_) | Value::Int(_) => Predicate::Ge(ctx_col.clone(), value),
                v => Predicate::Eq(ctx_col.clone(), v),
            }
        };
        let query = AggregateQuery::avg(exposure, outcome).with_context(context);
        // Enforce the >10% selectivity requirement.
        let kept = query.apply_context(df)?.n_rows();
        if kept < min_rows || kept == 0 {
            continue;
        }
        out.push(WorkloadQuery {
            id: format!("{} R{}", dataset.name(), out.len() + 1),
            dataset,
            description: format!("random query: avg({outcome}) by {exposure}"),
            query,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::generate_so;
    use crate::world::{World, WorldConfig};

    #[test]
    fn fourteen_representative_queries() {
        let qs = representative_queries();
        assert_eq!(qs.len(), 14);
        // 3 SO, 5 Flights, 3 Covid, 3 Forbes as in Table 2
        let count = |d: Dataset| qs.iter().filter(|q| q.dataset == d).count();
        assert_eq!(count(Dataset::StackOverflow), 3);
        assert_eq!(count(Dataset::Flights), 5);
        assert_eq!(count(Dataset::Covid), 3);
        assert_eq!(count(Dataset::Forbes), 3);
        // ids unique
        let mut ids: Vec<&str> = qs.iter().map(|q| q.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 14);
    }

    #[test]
    fn representative_queries_filter() {
        let so = representative_queries_for(Dataset::StackOverflow);
        assert_eq!(so.len(), 3);
        assert!(so.iter().all(|q| q.dataset == Dataset::StackOverflow));
    }

    #[test]
    fn representative_queries_run_on_generated_data() {
        let world = World::generate(WorldConfig {
            n_countries: 50,
            n_cities: 20,
            n_airlines: 6,
            n_celebrities: 60,
            seed: 2,
        });
        let so = generate_so(&world, 1500, 3).unwrap();
        for wq in representative_queries_for(Dataset::StackOverflow) {
            let res = wq.query.run(&so).unwrap();
            assert!(res.n_rows() > 1, "{} produced a single group", wq.id);
        }
    }

    #[test]
    fn random_queries_respect_selectivity() {
        let world = World::generate(WorldConfig {
            n_countries: 50,
            n_cities: 20,
            n_airlines: 6,
            n_celebrities: 60,
            seed: 2,
        });
        let so = generate_so(&world, 1000, 3).unwrap();
        let qs = random_queries(Dataset::StackOverflow, &so, 10, 77).unwrap();
        assert_eq!(qs.len(), 10);
        let min_rows = 100;
        for q in &qs {
            let kept = q.query.apply_context(&so).unwrap().n_rows();
            assert!(kept >= min_rows, "{}: only {kept} rows kept", q.id);
            assert_eq!(q.query.outcome, "Salary");
        }
        // deterministic per seed
        let qs2 = random_queries(Dataset::StackOverflow, &so, 10, 77).unwrap();
        assert_eq!(qs[0].query, qs2[0].query);
    }
}
