//! # datagen
//!
//! Synthetic data for the MESA reproduction: a ground-truth [`World`] model,
//! generators for the four evaluation datasets (Stack Overflow, Covid-19,
//! Flights, Forbes), a builder for the DBpedia-like knowledge graph over the
//! same world, and the query workloads (the 14 representative queries of
//! Table 2 plus random queries).
//!
//! Because datasets and knowledge graph are generated from the *same* latent
//! factors, the exposure–outcome correlations in the datasets are genuinely
//! confounded by attributes that only exist in the graph — the situation MESA
//! explains — and the ground truth is known, so explanation quality can be
//! scored without a user study.
//!
//! ```
//! use datagen::{World, WorldConfig, Dataset, build_kg, KgConfig};
//!
//! let world = World::generate(WorldConfig { n_countries: 40, n_cities: 10,
//!     n_airlines: 4, n_celebrities: 20, seed: 1 });
//! let covid = Dataset::Covid.generate(&world, 0, 1).unwrap();
//! assert_eq!(covid.n_rows(), 40);
//! let graph = build_kg(&world, KgConfig::default());
//! assert!(graph.has_entity("Germany"));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod adversarial;
pub mod datasets;
pub mod kg_builder;
pub mod queries;
pub mod util;
pub mod world;

pub use adversarial::{
    entity_key_column, sample_cardinality, AdversarialDType, ColumnSpec, KgSpec, Layout,
};
pub use datasets::{
    generate_covid, generate_flights, generate_forbes, generate_so, Dataset, COVID_DEFAULT_ROWS,
    FLIGHTS_DEFAULT_ROWS, FORBES_DEFAULT_ROWS, SO_DEFAULT_ROWS,
};
pub use kg_builder::{build_kg, KgConfig};
pub use queries::{
    random_queries, representative_queries, representative_queries_for, WorkloadQuery,
};
pub use world::{Country, World, WorldConfig};
