//! The Correlation-Explanation problem (Definition 2.1) and the prepared,
//! discretised view of the data it is solved over.
//!
//! Preparation pipeline (shared by MESA and every baseline):
//!
//! 1. apply the query context `C` (the `WHERE` clause) to the input table;
//! 2. join the attributes extracted from the knowledge graph on each
//!    extraction column;
//! 3. bin numeric attributes so the information-theoretic estimators can work
//!    over discrete codes;
//! 4. encode every column once into an [`EncodedFrame`].
//!
//! Everything downstream — pruning, MCIMR, baselines, responsibility, the
//! subgroup search — operates on the resulting [`PreparedQuery`].

use std::sync::Arc;

use infotheory::EncodedFrame;
use tabular::{bin_frame_encoded, AggregateQuery, BinStrategy, DataFrame, JoinKind};

use kg::{extract_attributes, ExtractionConfig, ExtractionResult, ExtractionStats, KnowledgeGraph};

use crate::error::{MesaError, Result};

/// Binning / preparation options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrepareConfig {
    /// Number of bins for numeric attributes.
    pub n_bins: usize,
    /// Binning strategy.
    pub bin_strategy: BinStrategy,
    /// KG extraction configuration (hops, one-to-many aggregation).
    pub extraction: ExtractionConfig,
}

impl Default for PrepareConfig {
    fn default() -> Self {
        PrepareConfig {
            n_bins: 6,
            bin_strategy: BinStrategy::EqualFrequency,
            extraction: ExtractionConfig::default(),
        }
    }
}

/// A query together with the discretised data it will be explained over.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    /// The original query.
    pub query: AggregateQuery,
    /// The context-filtered, KG-joined, binned frame.
    pub frame: DataFrame,
    /// Encoded (discrete) view of [`PreparedQuery::frame`].
    pub encoded: EncodedFrame,
    /// Candidate attribute names `A = E ∪ T \ {O, T}`.
    pub candidates: Vec<String>,
    /// Names of the candidates that came from the knowledge graph.
    pub extracted: Vec<String>,
    /// Per-extraction-column statistics (linking success, #attributes).
    pub extraction_stats: Vec<(String, ExtractionStats)>,
}

impl PreparedQuery {
    /// Approximate resident footprint in bytes (frame + sealed encoded
    /// columns + name lists), pricing entries for the session's
    /// prepared-query budget.
    pub fn approx_bytes(&self) -> usize {
        let encoded: usize = self
            .encoded
            .encoding_report()
            .iter()
            .map(|r| r.sealed_bytes)
            .sum();
        let names: usize = self
            .candidates
            .iter()
            .chain(&self.extracted)
            .map(String::len)
            .sum();
        self.frame.approx_bytes() + encoded + names + 256
    }

    /// The exposure attribute `T`.
    pub fn exposure(&self) -> &str {
        &self.query.exposure
    }

    /// The outcome attribute `O`.
    pub fn outcome(&self) -> &str {
        &self.query.outcome
    }

    /// The baseline correlation `I(O; T | C)` with an empty explanation.
    pub fn baseline_cmi(&self) -> f64 {
        self.encoded
            .mutual_information(self.outcome(), self.exposure(), None)
            .unwrap_or(0.0)
    }

    /// The explanation score `I(O; T | E, C)` for a set of attributes.
    pub fn explanation_cmi(&self, attributes: &[String], weights: Option<&[f64]>) -> Result<f64> {
        let z: Vec<&str> = attributes.iter().map(|s| s.as_str()).collect();
        Ok(self
            .encoded
            .cmi(self.outcome(), self.exposure(), &z, weights)?)
    }

    /// The Definition 2.1 objective `I(O;T|E,C) · |E|` (with `|E| = 1` used
    /// for the empty set so the empty explanation is scored by its CMI).
    pub fn objective(&self, attributes: &[String]) -> Result<f64> {
        let cmi = self.explanation_cmi(attributes, None)?;
        Ok(cmi * attributes.len().max(1) as f64)
    }
}

/// An explanation: the selected confounding attributes, their explanation
/// score, and the per-attribute degrees of responsibility.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// Selected attribute names, in selection order.
    pub attributes: Vec<String>,
    /// `I(O;T|C)` before conditioning on the explanation.
    pub baseline_cmi: f64,
    /// `I(O;T|E,C)` — the explainability score (lower is better; 0 means the
    /// correlation is fully explained).
    pub explainability: f64,
    /// Degree of responsibility per attribute (Definition 2.2), in the same
    /// order as [`Explanation::attributes`].
    pub responsibilities: Vec<f64>,
}

impl Explanation {
    /// An empty explanation (nothing selected).
    pub fn empty(baseline_cmi: f64) -> Self {
        Explanation {
            attributes: Vec::new(),
            baseline_cmi,
            explainability: baseline_cmi,
            responsibilities: Vec::new(),
        }
    }

    /// Number of selected attributes.
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// Whether the explanation is empty.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// Fraction of the baseline correlation that the explanation removes, in
    /// `[0, 1]` (1 = fully explained).
    pub fn explained_fraction(&self) -> f64 {
        if self.baseline_cmi <= 0.0 {
            return 1.0;
        }
        ((self.baseline_cmi - self.explainability) / self.baseline_cmi).clamp(0.0, 1.0)
    }

    /// `(attribute, responsibility)` pairs sorted by decreasing responsibility.
    pub fn ranked_attributes(&self) -> Vec<(String, f64)> {
        let mut pairs: Vec<(String, f64)> = self
            .attributes
            .iter()
            .cloned()
            .zip(self.responsibilities.iter().copied())
            .collect();
        pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        pairs
    }
}

/// One extraction column's contribution to the KG-join stage of
/// [`prepare_query`]: the (collision-renamed) attribute table that was
/// left-joined in, plus its statistics.
#[derive(Debug, Clone)]
pub struct ExtractionJoin {
    /// The table column whose values were linked to KG entities.
    pub column: String,
    /// Name of the key column inside [`ExtractionJoin::table`].
    pub key: String,
    /// The extracted attribute table, after collision renames — exactly what
    /// was joined onto the frame. Shared (`Arc`) so a session's extraction
    /// cache can hand the same table to many queries without copying it.
    pub table: Arc<DataFrame>,
    /// Names of the attribute columns contributed by this table.
    pub attribute_names: Vec<String>,
    /// Linking/extraction statistics.
    pub stats: ExtractionStats,
}

/// The raw, pre-rename extraction output for one column's distinct values —
/// the unit a [`crate::session::Session`] caches and shares across queries.
/// It is a pure function of `(distinct values, extraction config)`: each
/// row's attributes depend only on that row's linked entity, so reusing the
/// table for another query with the same distinct values is byte-identical
/// to re-extracting.
#[derive(Debug, Clone)]
pub struct ColumnExtraction {
    /// The extracted attribute table, keyed by the extraction column's
    /// distinct values (key column first, attributes sorted by name).
    pub table: Arc<DataFrame>,
    /// Names of the attribute columns, in table order.
    pub attribute_names: Vec<String>,
    /// Linking/extraction statistics.
    pub stats: ExtractionStats,
}

impl ColumnExtraction {
    /// Approximate resident footprint in bytes, pricing entries for the
    /// session's extraction-cache budget.
    pub fn approx_bytes(&self) -> usize {
        self.table.approx_bytes() + self.attribute_names.iter().map(String::len).sum::<usize>() + 64
    }

    /// Wraps a [`kg::ExtractionResult`] for sharing.
    pub fn from_result(result: ExtractionResult) -> Self {
        let attribute_names = result.attribute_names();
        ColumnExtraction {
            table: Arc::new(result.table),
            attribute_names,
            stats: result.stats,
        }
    }
}

/// The KG extraction + join stage of [`prepare_query`], exposed on its own:
/// for each extraction column present in `df`, extracts the attributes of its
/// distinct values, renames collisions against the progressively joined frame
/// (`"<name> (<col>)"`), and left-joins the result. Returns the joined frame
/// together with each stage table — the `appendix_prepare` benchmark replays
/// the same tables through both join implementations, so what it times is by
/// construction what the pipeline runs.
pub fn extract_and_join(
    df: &DataFrame,
    graph: &KnowledgeGraph,
    extraction_columns: &[&str],
    config: ExtractionConfig,
) -> Result<(DataFrame, Vec<ExtractionJoin>)> {
    extract_and_join_with(df, extraction_columns, |_, values, key_column| {
        Ok(ColumnExtraction::from_result(extract_attributes(
            graph, values, key_column, config,
        )?))
    })
}

/// [`extract_and_join`] with the per-column extraction injected: `fetch` is
/// called as `fetch(column, distinct_values, key_column)` and may serve the
/// result from a cache (the session path) or extract on the spot (the cold
/// path). Collision renames against the progressively joined frame are
/// applied here, per query, on top of the fetched (pre-rename) table —
/// in place when the table is unshared, on a copy-on-write clone when it
/// came out of a cache.
pub fn extract_and_join_with<F>(
    df: &DataFrame,
    extraction_columns: &[&str],
    mut fetch: F,
) -> Result<(DataFrame, Vec<ExtractionJoin>)>
where
    F: FnMut(&str, &[String], &str) -> Result<ColumnExtraction>,
{
    let mut joined = df.clone();
    let mut joins = Vec::new();
    for &col in extraction_columns {
        if !joined.has_column(col) {
            continue;
        }
        // Distinct values of the extraction column (borrowed from the
        // encoding — extraction does not need its own copy).
        let encoded = joined.column(col)?.encode();
        let values = encoded.labels();
        if values.is_empty() {
            continue;
        }
        let key = format!("__key_{col}");
        let fetched = fetch(col, values, &key)?;
        let mut table = fetched.table;
        // Avoid column collisions across extraction columns (e.g. both the
        // origin city and origin state expose a `Density` property).
        let renames: Vec<(String, String)> = fetched
            .attribute_names
            .iter()
            .filter(|name| joined.has_column(name))
            .map(|name| (name.clone(), format!("{name} ({col})")))
            .collect();
        let attribute_names = if renames.is_empty() {
            fetched.attribute_names
        } else {
            let t = Arc::make_mut(&mut table);
            for (old, new) in &renames {
                let mut c = t.drop_column(old)?;
                c.rename(new.clone());
                t.add_column(c)?;
            }
            // Renamed columns moved to the end of the table; re-read the
            // names in table order.
            t.column_names()
                .into_iter()
                .filter(|n| *n != key)
                .map(|s| s.to_string())
                .collect()
        };
        parallel::fault_point!("mesa.join");
        parallel::checkpoint();
        joined = tabular::join(&joined, &table, col, &key, JoinKind::Left)?;
        joins.push(ExtractionJoin {
            column: col.to_string(),
            key,
            table,
            attribute_names,
            stats: fetched.stats,
        });
    }
    Ok((joined, joins))
}

/// Prepares a query for explanation: applies the context, extracts and joins
/// KG attributes for each extraction column, bins numeric attributes, and
/// encodes everything.
///
/// * `graph` — the knowledge source; `None` restricts candidates to the input
///   table (this is how the HypDB baseline and "input-only" ablations run).
/// * `extraction_columns` — the table columns whose values are linked to KG
///   entities (Table 1's "Columns used for extraction").
pub fn prepare_query(
    df: &DataFrame,
    query: &AggregateQuery,
    graph: Option<&KnowledgeGraph>,
    extraction_columns: &[&str],
    config: PrepareConfig,
) -> Result<PreparedQuery> {
    // 1. Context.
    let filtered = apply_query_context(df, query)?;

    // 2. KG extraction + join.
    let (joined, extraction_joins) = match graph {
        Some(graph) => extract_and_join(&filtered, graph, extraction_columns, config.extraction)?,
        None => (filtered, Vec::new()),
    };

    // 3.+4. Binning + encoding + candidate assembly.
    prepare_from_joined(query, joined, extraction_joins, config)
}

/// The context stage of [`prepare_query`] on its own: validates the query
/// against the frame and applies the `WHERE` clause, rejecting an empty
/// selection.
pub fn apply_query_context(df: &DataFrame, query: &AggregateQuery) -> Result<DataFrame> {
    query.validate(df).map_err(MesaError::from)?;
    let filtered = query.apply_context(df)?;
    if filtered.is_empty() {
        return Err(MesaError::InvalidInput(format!(
            "no rows satisfy the query context {}",
            query.context.describe()
        )));
    }
    Ok(filtered)
}

/// The binning + encoding tail of [`prepare_query`], callable on a frame the
/// caller has already joined (e.g. from a session's cached extraction
/// tables): bins numeric attributes, threads the bin codes into the encoded
/// frame, assembles the candidate set, and packs everything into a
/// [`PreparedQuery`].
pub fn prepare_from_joined(
    query: &AggregateQuery,
    joined: DataFrame,
    extraction_joins: Vec<ExtractionJoin>,
    config: PrepareConfig,
) -> Result<PreparedQuery> {
    let mut extracted_names: Vec<String> = Vec::new();
    let mut extraction_stats = Vec::new();
    for ej in extraction_joins {
        extracted_names.extend(ej.attribute_names);
        extraction_stats.push((ej.column, ej.stats));
    }

    // 3. Binning. The exposure is left unbinned only if categorical; numeric
    //    exposures are binned like everything else (paper §2.1). The pass
    //    also hands back the encodings it computed along the way (bin codes
    //    of binned columns, domain-check encodings of small numeric ones).
    let (binned, bin_encodings) =
        bin_frame_encoded(&joined, config.n_bins, config.bin_strategy, &[])?;

    // 4. Encoding + candidate assembly. Binned columns flow code-to-code:
    //    their encodings were produced by the binning pass, so only the
    //    remaining (categorical/bool) columns are encoded here.
    let encoded = EncodedFrame::from_frame_with(&binned, bin_encodings);
    let candidates: Vec<String> = binned
        .column_names()
        .into_iter()
        .filter(|&n| n != query.exposure && n != query.outcome)
        .map(|s| s.to_string())
        .collect();
    if candidates.is_empty() {
        return Err(MesaError::NoCandidates(
            "the frame only contains the exposure and outcome".into(),
        ));
    }

    Ok(PreparedQuery {
        query: query.clone(),
        frame: binned,
        encoded,
        candidates,
        extracted: extracted_names,
        extraction_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg::Object;
    use tabular::{DataFrameBuilder, Predicate};

    fn base_frame() -> DataFrame {
        let n = 120;
        let countries = ["Germany", "Italy", "Nigeria", "Kenya"];
        let mut country = Vec::new();
        let mut continent = Vec::new();
        let mut salary = Vec::new();
        let mut gender = Vec::new();
        for i in 0..n {
            let c = countries[i % 4];
            country.push(Some(c));
            continent.push(Some(if i % 4 < 2 { "Europe" } else { "Africa" }));
            // salary driven by country "wealth": DE/IT high, NG/KE low
            let base = if i % 4 < 2 { 70.0 } else { 20.0 };
            salary.push(Some(base + (i % 7) as f64));
            gender.push(Some(if i % 3 == 0 { "W" } else { "M" }));
        }
        DataFrameBuilder::new()
            .cat("Country", country)
            .cat("Continent", continent)
            .float("Salary", salary)
            .cat("Gender", gender)
            .build()
            .unwrap()
    }

    fn graph() -> KnowledgeGraph {
        let mut g = KnowledgeGraph::new();
        for (c, gdp) in [
            ("Germany", 50.0),
            ("Italy", 40.0),
            ("Nigeria", 5.0),
            ("Kenya", 4.0),
        ] {
            g.add_fact(c, "GDP per capita", Object::number(gdp));
            g.add_fact(c, "wikiID", Object::integer(1));
        }
        g
    }

    #[test]
    fn prepare_without_graph() {
        let df = base_frame();
        let q = AggregateQuery::avg("Country", "Salary");
        let prep = prepare_query(&df, &q, None, &[], PrepareConfig::default()).unwrap();
        assert_eq!(prep.exposure(), "Country");
        assert_eq!(prep.outcome(), "Salary");
        assert!(prep.candidates.contains(&"Gender".to_string()));
        assert!(!prep.candidates.contains(&"Salary".to_string()));
        assert!(prep.extracted.is_empty());
        assert!(
            prep.baseline_cmi() > 0.1,
            "country and salary should correlate"
        );
    }

    #[test]
    fn prepare_with_graph_joins_extracted_attributes() {
        let df = base_frame();
        let q = AggregateQuery::avg("Country", "Salary");
        let prep = prepare_query(
            &df,
            &q,
            Some(&graph()),
            &["Country"],
            PrepareConfig::default(),
        )
        .unwrap();
        assert!(prep.frame.has_column("GDP per capita"));
        assert!(prep.extracted.contains(&"GDP per capita".to_string()));
        assert_eq!(prep.extraction_stats.len(), 1);
        assert_eq!(prep.extraction_stats[0].1.n_linked, 4);
        // conditioning on the extracted GDP attribute explains the correlation
        let cmi = prep
            .explanation_cmi(&["GDP per capita".to_string()], None)
            .unwrap();
        assert!(cmi < prep.baseline_cmi() * 0.6);
    }

    #[test]
    fn prepare_applies_context() {
        let df = base_frame();
        let q = AggregateQuery::avg("Country", "Salary")
            .with_context(Predicate::eq("Continent", "Europe"));
        let prep = prepare_query(&df, &q, None, &[], PrepareConfig::default()).unwrap();
        assert_eq!(prep.frame.n_rows(), 60);
        // context column became constant in the filtered frame
        assert_eq!(prep.frame.column("Continent").unwrap().n_distinct(), 1);
    }

    #[test]
    fn prepare_rejects_empty_context_and_bad_columns() {
        let df = base_frame();
        let q = AggregateQuery::avg("Country", "Salary")
            .with_context(Predicate::eq("Continent", "Atlantis"));
        assert!(prepare_query(&df, &q, None, &[], PrepareConfig::default()).is_err());
        let q = AggregateQuery::avg("Nope", "Salary");
        assert!(prepare_query(&df, &q, None, &[], PrepareConfig::default()).is_err());
    }

    #[test]
    fn objective_scales_with_cardinality() {
        let df = base_frame();
        let q = AggregateQuery::avg("Country", "Salary");
        let prep = prepare_query(
            &df,
            &q,
            Some(&graph()),
            &["Country"],
            PrepareConfig::default(),
        )
        .unwrap();
        let single = prep.objective(&["GDP per capita".to_string()]).unwrap();
        let double = prep
            .objective(&["GDP per capita".to_string(), "Gender".to_string()])
            .unwrap();
        // the pair is scored with |E| = 2
        let pair_cmi = prep
            .explanation_cmi(&["GDP per capita".to_string(), "Gender".to_string()], None)
            .unwrap();
        assert!((double - pair_cmi * 2.0).abs() < 1e-12);
        assert!(single >= 0.0);
    }

    #[test]
    fn explanation_helpers() {
        let mut e = Explanation::empty(2.0);
        assert!(e.is_empty());
        assert_eq!(e.explained_fraction(), 0.0);
        e.attributes = vec!["a".into(), "b".into()];
        e.responsibilities = vec![0.3, 0.7];
        e.explainability = 0.5;
        assert_eq!(e.len(), 2);
        assert!((e.explained_fraction() - 0.75).abs() < 1e-12);
        let ranked = e.ranked_attributes();
        assert_eq!(ranked[0].0, "b");
        let empty = Explanation::empty(0.0);
        assert_eq!(empty.explained_fraction(), 1.0);
    }

    #[test]
    fn name_collisions_are_suffixed() {
        let df = DataFrameBuilder::new()
            .cat(
                "Country",
                vec![
                    Some("Germany"),
                    Some("Italy"),
                    Some("Germany"),
                    Some("Italy"),
                ],
            )
            .cat("Gender", vec![Some("M"), Some("W"), Some("M"), Some("W")])
            .float("Salary", vec![Some(1.0), Some(2.0), Some(3.0), Some(4.0)])
            .build()
            .unwrap();
        let mut g = KnowledgeGraph::new();
        // KG property clashes with an existing dataset column name
        g.add_fact("Germany", "Gender", Object::text("n/a"));
        g.add_fact("Germany", "GDP", Object::number(1.0));
        g.add_fact("Italy", "GDP", Object::number(2.0));
        let q = AggregateQuery::avg("Country", "Salary");
        let prep =
            prepare_query(&df, &q, Some(&g), &["Country"], PrepareConfig::default()).unwrap();
        assert!(prep.frame.has_column("Gender (Country)"));
        assert!(prep.frame.has_column("Gender"));
    }
}
