//! Long-lived, cross-query explanation sessions.
//!
//! A cold [`crate::Mesa::explain`] pays the full pipeline on every call — KG
//! extraction, join, binning, encoding, then the explanation search — even
//! when dozens of queries hit the same dataset. A [`Session`] is constructed
//! once per dataset (a `DataFrame`, optionally a `KnowledgeGraph`, and a
//! [`MesaConfig`]) and amortises that work across queries, the way a
//! traffic-serving deployment would:
//!
//! * **Extraction cache** ([`ExtractionCache`]) — the expensive KG stage
//!   (entity linking + multi-hop expansion) is keyed by
//!   `(column, hops, one-to-many policy, distinct values)`. The output of
//!   [`kg::extract_attributes`] is a pure function of exactly that key, so a
//!   cache hit is byte-identical to re-extracting — queries with different
//!   contexts select different distinct values and therefore cannot alias.
//! * **Prepared-query memo** — the fully prepared (joined, binned, encoded)
//!   view of each query, keyed by the canonical
//!   [`AggregateQuery::fingerprint`].
//! * **Report memo** — the finished [`MesaReport`] per fingerprint, so
//!   repeating a query is a hash lookup.
//!
//! Every tier is a [`BoundedCache`]: entry-count and approximate byte
//! budgets ([`SessionLimits`]) evict least-recently-used entries instead of
//! letting a long-running session grow without bound, and concurrent misses
//! of the same key coalesce onto one in-flight computation instead of
//! duplicating the cold pipeline. Eviction never changes results — a
//! re-computed entry is byte-identical to the evicted one, because every
//! fill is a pure function of its key (locked by `tests/determinism.rs`).
//!
//! **Serving-grade hardening.** The public entry points ([`Session::prepare`],
//! [`Session::explain`], [`Session::explain_many`],
//! [`Session::unexplained_subgroups`]) never let a pipeline panic escape:
//! unwinds are caught at the session boundary and surfaced as
//! [`MesaError::Internal`], with the caches left consistent (a failed fill
//! is simply not cached). [`Session::explain_with_deadline`] runs a query
//! under a cooperative [`parallel::Deadline`]; the kernel fold loops,
//! extraction BFS, and pool claim boundaries all poll it, and an expired
//! deadline surfaces as [`MesaError::DeadlineExceeded`] — again with every
//! cache still usable for the next request.
//!
//! [`Session::explain_many`] batches independent queries: cached results are
//! resolved inline, distinct uncached queries fan out as one persistent-pool
//! task each ([`parallel::parallel_map_with`]), and all of them share the
//! extraction cache. The per-query pipelines' own fan-outs nest inside the
//! batch tasks on the same pool, so batch × candidate × extraction
//! parallelism composes at the pool's fixed thread count.
//!
//! The one-shot [`crate::Mesa::explain`] is a thin wrapper over a transient
//! session, so there is a single pipeline implementation; the equivalence of
//! warm and cold paths is locked by `tests/session.rs`.

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use kg::{extract_attributes, ExtractionConfig, KnowledgeGraph};
use tabular::{AggregateQuery, DataFrame};

use crate::cache::{BoundedCache, CacheBudget, CacheStats};
use crate::error::{MesaError, Result};
use crate::problem::{
    apply_query_context, extract_and_join_with, prepare_from_joined, ColumnExtraction,
    PreparedQuery,
};
use crate::subgroups::{unexplained_subgroups, Subgroup, SubgroupConfig};
use crate::system::{Mesa, MesaConfig, MesaReport};

/// Converts a caught panic payload into the structured error the session
/// boundary reports: a cooperative-deadline unwind becomes
/// [`MesaError::DeadlineExceeded`], anything else becomes
/// [`MesaError::Internal`] carrying the payload's message when it has one.
fn payload_to_error(payload: &(dyn Any + Send)) -> MesaError {
    if payload.downcast_ref::<parallel::Cancelled>().is_some() {
        MesaError::DeadlineExceeded
    } else if let Some(msg) = payload.downcast_ref::<String>() {
        MesaError::Internal(msg.clone())
    } else if let Some(msg) = payload.downcast_ref::<&'static str>() {
        MesaError::Internal((*msg).to_string())
    } else {
        MesaError::Internal("worker panicked".to_string())
    }
}

/// Runs `f`, containing any unwind as a structured [`MesaError`]. All
/// session state `f` touches is unwind-safe by construction: the cache
/// tiers clear their in-flight slots on unwind and ignore mutex poisoning.
fn guard_panics<R>(f: impl FnOnce() -> Result<R>) -> Result<R> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => Err(payload_to_error(payload.as_ref())),
    }
}

/// Cache key of one column extraction: the distinct values (and the name of
/// the key column embedded in the cached table) are part of the key, so two
/// queries whose contexts select different value sets — or two sessions
/// configured with different hops / one-to-many policies — can never alias.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ExtractionKey {
    column: String,
    key_column: String,
    config: ExtractionConfig,
    values: Vec<String>,
}

/// A concurrent, budget-bounded cache of per-column KG extractions over
/// **one** knowledge graph, keyed by `(column, key column, extraction
/// config, distinct values)`.
///
/// The graph is borrowed for the cache's lifetime: that makes the key a
/// pure function of the lookup inputs (the borrow prevents mutation, and a
/// cache can never be asked about a different graph — sharing one cache
/// across graphs is a type error rather than silent aliasing).
///
/// The cached unit is the *pre-rename* [`ColumnExtraction`]; collision
/// renames against a query's joined frame are applied per query on a
/// copy-on-write clone (see [`extract_and_join_with`]), so the shared table
/// is never mutated. Storage is a [`BoundedCache`], so entries are priced by
/// [`ColumnExtraction::approx_bytes`] and spill in LRU order under budget
/// pressure, and concurrent misses of the same key run the extraction
/// exactly once.
#[derive(Debug)]
pub struct ExtractionCache<'g> {
    graph: &'g KnowledgeGraph,
    inner: BoundedCache<ExtractionKey, ColumnExtraction>,
}

impl<'g> ExtractionCache<'g> {
    /// An unbounded cache over one knowledge graph.
    pub fn new(graph: &'g KnowledgeGraph) -> Self {
        Self::with_budget(graph, CacheBudget::unbounded())
    }

    /// A cache over one knowledge graph with an explicit budget.
    pub fn with_budget(graph: &'g KnowledgeGraph, budget: CacheBudget) -> Self {
        ExtractionCache {
            graph,
            inner: BoundedCache::new(budget),
        }
    }

    /// Returns the cached extraction for `(column, key_column, config,
    /// values)`, running [`kg::extract_attributes`] on a miss. Errors are
    /// not cached; concurrent misses of the same key extract once.
    pub fn get_or_extract(
        &self,
        column: &str,
        values: &[String],
        key_column: &str,
        config: ExtractionConfig,
    ) -> Result<ColumnExtraction> {
        let key = ExtractionKey {
            column: column.to_string(),
            key_column: key_column.to_string(),
            config,
            values: values.to_vec(),
        };
        let shared =
            self.inner
                .get_or_fill(&key, ColumnExtraction::approx_bytes, || -> Result<_> {
                    parallel::fault_point!("mesa.session.fill_extraction");
                    parallel::checkpoint();
                    let result = extract_attributes(self.graph, values, key_column, config)
                        .map_err(MesaError::from)?;
                    Ok(ColumnExtraction::from_result(result))
                })?;
        Ok((*shared).clone())
    }

    /// Number of cached extractions.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Number of lookups served from the cache.
    pub fn hits(&self) -> usize {
        self.inner.stats().hits
    }

    /// Number of lookups that ran the extraction.
    pub fn misses(&self) -> usize {
        self.inner.stats().misses
    }

    /// Full counters of the underlying cache tier.
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }
}

/// Per-tier budgets of a [`Session`]'s caches.
///
/// The defaults are generous — sized so ordinary analytical workloads never
/// evict — but finite, so a session that serves traffic for days cannot
/// grow without bound. Use [`SessionLimits::unbounded`] to restore the
/// pre-budget behaviour, or set tight budgets (e.g.
/// [`CacheBudget::entries`]) to exercise eviction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionLimits {
    /// Budget of the prepared-query memo (entries priced by
    /// [`PreparedQuery::approx_bytes`]).
    pub prepared: CacheBudget,
    /// Budget of the report memo (entries priced by their debug rendering —
    /// reports are small).
    pub reports: CacheBudget,
    /// Budget of the extraction cache (entries priced by
    /// [`ColumnExtraction::approx_bytes`]).
    pub extraction: CacheBudget,
}

impl Default for SessionLimits {
    fn default() -> Self {
        SessionLimits {
            prepared: CacheBudget {
                max_entries: Some(4096),
                max_bytes: Some(512 << 20),
            },
            reports: CacheBudget {
                max_entries: Some(65536),
                max_bytes: Some(256 << 20),
            },
            extraction: CacheBudget {
                max_entries: Some(4096),
                max_bytes: Some(512 << 20),
            },
        }
    }
}

impl SessionLimits {
    /// No budgets at all: every tier keeps everything it ever computes.
    pub fn unbounded() -> Self {
        SessionLimits {
            prepared: CacheBudget::unbounded(),
            reports: CacheBudget::unbounded(),
            extraction: CacheBudget::unbounded(),
        }
    }
}

/// Cache counters of a [`Session`], for observability and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Column extractions served from the cache.
    pub extraction_hits: usize,
    /// Column extractions computed.
    pub extraction_misses: usize,
    /// Distinct extraction cache entries.
    pub extraction_entries: usize,
    /// Prepared queries served from the memo.
    pub prepared_hits: usize,
    /// Prepared queries computed.
    pub prepared_misses: usize,
    /// Explanation reports served from the memo.
    pub report_hits: usize,
    /// Explanation reports computed.
    pub report_misses: usize,
}

/// Full per-tier counters of a [`Session`]'s caches, including evictions,
/// coalesced (deduplicated) misses, and approximate resident bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionCacheStats {
    /// Counters of the prepared-query memo.
    pub prepared: CacheStats,
    /// Counters of the report memo.
    pub reports: CacheStats,
    /// Counters of the extraction cache; `None` when the session has no
    /// knowledge graph.
    pub extraction: Option<CacheStats>,
}

/// A long-lived explanation session over one dataset.
///
/// Borrows the dataset and knowledge graph (they are read-only for the
/// session's lifetime) and owns the caches. All methods take `&self`; the
/// session is `Sync`, so one instance can serve concurrent callers — that,
/// plus [`Session::explain_many`], is the serving shape the ROADMAP's
/// traffic-serving north star asks for. Panics inside the pipeline are
/// contained at the session boundary ([`MesaError::Internal`]), and
/// per-request deadlines are available via
/// [`Session::explain_with_deadline`].
///
/// ```
/// use mesa::session::Session;
/// use mesa::MesaConfig;
/// use tabular::{AggregateQuery, DataFrameBuilder};
/// use kg::{KnowledgeGraph, Object};
///
/// let df = DataFrameBuilder::new()
///     .cat("Country", (0..120).map(|i| Some(["DE", "IT", "NG", "KE"][i % 4])).collect())
///     .float("Salary", (0..120).map(|i| Some(if i % 4 < 2 { 80.0 } else { 30.0 } + (i % 3) as f64)).collect())
///     .build().unwrap();
/// let mut g = KnowledgeGraph::new();
/// for (c, gdp) in [("DE", 50.0), ("IT", 50.0), ("NG", 6.0), ("KE", 6.0)] {
///     g.add_fact(c, "GDP per capita", Object::number(gdp));
/// }
///
/// let session = Session::new(&df, Some(&g), &["Country"], MesaConfig::default());
/// let q = AggregateQuery::avg("Country", "Salary");
/// let cold = session.explain(&q).unwrap();
/// let warm = session.explain(&q).unwrap(); // served from the report memo
/// assert_eq!(cold.explanation, warm.explanation);
/// assert_eq!(session.stats().report_hits, 1);
/// ```
#[derive(Debug)]
pub struct Session<'a> {
    df: &'a DataFrame,
    extraction_columns: Vec<String>,
    config: MesaConfig,
    limits: SessionLimits,
    /// `None` when the session has no knowledge graph; otherwise the cache
    /// carries the graph borrow itself.
    extraction: Option<ExtractionCache<'a>>,
    prepared: BoundedCache<String, PreparedQuery>,
    reports: BoundedCache<String, MesaReport>,
}

impl<'a> Session<'a> {
    /// A session over `df`, extracting candidate confounders for
    /// `extraction_columns` from `graph` (pass `None` to restrict candidates
    /// to the input table), under the default [`SessionLimits`].
    pub fn new(
        df: &'a DataFrame,
        graph: Option<&'a KnowledgeGraph>,
        extraction_columns: &[&str],
        config: MesaConfig,
    ) -> Self {
        Self::with_limits(
            df,
            graph,
            extraction_columns,
            config,
            SessionLimits::default(),
        )
    }

    /// A session with explicit per-tier cache budgets.
    pub fn with_limits(
        df: &'a DataFrame,
        graph: Option<&'a KnowledgeGraph>,
        extraction_columns: &[&str],
        config: MesaConfig,
        limits: SessionLimits,
    ) -> Self {
        Session {
            df,
            extraction_columns: extraction_columns.iter().map(|s| s.to_string()).collect(),
            config,
            limits,
            extraction: graph.map(|g| ExtractionCache::with_budget(g, limits.extraction)),
            prepared: BoundedCache::new(limits.prepared),
            reports: BoundedCache::new(limits.reports),
        }
    }

    /// The configuration every query in this session runs under.
    pub fn config(&self) -> &MesaConfig {
        &self.config
    }

    /// The dataset the session serves.
    pub fn frame(&self) -> &DataFrame {
        self.df
    }

    /// The per-tier cache budgets the session enforces.
    pub fn limits(&self) -> SessionLimits {
        self.limits
    }

    /// Current cache counters.
    pub fn stats(&self) -> SessionStats {
        let extraction = self.extraction.as_ref().map(ExtractionCache::stats);
        let prepared = self.prepared.stats();
        let reports = self.reports.stats();
        SessionStats {
            extraction_hits: extraction.map_or(0, |s| s.hits),
            extraction_misses: extraction.map_or(0, |s| s.misses),
            extraction_entries: extraction.map_or(0, |s| s.entries),
            prepared_hits: prepared.hits,
            prepared_misses: prepared.misses,
            report_hits: reports.hits,
            report_misses: reports.misses,
        }
    }

    /// Full per-tier cache counters, including evictions, coalesced misses,
    /// and approximate resident bytes.
    pub fn cache_stats(&self) -> SessionCacheStats {
        SessionCacheStats {
            prepared: self.prepared.stats(),
            reports: self.reports.stats(),
            extraction: self.extraction.as_ref().map(ExtractionCache::stats),
        }
    }

    /// Prepares a query (context, extraction, binning, encoding), serving
    /// repeated queries from the memo and the extraction stage from the
    /// shared cache. Pipeline panics surface as [`MesaError::Internal`].
    pub fn prepare(&self, query: &AggregateQuery) -> Result<Arc<PreparedQuery>> {
        guard_panics(|| self.prepare_keyed(&query.fingerprint(), query))
    }

    fn prepare_keyed(
        &self,
        fingerprint: &str,
        query: &AggregateQuery,
    ) -> Result<Arc<PreparedQuery>> {
        let key = fingerprint.to_string();
        self.prepared
            .get_or_fill(&key, PreparedQuery::approx_bytes, || {
                parallel::fault_point!("mesa.session.fill_prepared");
                parallel::checkpoint();
                let filtered = apply_query_context(self.df, query)?;
                let extraction_config = self.config.prepare.extraction;
                let (joined, joins) = match &self.extraction {
                    Some(cache) => {
                        let columns: Vec<&str> =
                            self.extraction_columns.iter().map(|s| s.as_str()).collect();
                        extract_and_join_with(&filtered, &columns, |column, values, key_column| {
                            cache.get_or_extract(column, values, key_column, extraction_config)
                        })?
                    }
                    None => (filtered, Vec::new()),
                };
                parallel::checkpoint();
                let mut prepared = prepare_from_joined(query, joined, joins, self.config.prepare)?;
                // Seal the encoded frame before it enters the memo: cached
                // residents hold compressed columns, and every estimator
                // reads them through the run-aware kernel paths with
                // bit-identical results.
                prepared.encoded.seal();
                Ok(prepared)
            })
    }

    /// Explains a query end to end, serving repeats from the report memo.
    /// The result is shared (`Arc`); clone out of it if an owned
    /// [`MesaReport`] is needed. Pipeline panics surface as
    /// [`MesaError::Internal`] and leave the caches usable.
    pub fn explain(&self, query: &AggregateQuery) -> Result<Arc<MesaReport>> {
        self.explain_guarded(&query.fingerprint(), query)
    }

    /// Explains a query under a wall-clock budget. The deadline is polled
    /// cooperatively — at pool claim boundaries, inside the kernel fold
    /// loops, and per extraction BFS level — so an expired budget returns
    /// [`MesaError::DeadlineExceeded`] promptly instead of hanging, and the
    /// session (caches included) stays fully usable. A result that was
    /// already memoised is returned regardless of how small the budget is.
    pub fn explain_with_deadline(
        &self,
        query: &AggregateQuery,
        budget: Duration,
    ) -> Result<Arc<MesaReport>> {
        let deadline = parallel::Deadline::after(budget);
        parallel::with_deadline(&deadline, || self.explain(query))
    }

    fn explain_guarded(
        &self,
        fingerprint: &str,
        query: &AggregateQuery,
    ) -> Result<Arc<MesaReport>> {
        guard_panics(|| self.explain_keyed(fingerprint, query))
    }

    fn explain_keyed(&self, fingerprint: &str, query: &AggregateQuery) -> Result<Arc<MesaReport>> {
        let key = fingerprint.to_string();
        self.reports.get_or_fill(
            &key,
            |r| format!("{r:?}").len(),
            || {
                parallel::fault_point!("mesa.session.fill_report");
                parallel::checkpoint();
                let prepared = self.prepare_keyed(fingerprint, query)?;
                Mesa::with_config(self.config).explain_prepared(&prepared)
            },
        )
    }

    /// Explains a batch of independent queries, returning one result per
    /// query in input order.
    ///
    /// Cached queries are resolved inline without touching the pool; the
    /// distinct uncached ones fan out as one pool task per query and share
    /// this session's extraction cache. Results are byte-identical to
    /// calling [`Session::explain`] sequentially (locked by
    /// `tests/session.rs`): every path runs the same deterministic
    /// pipeline, and duplicates within the batch are computed once. A panic
    /// inside one query's pipeline fails that query alone
    /// ([`MesaError::Internal`]); the rest of the batch completes.
    pub fn explain_many(&self, queries: &[AggregateQuery]) -> Vec<Result<Arc<MesaReport>>> {
        let fingerprints: Vec<String> = queries.iter().map(|q| q.fingerprint()).collect();
        // Resolve every already-cached query inline; collect the first
        // occurrence of each fingerprint that still needs computing.
        let mut results: Vec<Option<Result<Arc<MesaReport>>>> = Vec::with_capacity(queries.len());
        let mut misses: Vec<(usize, &str, &AggregateQuery)> = Vec::new();
        {
            let mut seen: std::collections::HashSet<&str> = std::collections::HashSet::new();
            for (i, (fp, query)) in fingerprints.iter().zip(queries).enumerate() {
                match self.reports.get_if_ready(fp) {
                    Some(report) => results.push(Some(Ok(report))),
                    None => {
                        if seen.insert(fp.as_str()) {
                            misses.push((i, fp.as_str(), query));
                        }
                        results.push(None);
                    }
                }
            }
        }
        // Fan the distinct uncached queries out, one pool task per query:
        // whole explanation pipelines are heavyweight items, so even a
        // two-miss batch parallelises ([`parallel::FanOut::heavy`]) while a
        // single miss stays inline on the calling thread. The fan-out
        // composes with the pipeline's inner fan-outs (candidate scoring,
        // extraction) through the shared pool instead of oversubscribing.
        // Each item is guarded individually, so one panicking pipeline
        // cannot poison the batch; the outer guard covers a deadline that
        // expires at a batch claim boundary itself. A fully warm batch
        // (no misses) never touches the pool.
        let computed: Vec<Result<Arc<MesaReport>>> = if misses.is_empty() {
            Vec::new()
        } else {
            match guard_panics(|| {
                Ok(parallel::parallel_map_with(
                    &misses,
                    parallel::FanOut::heavy(),
                    |_, &(_, fp, query)| self.explain_guarded(fp, query),
                ))
            }) {
                Ok(computed) => computed,
                Err(e) => misses.iter().map(|_| Err(e.clone())).collect(),
            }
        };
        // For each computed fingerprint: its result and whether the slot at
        // hand is the occurrence that computed it.
        let by_fingerprint: HashMap<&str, (usize, &Result<Arc<MesaReport>>)> = misses
            .iter()
            .zip(&computed)
            .map(|(&(i, fp, _), result)| (fp, (i, result)))
            .collect();
        // Fill the remaining slots. Duplicates of a computed fingerprint
        // share its result; duplicates of a *failed* one re-run through the
        // memo (errors are not cached), exactly like the sequential path.
        results
            .into_iter()
            .zip(fingerprints.iter().zip(queries))
            .enumerate()
            .map(|(i, (slot, (fp, query)))| match slot {
                Some(result) => result,
                None => match by_fingerprint.get(fp.as_str()) {
                    Some((origin, result)) if *origin == i => (*result).clone(),
                    Some((_, Ok(report))) => {
                        self.reports.record_hit();
                        Ok(report.clone())
                    }
                    _ => self.explain_guarded(fp, query),
                },
            })
            .collect()
    }

    /// Finds the top-k unexplained data subgroups (Algorithm 2) for a
    /// query's cached explanation, preparing and explaining it first if
    /// needed.
    pub fn unexplained_subgroups(
        &self,
        query: &AggregateQuery,
        config: &SubgroupConfig,
    ) -> Result<Vec<Subgroup>> {
        let prepared = self.prepare(query)?;
        let report = self.explain(query)?;
        guard_panics(|| unexplained_subgroups(&prepared, &report.explanation.attributes, config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg::Object;
    use tabular::{DataFrameBuilder, Predicate};

    fn setup() -> (DataFrame, KnowledgeGraph) {
        let n = 240;
        let mut country = Vec::new();
        let mut region = Vec::new();
        let mut salary = Vec::new();
        for i in 0..n {
            let cid = i % 4;
            country.push(Some(["DE", "IT", "NG", "KE"][cid]));
            region.push(Some(if cid < 2 { "Europe" } else { "Africa" }));
            let base = if cid < 2 { 70.0 } else { 20.0 };
            salary.push(Some(base + (i % 7) as f64));
        }
        let df = DataFrameBuilder::new()
            .cat("Country", country)
            .cat("Region", region)
            .float("Salary", salary)
            .build()
            .unwrap();
        let mut g = KnowledgeGraph::new();
        for (c, gdp) in [("DE", 50.0), ("IT", 40.0), ("NG", 5.0), ("KE", 4.0)] {
            g.add_fact(c, "GDP per capita", Object::number(gdp));
            g.add_fact(c, "wikiID", Object::integer(1));
        }
        (df, g)
    }

    #[test]
    fn repeat_explain_is_served_from_the_memo() {
        let (df, g) = setup();
        let session = Session::new(&df, Some(&g), &["Country"], MesaConfig::default());
        let q = AggregateQuery::avg("Country", "Salary");
        let cold = session.explain(&q).unwrap();
        let warm = session.explain(&q).unwrap();
        // same shared report object, not merely an equal one
        assert!(Arc::ptr_eq(&cold, &warm));
        let stats = session.stats();
        assert_eq!(stats.report_misses, 1);
        assert_eq!(stats.report_hits, 1);
        assert_eq!(stats.prepared_misses, 1);
    }

    #[test]
    fn different_contexts_share_nothing_in_the_extraction_cache() {
        let (df, g) = setup();
        let session = Session::new(&df, Some(&g), &["Country"], MesaConfig::default());
        let q_all = AggregateQuery::avg("Country", "Salary");
        let q_europe = AggregateQuery::avg("Country", "Salary")
            .with_context(Predicate::eq("Region", "Europe"));
        session.explain(&q_all).unwrap();
        session.explain(&q_europe).unwrap();
        let stats = session.stats();
        // the Europe context selects a different distinct-value set, so the
        // extraction cannot be served from the cache
        assert_eq!(stats.extraction_misses, 2);
        assert_eq!(stats.extraction_entries, 2);
        assert_eq!(stats.report_misses, 2);
    }

    #[test]
    fn same_distinct_values_share_the_extraction() {
        let (df, g) = setup();
        let session = Session::new(&df, Some(&g), &["Country"], MesaConfig::default());
        // Both queries keep every row, so the distinct Country values match
        // and the second prepare reuses the first extraction.
        let q1 = AggregateQuery::avg("Country", "Salary");
        let q2 = AggregateQuery::avg("Region", "Salary");
        session.prepare(&q1).unwrap();
        session.prepare(&q2).unwrap();
        let stats = session.stats();
        assert_eq!(stats.extraction_misses, 1);
        assert_eq!(stats.extraction_hits, 1);
        assert_eq!(stats.prepared_misses, 2);
    }

    #[test]
    fn session_prepare_matches_cold_prepare_query() {
        let (df, g) = setup();
        let session = Session::new(&df, Some(&g), &["Country"], MesaConfig::default());
        for q in [
            AggregateQuery::avg("Country", "Salary"),
            AggregateQuery::avg("Region", "Salary"),
            AggregateQuery::avg("Country", "Salary")
                .with_context(Predicate::eq("Region", "Europe")),
        ] {
            let warm = session.prepare(&q).unwrap();
            let cold = crate::problem::prepare_query(
                &df,
                &q,
                Some(&g),
                &["Country"],
                crate::problem::PrepareConfig::default(),
            )
            .unwrap();
            assert_eq!(warm.candidates, cold.candidates, "{q}");
            assert_eq!(warm.extracted, cold.extracted, "{q}");
            assert_eq!(warm.extraction_stats, cold.extraction_stats, "{q}");
            assert_eq!(warm.frame.n_rows(), cold.frame.n_rows(), "{q}");
        }
    }

    #[test]
    fn explain_many_matches_sequential_and_dedupes() {
        let (df, g) = setup();
        let session = Session::new(&df, Some(&g), &["Country"], MesaConfig::default());
        let q1 = AggregateQuery::avg("Country", "Salary");
        let q2 = AggregateQuery::avg("Region", "Salary");
        let batch = vec![q1.clone(), q2.clone(), q1.clone()];
        let results = session.explain_many(&batch);
        assert_eq!(results.len(), 3);
        // duplicates computed once
        assert_eq!(session.stats().report_misses, 2);
        let r0 = results[0].as_ref().unwrap();
        let r2 = results[2].as_ref().unwrap();
        assert!(Arc::ptr_eq(r0, r2));
        // identical to the sequential result
        let fresh = Session::new(&df, Some(&g), &["Country"], MesaConfig::default());
        let s1 = fresh.explain(&q1).unwrap();
        assert_eq!(s1.explanation, r0.explanation);
    }

    #[test]
    fn explain_many_reports_per_query_errors() {
        let (df, g) = setup();
        let session = Session::new(&df, Some(&g), &["Country"], MesaConfig::default());
        let good = AggregateQuery::avg("Country", "Salary");
        let bad = AggregateQuery::avg("Nope", "Salary");
        let results = session.explain_many(&[good, bad]);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
    }

    #[test]
    fn sessions_without_graph_work() {
        let (df, _) = setup();
        let session = Session::new(&df, None, &[], MesaConfig::default());
        let q = AggregateQuery::avg("Country", "Salary");
        let report = session.explain(&q).unwrap();
        assert_eq!(report.n_extracted, 0);
        assert_eq!(session.stats().extraction_misses, 0);
    }

    #[test]
    fn extraction_cache_keys_on_config_and_values() {
        let (_, g) = setup();
        let cache = ExtractionCache::new(&g);
        let values: Vec<String> = vec!["DE".into(), "IT".into()];
        let base = ExtractionConfig::default();
        let two_hops = ExtractionConfig { hops: 2, ..base };
        let max_agg = ExtractionConfig {
            one_to_many: kg::OneToManyAgg::Max,
            ..base
        };
        cache
            .get_or_extract("Country", &values, "__key_Country", base)
            .unwrap();
        // same key: hit
        cache
            .get_or_extract("Country", &values, "__key_Country", base)
            .unwrap();
        // different hops / policy / values / column: four more entries
        cache
            .get_or_extract("Country", &values, "__key_Country", two_hops)
            .unwrap();
        cache
            .get_or_extract("Country", &values, "__key_Country", max_agg)
            .unwrap();
        let fewer: Vec<String> = vec!["DE".into()];
        cache
            .get_or_extract("Country", &fewer, "__key_Country", base)
            .unwrap();
        cache
            .get_or_extract("Origin", &values, "__key_Origin", base)
            .unwrap();
        // a different key-column name yields a different cached table
        let renamed = cache
            .get_or_extract("Country", &values, "other_key", base)
            .unwrap();
        assert!(renamed.table.has_column("other_key"));
        assert_eq!(cache.len(), 6);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 6);
    }

    #[test]
    fn one_entry_report_memo_evicts_and_recomputes_identically() {
        let (df, g) = setup();
        let limits = SessionLimits {
            reports: CacheBudget::entries(1),
            ..SessionLimits::default()
        };
        let session =
            Session::with_limits(&df, Some(&g), &["Country"], MesaConfig::default(), limits);
        let q1 = AggregateQuery::avg("Country", "Salary");
        let q2 = AggregateQuery::avg("Region", "Salary");
        let first = session.explain(&q1).unwrap();
        session.explain(&q2).unwrap(); // evicts q1's report
        let recomputed = session.explain(&q1).unwrap(); // cold again
        assert!(!Arc::ptr_eq(&first, &recomputed));
        assert_eq!(first.explanation, recomputed.explanation);
        let stats = session.cache_stats();
        assert_eq!(stats.reports.misses, 3);
        assert!(stats.reports.evictions >= 2);
        assert_eq!(stats.reports.entries, 1);
    }

    #[test]
    fn generous_default_limits_do_not_evict() {
        let (df, g) = setup();
        let session = Session::new(&df, Some(&g), &["Country"], MesaConfig::default());
        for q in [
            AggregateQuery::avg("Country", "Salary"),
            AggregateQuery::avg("Region", "Salary"),
        ] {
            session.explain(&q).unwrap();
        }
        let stats = session.cache_stats();
        assert_eq!(stats.prepared.evictions, 0);
        assert_eq!(stats.reports.evictions, 0);
        assert_eq!(stats.extraction.unwrap().evictions, 0);
        assert!(stats.prepared.resident_bytes > 0);
    }

    #[test]
    fn expired_deadline_is_a_structured_error_and_session_survives() {
        let (df, g) = setup();
        let session = Session::new(&df, Some(&g), &["Country"], MesaConfig::default());
        let q = AggregateQuery::avg("Country", "Salary");
        let err = session
            .explain_with_deadline(&q, Duration::from_secs(0))
            .unwrap_err();
        assert_eq!(err, MesaError::DeadlineExceeded);
        // the failed attempt is not cached, and the session still serves
        let report = session.explain(&q).unwrap();
        let fresh = Session::new(&df, Some(&g), &["Country"], MesaConfig::default());
        assert_eq!(report.explanation, fresh.explain(&q).unwrap().explanation);
        // a memoised result is returned even under an expired deadline
        let warm = session
            .explain_with_deadline(&q, Duration::from_secs(0))
            .unwrap();
        assert!(Arc::ptr_eq(&report, &warm));
    }
}
