//! Long-lived, cross-query explanation sessions.
//!
//! A cold [`crate::Mesa::explain`] pays the full pipeline on every call — KG
//! extraction, join, binning, encoding, then the explanation search — even
//! when dozens of queries hit the same dataset. A [`Session`] is constructed
//! once per dataset (a `DataFrame`, optionally a `KnowledgeGraph`, and a
//! [`MesaConfig`]) and amortises that work across queries, the way a
//! traffic-serving deployment would:
//!
//! * **Extraction cache** ([`ExtractionCache`]) — the expensive KG stage
//!   (entity linking + multi-hop expansion) is keyed by
//!   `(column, hops, one-to-many policy, distinct values)`. The output of
//!   [`kg::extract_attributes`] is a pure function of exactly that key, so a
//!   cache hit is byte-identical to re-extracting — queries with different
//!   contexts select different distinct values and therefore cannot alias.
//! * **Prepared-query memo** — the fully prepared (joined, binned, encoded)
//!   view of each query, keyed by the canonical
//!   [`AggregateQuery::fingerprint`].
//! * **Report memo** — the finished [`MesaReport`] per fingerprint, so
//!   repeating a query is a hash lookup.
//!
//! [`Session::explain_many`] batches independent queries: cached results are
//! resolved inline, distinct uncached queries fan out as one persistent-pool
//! task each ([`parallel::parallel_map_with`]), and all of them share the
//! extraction cache. The per-query pipelines' own fan-outs nest inside the
//! batch tasks on the same pool, so batch × candidate × extraction
//! parallelism composes at the pool's fixed thread count.
//!
//! The one-shot [`crate::Mesa::explain`] is a thin wrapper over a transient
//! session, so there is a single pipeline implementation; the equivalence of
//! warm and cold paths is locked by `tests/session.rs`.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use kg::{extract_attributes, ExtractionConfig, KnowledgeGraph};
use tabular::{AggregateQuery, DataFrame};

use crate::error::{MesaError, Result};
use crate::problem::{
    apply_query_context, extract_and_join_with, prepare_from_joined, ColumnExtraction,
    PreparedQuery,
};
use crate::subgroups::{unexplained_subgroups, Subgroup, SubgroupConfig};
use crate::system::{Mesa, MesaConfig, MesaReport};

/// Cache key of one column extraction: the distinct values (and the name of
/// the key column embedded in the cached table) are part of the key, so two
/// queries whose contexts select different value sets — or two sessions
/// configured with different hops / one-to-many policies — can never alias.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ExtractionKey {
    column: String,
    key_column: String,
    config: ExtractionConfig,
    values: Vec<String>,
}

impl ExtractionKey {
    /// Whether this stored key matches the borrowed lookup inputs (the same
    /// tuple the hash in [`ExtractionCache::fingerprint`] covers).
    fn matches(
        &self,
        column: &str,
        key_column: &str,
        config: ExtractionConfig,
        values: &[String],
    ) -> bool {
        self.config == config
            && self.column == column
            && self.key_column == key_column
            && self.values == values
    }
}

/// A concurrent cache of per-column KG extractions over **one** knowledge
/// graph, keyed by `(column, key column, extraction config, distinct
/// values)`.
///
/// The graph is borrowed for the cache's lifetime: that makes the key a
/// pure function of the lookup inputs (the borrow prevents mutation, and a
/// cache can never be asked about a different graph — sharing one cache
/// across graphs is a type error rather than silent aliasing).
///
/// The cached unit is the *pre-rename* [`ColumnExtraction`]; collision
/// renames against a query's joined frame are applied per query on a
/// copy-on-write clone (see [`extract_and_join_with`]), so the shared table
/// is never mutated. Entries are bucketed by a hash of the borrowed lookup
/// inputs, so a cache *hit* allocates nothing — the full owned key is only
/// built (and the distinct values only cloned) when an extraction actually
/// runs.
#[derive(Debug)]
pub struct ExtractionCache<'g> {
    graph: &'g KnowledgeGraph,
    entries: Mutex<HashMap<u64, Vec<(ExtractionKey, ColumnExtraction)>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl<'g> ExtractionCache<'g> {
    /// An empty cache over one knowledge graph.
    pub fn new(graph: &'g KnowledgeGraph) -> Self {
        ExtractionCache {
            graph,
            entries: Mutex::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Bucket hash over the borrowed lookup inputs; collisions are resolved
    /// by [`ExtractionKey::matches`] on the full key.
    fn fingerprint(
        column: &str,
        key_column: &str,
        config: ExtractionConfig,
        values: &[String],
    ) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        column.hash(&mut hasher);
        key_column.hash(&mut hasher);
        config.hash(&mut hasher);
        values.hash(&mut hasher);
        hasher.finish()
    }

    /// Returns the cached extraction for `(column, key_column, config,
    /// values)`, running [`kg::extract_attributes`] on a miss. Errors are
    /// not cached.
    pub fn get_or_extract(
        &self,
        column: &str,
        values: &[String],
        key_column: &str,
        config: ExtractionConfig,
    ) -> Result<ColumnExtraction> {
        let bucket = Self::fingerprint(column, key_column, config, values);
        if let Some(entries) = self.entries.lock().unwrap().get(&bucket) {
            if let Some((_, cached)) = entries
                .iter()
                .find(|(key, _)| key.matches(column, key_column, config, values))
            {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(cached.clone());
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let result =
            extract_attributes(self.graph, values, key_column, config).map_err(MesaError::from)?;
        let extraction = ColumnExtraction::from_result(result);
        // Two threads may race to extract the same key; the first insert
        // wins and both return the same (deterministic) table.
        let mut entries = self.entries.lock().unwrap();
        let slot = entries.entry(bucket).or_default();
        if let Some((_, cached)) = slot
            .iter()
            .find(|(key, _)| key.matches(column, key_column, config, values))
        {
            return Ok(cached.clone());
        }
        let key = ExtractionKey {
            column: column.to_string(),
            key_column: key_column.to_string(),
            config,
            values: values.to_vec(),
        };
        slot.push((key, extraction.clone()));
        Ok(extraction)
    }

    /// Number of cached extractions.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().values().map(Vec::len).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of lookups served from the cache.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that ran the extraction.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }
}

/// Cache counters of a [`Session`], for observability and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Column extractions served from the cache.
    pub extraction_hits: usize,
    /// Column extractions computed.
    pub extraction_misses: usize,
    /// Distinct extraction cache entries.
    pub extraction_entries: usize,
    /// Prepared queries served from the memo.
    pub prepared_hits: usize,
    /// Prepared queries computed.
    pub prepared_misses: usize,
    /// Explanation reports served from the memo.
    pub report_hits: usize,
    /// Explanation reports computed.
    pub report_misses: usize,
}

/// A long-lived explanation session over one dataset.
///
/// Borrows the dataset and knowledge graph (they are read-only for the
/// session's lifetime) and owns the caches. All methods take `&self`; the
/// session is `Sync`, so one instance can serve concurrent callers — that,
/// plus [`Session::explain_many`], is the serving shape the ROADMAP's
/// traffic-serving north star asks for.
///
/// ```
/// use mesa::session::Session;
/// use mesa::MesaConfig;
/// use tabular::{AggregateQuery, DataFrameBuilder};
/// use kg::{KnowledgeGraph, Object};
///
/// let df = DataFrameBuilder::new()
///     .cat("Country", (0..120).map(|i| Some(["DE", "IT", "NG", "KE"][i % 4])).collect())
///     .float("Salary", (0..120).map(|i| Some(if i % 4 < 2 { 80.0 } else { 30.0 } + (i % 3) as f64)).collect())
///     .build().unwrap();
/// let mut g = KnowledgeGraph::new();
/// for (c, gdp) in [("DE", 50.0), ("IT", 50.0), ("NG", 6.0), ("KE", 6.0)] {
///     g.add_fact(c, "GDP per capita", Object::number(gdp));
/// }
///
/// let session = Session::new(&df, Some(&g), &["Country"], MesaConfig::default());
/// let q = AggregateQuery::avg("Country", "Salary");
/// let cold = session.explain(&q).unwrap();
/// let warm = session.explain(&q).unwrap(); // served from the report memo
/// assert_eq!(cold.explanation, warm.explanation);
/// assert_eq!(session.stats().report_hits, 1);
/// ```
#[derive(Debug)]
pub struct Session<'a> {
    df: &'a DataFrame,
    extraction_columns: Vec<String>,
    config: MesaConfig,
    /// `None` when the session has no knowledge graph; otherwise the cache
    /// carries the graph borrow itself.
    extraction: Option<ExtractionCache<'a>>,
    prepared: Mutex<HashMap<String, Arc<PreparedQuery>>>,
    reports: Mutex<HashMap<String, Arc<MesaReport>>>,
    prepared_hits: AtomicUsize,
    prepared_misses: AtomicUsize,
    report_hits: AtomicUsize,
    report_misses: AtomicUsize,
}

impl<'a> Session<'a> {
    /// A session over `df`, extracting candidate confounders for
    /// `extraction_columns` from `graph` (pass `None` to restrict candidates
    /// to the input table).
    pub fn new(
        df: &'a DataFrame,
        graph: Option<&'a KnowledgeGraph>,
        extraction_columns: &[&str],
        config: MesaConfig,
    ) -> Self {
        Session {
            df,
            extraction_columns: extraction_columns.iter().map(|s| s.to_string()).collect(),
            config,
            extraction: graph.map(ExtractionCache::new),
            prepared: Mutex::new(HashMap::new()),
            reports: Mutex::new(HashMap::new()),
            prepared_hits: AtomicUsize::new(0),
            prepared_misses: AtomicUsize::new(0),
            report_hits: AtomicUsize::new(0),
            report_misses: AtomicUsize::new(0),
        }
    }

    /// The configuration every query in this session runs under.
    pub fn config(&self) -> &MesaConfig {
        &self.config
    }

    /// The dataset the session serves.
    pub fn frame(&self) -> &DataFrame {
        self.df
    }

    /// Current cache counters.
    pub fn stats(&self) -> SessionStats {
        let extraction = self.extraction.as_ref();
        SessionStats {
            extraction_hits: extraction.map_or(0, ExtractionCache::hits),
            extraction_misses: extraction.map_or(0, ExtractionCache::misses),
            extraction_entries: extraction.map_or(0, ExtractionCache::len),
            prepared_hits: self.prepared_hits.load(Ordering::Relaxed),
            prepared_misses: self.prepared_misses.load(Ordering::Relaxed),
            report_hits: self.report_hits.load(Ordering::Relaxed),
            report_misses: self.report_misses.load(Ordering::Relaxed),
        }
    }

    /// Prepares a query (context, extraction, binning, encoding), serving
    /// repeated queries from the memo and the extraction stage from the
    /// shared cache.
    pub fn prepare(&self, query: &AggregateQuery) -> Result<Arc<PreparedQuery>> {
        self.prepare_keyed(&query.fingerprint(), query)
    }

    fn prepare_keyed(
        &self,
        fingerprint: &str,
        query: &AggregateQuery,
    ) -> Result<Arc<PreparedQuery>> {
        if let Some(prepared) = self.prepared.lock().unwrap().get(fingerprint) {
            self.prepared_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(prepared.clone());
        }
        self.prepared_misses.fetch_add(1, Ordering::Relaxed);
        let filtered = apply_query_context(self.df, query)?;
        let extraction_config = self.config.prepare.extraction;
        let (joined, joins) = match &self.extraction {
            Some(cache) => {
                let columns: Vec<&str> =
                    self.extraction_columns.iter().map(|s| s.as_str()).collect();
                extract_and_join_with(&filtered, &columns, |column, values, key_column| {
                    cache.get_or_extract(column, values, key_column, extraction_config)
                })?
            }
            None => (filtered, Vec::new()),
        };
        let mut prepared = prepare_from_joined(query, joined, joins, self.config.prepare)?;
        // Seal the encoded frame before it enters the memo: cached residents
        // hold compressed columns, and every estimator reads them through the
        // run-aware kernel paths with bit-identical results.
        prepared.encoded.seal();
        let prepared = Arc::new(prepared);
        Ok(self
            .prepared
            .lock()
            .unwrap()
            .entry(fingerprint.to_string())
            .or_insert(prepared)
            .clone())
    }

    /// Explains a query end to end, serving repeats from the report memo.
    /// The result is shared (`Arc`); clone out of it if an owned
    /// [`MesaReport`] is needed.
    pub fn explain(&self, query: &AggregateQuery) -> Result<Arc<MesaReport>> {
        self.explain_keyed(&query.fingerprint(), query)
    }

    fn explain_keyed(&self, fingerprint: &str, query: &AggregateQuery) -> Result<Arc<MesaReport>> {
        if let Some(report) = self.reports.lock().unwrap().get(fingerprint) {
            self.report_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(report.clone());
        }
        self.report_misses.fetch_add(1, Ordering::Relaxed);
        let prepared = self.prepare_keyed(fingerprint, query)?;
        let report = Arc::new(Mesa::with_config(self.config).explain_prepared(&prepared)?);
        Ok(self
            .reports
            .lock()
            .unwrap()
            .entry(fingerprint.to_string())
            .or_insert(report)
            .clone())
    }

    /// Explains a batch of independent queries, returning one result per
    /// query in input order.
    ///
    /// Cached queries are resolved inline under a single lock (a fully warm
    /// batch is one memo pass that never touches the pool); the distinct
    /// uncached ones fan out as one pool task per query and share this
    /// session's extraction cache. Results are byte-identical to calling
    /// [`Session::explain`] sequentially (locked by `tests/session.rs`):
    /// every path runs the same deterministic pipeline, and duplicates
    /// within the batch are computed once.
    pub fn explain_many(&self, queries: &[AggregateQuery]) -> Vec<Result<Arc<MesaReport>>> {
        let fingerprints: Vec<String> = queries.iter().map(|q| q.fingerprint()).collect();
        // Resolve every already-cached query in one pass; collect the first
        // occurrence of each fingerprint that still needs computing.
        let mut results: Vec<Option<Result<Arc<MesaReport>>>> = Vec::with_capacity(queries.len());
        let mut misses: Vec<usize> = Vec::new();
        {
            let reports = self.reports.lock().unwrap();
            let mut seen: HashSet<&str> = HashSet::new();
            for (i, fp) in fingerprints.iter().enumerate() {
                match reports.get(fp.as_str()) {
                    Some(report) => {
                        self.report_hits.fetch_add(1, Ordering::Relaxed);
                        results.push(Some(Ok(report.clone())));
                    }
                    None => {
                        if seen.insert(fp.as_str()) {
                            misses.push(i);
                        }
                        results.push(None);
                    }
                }
            }
        }
        // Fully warm batch: every slot was filled under the single lock.
        if misses.is_empty() {
            return results
                .into_iter()
                .map(|slot| slot.expect("all queries resolved from the memo"))
                .collect();
        }
        // Fan the distinct uncached queries out, one pool task per query:
        // whole explanation pipelines are heavyweight items, so even a
        // two-miss batch parallelises ([`parallel::FanOut::heavy`]) while a
        // single miss stays inline on the calling thread. The fan-out
        // composes with the pipeline's inner fan-outs (candidate scoring,
        // extraction) through the shared pool instead of oversubscribing.
        let computed: Vec<Result<Arc<MesaReport>>> =
            parallel::parallel_map_with(&misses, parallel::FanOut::heavy(), |_, &i| {
                self.explain_keyed(&fingerprints[i], &queries[i])
            });
        // For each computed fingerprint: its result and whether the slot at
        // hand is the occurrence that computed it.
        let by_fingerprint: HashMap<&str, (usize, &Result<Arc<MesaReport>>)> = misses
            .iter()
            .zip(&computed)
            .map(|(&i, result)| (fingerprints[i].as_str(), (i, result)))
            .collect();
        // Fill the remaining slots. Duplicates of a computed fingerprint
        // share its result; duplicates of a *failed* one re-run through the
        // memo (errors are not cached), exactly like the sequential path.
        results
            .into_iter()
            .enumerate()
            .map(|(i, slot)| match slot {
                Some(result) => result,
                None => match by_fingerprint.get(fingerprints[i].as_str()) {
                    Some((origin, result)) if *origin == i => (*result).clone(),
                    Some((_, Ok(report))) => {
                        self.report_hits.fetch_add(1, Ordering::Relaxed);
                        Ok(report.clone())
                    }
                    _ => self.explain_keyed(&fingerprints[i], &queries[i]),
                },
            })
            .collect()
    }

    /// Finds the top-k unexplained data subgroups (Algorithm 2) for a
    /// query's cached explanation, preparing and explaining it first if
    /// needed.
    pub fn unexplained_subgroups(
        &self,
        query: &AggregateQuery,
        config: &SubgroupConfig,
    ) -> Result<Vec<Subgroup>> {
        let prepared = self.prepare(query)?;
        let report = self.explain(query)?;
        unexplained_subgroups(&prepared, &report.explanation.attributes, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg::Object;
    use tabular::{DataFrameBuilder, Predicate};

    fn setup() -> (DataFrame, KnowledgeGraph) {
        let n = 240;
        let mut country = Vec::new();
        let mut region = Vec::new();
        let mut salary = Vec::new();
        for i in 0..n {
            let cid = i % 4;
            country.push(Some(["DE", "IT", "NG", "KE"][cid]));
            region.push(Some(if cid < 2 { "Europe" } else { "Africa" }));
            let base = if cid < 2 { 70.0 } else { 20.0 };
            salary.push(Some(base + (i % 7) as f64));
        }
        let df = DataFrameBuilder::new()
            .cat("Country", country)
            .cat("Region", region)
            .float("Salary", salary)
            .build()
            .unwrap();
        let mut g = KnowledgeGraph::new();
        for (c, gdp) in [("DE", 50.0), ("IT", 40.0), ("NG", 5.0), ("KE", 4.0)] {
            g.add_fact(c, "GDP per capita", Object::number(gdp));
            g.add_fact(c, "wikiID", Object::integer(1));
        }
        (df, g)
    }

    #[test]
    fn repeat_explain_is_served_from_the_memo() {
        let (df, g) = setup();
        let session = Session::new(&df, Some(&g), &["Country"], MesaConfig::default());
        let q = AggregateQuery::avg("Country", "Salary");
        let cold = session.explain(&q).unwrap();
        let warm = session.explain(&q).unwrap();
        // same shared report object, not merely an equal one
        assert!(Arc::ptr_eq(&cold, &warm));
        let stats = session.stats();
        assert_eq!(stats.report_misses, 1);
        assert_eq!(stats.report_hits, 1);
        assert_eq!(stats.prepared_misses, 1);
    }

    #[test]
    fn different_contexts_share_nothing_in_the_extraction_cache() {
        let (df, g) = setup();
        let session = Session::new(&df, Some(&g), &["Country"], MesaConfig::default());
        let q_all = AggregateQuery::avg("Country", "Salary");
        let q_europe = AggregateQuery::avg("Country", "Salary")
            .with_context(Predicate::eq("Region", "Europe"));
        session.explain(&q_all).unwrap();
        session.explain(&q_europe).unwrap();
        let stats = session.stats();
        // the Europe context selects a different distinct-value set, so the
        // extraction cannot be served from the cache
        assert_eq!(stats.extraction_misses, 2);
        assert_eq!(stats.extraction_entries, 2);
        assert_eq!(stats.report_misses, 2);
    }

    #[test]
    fn same_distinct_values_share_the_extraction() {
        let (df, g) = setup();
        let session = Session::new(&df, Some(&g), &["Country"], MesaConfig::default());
        // Both queries keep every row, so the distinct Country values match
        // and the second prepare reuses the first extraction.
        let q1 = AggregateQuery::avg("Country", "Salary");
        let q2 = AggregateQuery::avg("Region", "Salary");
        session.prepare(&q1).unwrap();
        session.prepare(&q2).unwrap();
        let stats = session.stats();
        assert_eq!(stats.extraction_misses, 1);
        assert_eq!(stats.extraction_hits, 1);
        assert_eq!(stats.prepared_misses, 2);
    }

    #[test]
    fn session_prepare_matches_cold_prepare_query() {
        let (df, g) = setup();
        let session = Session::new(&df, Some(&g), &["Country"], MesaConfig::default());
        for q in [
            AggregateQuery::avg("Country", "Salary"),
            AggregateQuery::avg("Region", "Salary"),
            AggregateQuery::avg("Country", "Salary")
                .with_context(Predicate::eq("Region", "Europe")),
        ] {
            let warm = session.prepare(&q).unwrap();
            let cold = crate::problem::prepare_query(
                &df,
                &q,
                Some(&g),
                &["Country"],
                crate::problem::PrepareConfig::default(),
            )
            .unwrap();
            assert_eq!(warm.candidates, cold.candidates, "{q}");
            assert_eq!(warm.extracted, cold.extracted, "{q}");
            assert_eq!(warm.extraction_stats, cold.extraction_stats, "{q}");
            assert_eq!(warm.frame.n_rows(), cold.frame.n_rows(), "{q}");
        }
    }

    #[test]
    fn explain_many_matches_sequential_and_dedupes() {
        let (df, g) = setup();
        let session = Session::new(&df, Some(&g), &["Country"], MesaConfig::default());
        let q1 = AggregateQuery::avg("Country", "Salary");
        let q2 = AggregateQuery::avg("Region", "Salary");
        let batch = vec![q1.clone(), q2.clone(), q1.clone()];
        let results = session.explain_many(&batch);
        assert_eq!(results.len(), 3);
        // duplicates computed once
        assert_eq!(session.stats().report_misses, 2);
        let r0 = results[0].as_ref().unwrap();
        let r2 = results[2].as_ref().unwrap();
        assert!(Arc::ptr_eq(r0, r2));
        // identical to the sequential result
        let fresh = Session::new(&df, Some(&g), &["Country"], MesaConfig::default());
        let s1 = fresh.explain(&q1).unwrap();
        assert_eq!(s1.explanation, r0.explanation);
    }

    #[test]
    fn explain_many_reports_per_query_errors() {
        let (df, g) = setup();
        let session = Session::new(&df, Some(&g), &["Country"], MesaConfig::default());
        let good = AggregateQuery::avg("Country", "Salary");
        let bad = AggregateQuery::avg("Nope", "Salary");
        let results = session.explain_many(&[good, bad]);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
    }

    #[test]
    fn sessions_without_graph_work() {
        let (df, _) = setup();
        let session = Session::new(&df, None, &[], MesaConfig::default());
        let q = AggregateQuery::avg("Country", "Salary");
        let report = session.explain(&q).unwrap();
        assert_eq!(report.n_extracted, 0);
        assert_eq!(session.stats().extraction_misses, 0);
    }

    #[test]
    fn extraction_cache_keys_on_config_and_values() {
        let (_, g) = setup();
        let cache = ExtractionCache::new(&g);
        let values: Vec<String> = vec!["DE".into(), "IT".into()];
        let base = ExtractionConfig::default();
        let two_hops = ExtractionConfig { hops: 2, ..base };
        let max_agg = ExtractionConfig {
            one_to_many: kg::OneToManyAgg::Max,
            ..base
        };
        cache
            .get_or_extract("Country", &values, "__key_Country", base)
            .unwrap();
        // same key: hit
        cache
            .get_or_extract("Country", &values, "__key_Country", base)
            .unwrap();
        // different hops / policy / values / column: four more entries
        cache
            .get_or_extract("Country", &values, "__key_Country", two_hops)
            .unwrap();
        cache
            .get_or_extract("Country", &values, "__key_Country", max_agg)
            .unwrap();
        let fewer: Vec<String> = vec!["DE".into()];
        cache
            .get_or_extract("Country", &fewer, "__key_Country", base)
            .unwrap();
        cache
            .get_or_extract("Origin", &values, "__key_Origin", base)
            .unwrap();
        // a different key-column name yields a different cached table
        let renamed = cache
            .get_or_extract("Country", &values, "other_key", base)
            .unwrap();
        assert!(renamed.table.has_column("other_key"));
        assert_eq!(cache.len(), 6);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 6);
    }
}
