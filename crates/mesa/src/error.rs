//! Error type for the MESA system.

use std::fmt;

use tabular::TabularError;

/// Errors surfaced by MESA.
#[derive(Debug, Clone, PartialEq)]
pub enum MesaError {
    /// An underlying table operation failed.
    Table(TabularError),
    /// A regression fit failed (LR baseline or IPW weight estimation).
    Fit(String),
    /// The query or configuration is invalid for the given data.
    InvalidInput(String),
    /// No candidate attributes survive pruning / preparation.
    NoCandidates(String),
    /// The per-request deadline expired before the explanation finished;
    /// the session and its caches remain fully usable.
    DeadlineExceeded,
    /// A worker panicked inside the pipeline. The panic was contained at
    /// the session boundary (caches are left unpoisoned); the payload's
    /// message, when one exists, is preserved here.
    Internal(String),
}

impl fmt::Display for MesaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MesaError::Table(e) => write!(f, "table error: {e}"),
            MesaError::Fit(msg) => write!(f, "model fit error: {msg}"),
            MesaError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            MesaError::NoCandidates(msg) => write!(f, "no candidate attributes: {msg}"),
            MesaError::DeadlineExceeded => write!(f, "deadline exceeded"),
            MesaError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for MesaError {}

impl From<TabularError> for MesaError {
    fn from(e: TabularError) -> Self {
        MesaError::Table(e)
    }
}

impl From<stats::FitError> for MesaError {
    fn from(e: stats::FitError) -> Self {
        MesaError::Fit(e.to_string())
    }
}

/// Result alias for MESA operations.
pub type Result<T> = std::result::Result<T, MesaError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: MesaError = TabularError::ColumnNotFound("x".into()).into();
        assert!(e.to_string().contains("column not found"));
        let e: MesaError = stats::FitError::Singular.into();
        assert!(e.to_string().contains("singular"));
        assert!(MesaError::NoCandidates("all pruned".into())
            .to_string()
            .contains("all pruned"));
        assert!(MesaError::InvalidInput("bad k".into())
            .to_string()
            .contains("bad k"));
    }
}
