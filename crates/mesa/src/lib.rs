//! # mesa
//!
//! A from-scratch reproduction of **MESA**, the system of *"On Explaining
//! Confounding Bias"* (ICDE 2023): given an aggregate group-by query whose
//! result shows a surprising correlation between a grouping attribute (the
//! *exposure* `T`) and an aggregated attribute (the *outcome* `O`), MESA
//! finds a small set of confounding attributes — mined from the input table
//! and from an external knowledge graph — that explains the correlation away.
//!
//! Pipeline (each stage is its own module):
//!
//! 1. [`problem`] — apply the query context, join attributes extracted from
//!    the knowledge graph, bin and encode (`prepare_query`).
//! 2. [`pruning`] — offline and online pruning of the candidate attributes
//!    (Section 4.2 of the paper).
//! 3. [`missing`] — selection-bias detection and Inverse Probability
//!    Weighting for attributes with missing values (Section 3.2).
//! 4. [`mod@mcimr`] — the MCIMR greedy selection algorithm with the
//!    responsibility-test stopping rule (Algorithm 1).
//! 5. [`responsibility`] — degrees of responsibility (Definition 2.2).
//! 6. [`subgroups`] — top-k unexplained data subgroups (Algorithm 2).
//! 7. [`baselines`] — Brute-Force, Top-K, Linear Regression, and HypDB.
//!
//! The [`Mesa`] facade in [`system`] wires the stages together for one-shot
//! runs; [`session`] keeps a dataset's extraction and prepared-query caches
//! alive across queries (and batches them with [`Session::explain_many`]);
//! [`report`] renders results for humans.
//!
//! ## Serving-grade hardening
//!
//! [`session`] is built for long-lived serving: its cache tiers are
//! [`cache::BoundedCache`]s (LRU budgets via [`SessionLimits`], in-flight
//! miss deduplication), pipeline panics are contained at the session
//! boundary as [`MesaError::Internal`], and per-request wall-clock budgets
//! ([`Session::explain_with_deadline`]) surface as
//! [`MesaError::DeadlineExceeded`]. With the `fault-injection` feature the
//! deterministic fault harness (`mesa::faults`, re-exported from the
//! `parallel` crate) can arm panics, latency, or allocation failures at
//! named pipeline points for testing.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod baselines;
pub mod cache;
pub mod error;
pub mod mcimr;
pub mod missing;
pub mod parallel;
pub mod problem;
pub mod pruning;
pub mod report;
pub mod responsibility;
pub mod session;
pub mod subgroups;
pub mod system;

pub use cache::{BoundedCache, CacheBudget, CacheStats};
pub use error::{MesaError, Result};
pub use mcimr::{mcimr, McimrConfig, McimrTrace};
pub use missing::{
    analyze_attribute, analyze_candidates, combine_weights, fully_observed_columns,
    impute_candidates, selection_indicator, MissingPolicy, SelectionBiasInfo,
};
pub use parallel::parallel_map;
pub use problem::{
    apply_query_context, extract_and_join, extract_and_join_with, prepare_from_joined,
    prepare_query, ColumnExtraction, Explanation, ExtractionJoin, PrepareConfig, PreparedQuery,
};
pub use pruning::{prune, prune_offline, prune_online, PruneReason, PruningConfig, PruningReport};
pub use report::{explanation_details, explanation_line, report_summary, subgroup_table};
pub use responsibility::responsibilities;
pub use session::{ExtractionCache, Session, SessionCacheStats, SessionLimits, SessionStats};
pub use subgroups::{unexplained_subgroups, Subgroup, SubgroupConfig};
pub use system::{Mesa, MesaConfig, MesaReport};

/// The deterministic fault-injection registry (re-exported from the
/// `parallel` runtime crate): arm named pipeline points with panics,
/// latency, or simulated allocation failure. Only present with the
/// `fault-injection` feature.
#[cfg(feature = "fault-injection")]
pub use ::parallel::faults;
