//! Human-readable rendering of MESA results, used by the examples and the
//! experiment harness.

use crate::problem::Explanation;
use crate::subgroups::Subgroup;
use crate::system::MesaReport;

/// Renders an explanation as a one-line attribute list, e.g.
/// `"HDI, Gini"` — the format of Table 2.
pub fn explanation_line(explanation: &Explanation) -> String {
    if explanation.is_empty() {
        return "(no explanation found)".to_string();
    }
    explanation.attributes.join(", ")
}

/// Renders an explanation with responsibilities and scores, one attribute per
/// line.
pub fn explanation_details(explanation: &Explanation) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "I(O;T|C) = {:.4} bits -> I(O;T|E,C) = {:.4} bits ({:.0}% explained)\n",
        explanation.baseline_cmi,
        explanation.explainability,
        explanation.explained_fraction() * 100.0
    ));
    for (attr, resp) in explanation.ranked_attributes() {
        out.push_str(&format!("  {attr:<40} responsibility {resp:>6.2}\n"));
    }
    out
}

/// Renders a full MESA report (explanation + pipeline diagnostics).
pub fn report_summary(report: &MesaReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "explanation: {}\n",
        explanation_line(&report.explanation)
    ));
    out.push_str(&explanation_details(&report.explanation));
    out.push_str(&format!(
        "candidates: {} total, {} extracted from the knowledge source\n",
        report.n_candidates, report.n_extracted
    ));
    out.push_str(&format!(
        "pruning: {} dropped offline, {} dropped online, {} kept\n",
        report.pruning.n_offline_dropped(),
        report.pruning.n_online_dropped(),
        report.pruning.kept.len()
    ));
    if !report.selection_bias.is_empty() {
        let mut names: Vec<&str> = report.selection_bias.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        out.push_str(&format!(
            "selection bias detected (IPW applied): {}\n",
            names.join(", ")
        ));
    }
    out
}

/// Renders the unexplained-subgroup table (Table 4 format).
pub fn subgroup_table(groups: &[Subgroup]) -> String {
    let mut out = String::from("rank  size      score   data group\n");
    for (i, g) in groups.iter().enumerate() {
        out.push_str(&format!(
            "{:<5} {:<9} {:<7.3} {}\n",
            i + 1,
            g.size,
            g.score,
            g.describe()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::Value;

    fn explanation() -> Explanation {
        Explanation {
            attributes: vec!["HDI".into(), "Gini".into()],
            baseline_cmi: 2.0,
            explainability: 0.4,
            responsibilities: vec![0.7, 0.3],
        }
    }

    #[test]
    fn line_rendering() {
        assert_eq!(explanation_line(&explanation()), "HDI, Gini");
        assert_eq!(
            explanation_line(&Explanation::empty(1.0)),
            "(no explanation found)"
        );
    }

    #[test]
    fn details_rendering() {
        let text = explanation_details(&explanation());
        assert!(text.contains("80% explained"));
        assert!(text.contains("HDI"));
        assert!(text.contains("0.70"));
    }

    #[test]
    fn subgroup_table_rendering() {
        let groups = vec![Subgroup {
            terms: vec![("Continent".to_string(), Value::Str("Europe".into()))],
            size: 18342,
            score: 0.41,
        }];
        let text = subgroup_table(&groups);
        assert!(text.contains("Continent = Europe"));
        assert!(text.contains("18342"));
    }
}
