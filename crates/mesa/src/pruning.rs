//! Pruning optimisations (Section 4.2).
//!
//! Two phases reduce the candidate set `A` before MCIMR runs:
//!
//! * **Offline (pre-processing, query-independent)** — drop attributes with a
//!   constant value, attributes with more than 90% missing values, and
//!   key-like attributes whose entropy is (almost) maximal because nearly
//!   every tuple has a unique value (`wikiID`).
//! * **Online (query-specific)** — drop attributes logically equivalent to
//!   the exposure or the outcome (approximate functional dependencies in both
//!   directions, e.g. `CountryCode ⇔ Country`; conditioning on them would
//!   mechanically zero the CMI, Lemma A.2), and attributes with low
//!   individual relevance (`O ⫫ E | C` and `O ⫫ E | T, C`), which the paper's
//!   key assumption says cannot participate in a good explanation.

use infotheory::{CiTestConfig, EncodedFrame};

use crate::error::Result;

/// Why an attribute was pruned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneReason {
    /// Constant value across all (non-null) rows.
    Constant,
    /// More than the allowed fraction of missing values.
    TooManyMissing,
    /// Key-like attribute: (almost) unique value per tuple.
    HighEntropy,
    /// Approximate functional dependency with the exposure or outcome.
    LogicalDependency,
    /// Individually irrelevant to the outcome.
    LowRelevance,
}

impl PruneReason {
    /// Whether the reason belongs to the offline (pre-processing) phase.
    pub fn is_offline(self) -> bool {
        matches!(
            self,
            PruneReason::Constant | PruneReason::TooManyMissing | PruneReason::HighEntropy
        )
    }
}

/// Configuration of the pruning thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PruningConfig {
    /// Enable the offline phase.
    pub offline: bool,
    /// Enable the online phase.
    pub online: bool,
    /// Missing-value fraction above which an attribute is dropped (paper: 0.9).
    pub max_missing_fraction: f64,
    /// Distinct-value ratio above which an attribute counts as key-like.
    pub max_distinct_ratio: f64,
    /// Entropy tolerance (bits) for the approximate functional-dependency test.
    pub fd_epsilon: f64,
    /// CI-test configuration for the low-relevance test.
    pub ci: CiTestConfig,
}

impl Default for PruningConfig {
    fn default() -> Self {
        PruningConfig {
            offline: true,
            online: true,
            max_missing_fraction: 0.9,
            max_distinct_ratio: 0.9,
            fd_epsilon: 0.05,
            ci: CiTestConfig::default(),
        }
    }
}

impl PruningConfig {
    /// A configuration with all pruning disabled (the MESA⁻ / No-Pruning
    /// baselines).
    pub fn disabled() -> Self {
        PruningConfig {
            offline: false,
            online: false,
            ..Default::default()
        }
    }

    /// Offline pruning only (the "Offline Pruning" baseline of Figure 4).
    pub fn offline_only() -> Self {
        PruningConfig {
            offline: true,
            online: false,
            ..Default::default()
        }
    }
}

/// The outcome of pruning: surviving candidates plus the per-attribute drop
/// reasons (used by the appendix pruning-impact experiment).
#[derive(Debug, Clone, Default)]
pub struct PruningReport {
    /// Candidates that survived, in input order.
    pub kept: Vec<String>,
    /// `(attribute, reason)` for every dropped candidate.
    pub dropped: Vec<(String, PruneReason)>,
}

impl PruningReport {
    /// Number of attributes dropped by the offline phase.
    pub fn n_offline_dropped(&self) -> usize {
        self.dropped.iter().filter(|(_, r)| r.is_offline()).count()
    }

    /// Number of attributes dropped by the online phase.
    pub fn n_online_dropped(&self) -> usize {
        self.dropped.iter().filter(|(_, r)| !r.is_offline()).count()
    }

    /// Fraction of the input candidates that was dropped.
    pub fn dropped_fraction(&self) -> f64 {
        let total = self.kept.len() + self.dropped.len();
        if total == 0 {
            0.0
        } else {
            self.dropped.len() as f64 / total as f64
        }
    }
}

/// Runs the offline pruning phase over `candidates`.
pub fn prune_offline(
    encoded: &EncodedFrame,
    candidates: &[String],
    config: &PruningConfig,
) -> Result<PruningReport> {
    let mut report = PruningReport::default();
    if !config.offline {
        report.kept = candidates.to_vec();
        return Ok(report);
    }
    let n_rows = encoded.n_rows().max(1);
    for name in candidates {
        let cardinality = encoded.cardinality(name)?;
        let missing = encoded.missing_fraction(name)?;
        if missing >= 1.0 || cardinality <= 1 {
            report.dropped.push((name.clone(), PruneReason::Constant));
        } else if missing > config.max_missing_fraction {
            report
                .dropped
                .push((name.clone(), PruneReason::TooManyMissing));
        } else {
            let present = ((1.0 - missing) * n_rows as f64).max(1.0);
            if cardinality as f64 / present > config.max_distinct_ratio && cardinality > 4 {
                report
                    .dropped
                    .push((name.clone(), PruneReason::HighEntropy));
            } else {
                report.kept.push(name.clone());
            }
        }
    }
    Ok(report)
}

/// Runs the online (query-specific) pruning phase over `candidates`.
pub fn prune_online(
    encoded: &EncodedFrame,
    candidates: &[String],
    exposure: &str,
    outcome: &str,
    config: &PruningConfig,
) -> Result<PruningReport> {
    let mut report = PruningReport::default();
    if !config.online {
        report.kept = candidates.to_vec();
        return Ok(report);
    }
    for name in candidates {
        // Logical dependency: the candidate (approximately) functionally
        // determines the exposure or the outcome. Conditioning on such an
        // attribute drives the CMI to zero mechanically (Lemma A.2 — e.g.
        // CountryCode ⇒ Country, or Country ⇒ Continent when the exposure is
        // the continent), so it is discarded.
        let ht_e = encoded.conditional_entropy(exposure, &[name])?;
        let ho_e = encoded.conditional_entropy(outcome, &[name])?;
        let eps = config.fd_epsilon;
        if ht_e <= eps || ho_e <= eps {
            report
                .dropped
                .push((name.clone(), PruneReason::LogicalDependency));
            continue;
        }
        // Low relevance: O ⫫ E | C and O ⫫ E | T, C. The context C is already
        // baked into the prepared frame.
        let marginal = encoded.ci_test(outcome, name, &[], None, config.ci)?;
        let given_t = encoded.ci_test(outcome, name, &[exposure], None, config.ci)?;
        if marginal.independent && given_t.independent {
            report
                .dropped
                .push((name.clone(), PruneReason::LowRelevance));
            continue;
        }
        report.kept.push(name.clone());
    }
    Ok(report)
}

/// Runs both phases and merges the reports.
pub fn prune(
    encoded: &EncodedFrame,
    candidates: &[String],
    exposure: &str,
    outcome: &str,
    config: &PruningConfig,
) -> Result<PruningReport> {
    let offline = prune_offline(encoded, candidates, config)?;
    let online = prune_online(encoded, &offline.kept, exposure, outcome, config)?;
    let mut dropped = offline.dropped;
    dropped.extend(online.dropped);
    Ok(PruningReport {
        kept: online.kept,
        dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::DataFrameBuilder;

    /// A frame with one attribute of every kind the pruner must handle.
    fn frame() -> (EncodedFrame, Vec<String>) {
        let n = 200;
        let mut country = Vec::new();
        let mut code = Vec::new();
        let mut salary_band = Vec::new();
        let mut gdp = Vec::new();
        let mut constant = Vec::new();
        let mut key = Vec::new();
        let mut mostly_missing = Vec::new();
        let mut noise = Vec::new();
        for i in 0..n {
            let c = ["DE", "IT", "NG", "KE"][i % 4];
            country.push(Some(c.to_string()));
            code.push(Some(format!("code-{c}")));
            // salary driven by country wealth plus an independent factor, so
            // it is *correlated* with GDP but not logically equivalent to it
            let rich = i % 4 < 2;
            let lucky = (i / 4) % 2 == 0;
            salary_band.push(Some(
                match (rich, lucky) {
                    (true, true) => "very high",
                    (true, false) => "high",
                    (false, true) => "low",
                    (false, false) => "very low",
                }
                .to_string(),
            ));
            gdp.push(Some(if rich { "big" } else { "small" }.to_string()));
            constant.push(Some("Country".to_string()));
            key.push(Some(format!("id-{i}")));
            mostly_missing.push(if i % 25 == 0 {
                Some("x".to_string())
            } else {
                None
            });
            noise.push(Some(format!("n{}", (i * 13) % 2)));
        }
        let to_opt = |v: Vec<Option<String>>| v.into_iter().collect::<Vec<_>>();
        let df = DataFrameBuilder::new()
            .cat(
                "Country",
                to_opt(country).iter().map(|x| x.as_deref()).collect(),
            )
            .cat(
                "CountryCode",
                to_opt(code).iter().map(|x| x.as_deref()).collect(),
            )
            .cat(
                "Salary",
                to_opt(salary_band).iter().map(|x| x.as_deref()).collect(),
            )
            .cat("GDP", to_opt(gdp).iter().map(|x| x.as_deref()).collect())
            .cat(
                "type",
                to_opt(constant).iter().map(|x| x.as_deref()).collect(),
            )
            .cat("wikiID", to_opt(key).iter().map(|x| x.as_deref()).collect())
            .cat(
                "sparse",
                to_opt(mostly_missing)
                    .iter()
                    .map(|x| x.as_deref())
                    .collect(),
            )
            .cat(
                "noise",
                to_opt(noise).iter().map(|x| x.as_deref()).collect(),
            )
            .build()
            .unwrap();
        let encoded = EncodedFrame::from_frame(&df);
        let candidates: Vec<String> = ["CountryCode", "GDP", "type", "wikiID", "sparse", "noise"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        (encoded, candidates)
    }

    #[test]
    fn offline_drops_constant_key_and_sparse() {
        let (encoded, candidates) = frame();
        let report = prune_offline(&encoded, &candidates, &PruningConfig::default()).unwrap();
        let dropped: Vec<&str> = report.dropped.iter().map(|(n, _)| n.as_str()).collect();
        assert!(dropped.contains(&"type"));
        assert!(dropped.contains(&"wikiID"));
        assert!(dropped.contains(&"sparse"));
        assert!(report.kept.contains(&"GDP".to_string()));
        assert!(report.kept.contains(&"CountryCode".to_string()));
        assert_eq!(report.n_offline_dropped(), report.dropped.len());
    }

    #[test]
    fn online_drops_fd_and_irrelevant() {
        let (encoded, candidates) = frame();
        let offline = prune_offline(&encoded, &candidates, &PruningConfig::default()).unwrap();
        let report = prune_online(
            &encoded,
            &offline.kept,
            "Country",
            "Salary",
            &PruningConfig::default(),
        )
        .unwrap();
        let dropped: Vec<(&str, PruneReason)> = report
            .dropped
            .iter()
            .map(|(n, r)| (n.as_str(), *r))
            .collect();
        assert!(dropped.contains(&("CountryCode", PruneReason::LogicalDependency)));
        assert!(dropped.contains(&("noise", PruneReason::LowRelevance)));
        assert_eq!(report.kept, vec!["GDP".to_string()]);
    }

    #[test]
    fn combined_prune_and_report_counts() {
        let (encoded, candidates) = frame();
        let report = prune(
            &encoded,
            &candidates,
            "Country",
            "Salary",
            &PruningConfig::default(),
        )
        .unwrap();
        assert_eq!(report.kept, vec!["GDP".to_string()]);
        assert_eq!(report.kept.len() + report.dropped.len(), candidates.len());
        assert!(report.n_offline_dropped() >= 3);
        assert!(report.n_online_dropped() >= 2);
        assert!(report.dropped_fraction() > 0.5);
    }

    #[test]
    fn disabled_config_keeps_everything() {
        let (encoded, candidates) = frame();
        let report = prune(
            &encoded,
            &candidates,
            "Country",
            "Salary",
            &PruningConfig::disabled(),
        )
        .unwrap();
        assert_eq!(report.kept, candidates);
        assert!(report.dropped.is_empty());
        assert_eq!(report.dropped_fraction(), 0.0);
    }

    #[test]
    fn offline_only_config() {
        let (encoded, candidates) = frame();
        let report = prune(
            &encoded,
            &candidates,
            "Country",
            "Salary",
            &PruningConfig::offline_only(),
        )
        .unwrap();
        // FD attribute survives because the online phase is off
        assert!(report.kept.contains(&"CountryCode".to_string()));
        assert!(!report.kept.contains(&"wikiID".to_string()));
    }

    #[test]
    fn prune_reason_phases() {
        assert!(PruneReason::Constant.is_offline());
        assert!(PruneReason::HighEntropy.is_offline());
        assert!(!PruneReason::LogicalDependency.is_offline());
        assert!(!PruneReason::LowRelevance.is_offline());
    }

    #[test]
    fn empty_candidates() {
        let (encoded, _) = frame();
        let report = prune(
            &encoded,
            &[],
            "Country",
            "Salary",
            &PruningConfig::default(),
        )
        .unwrap();
        assert!(report.kept.is_empty());
        assert_eq!(report.dropped_fraction(), 0.0);
    }
}
