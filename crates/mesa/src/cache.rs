//! Bounded, dedup-aware caches behind [`Session`](crate::session::Session).
//!
//! Every session cache tier is a [`BoundedCache`]: a keyed map of shared
//! (`Arc`) values with
//!
//! * **LRU eviction** against an entry-count *and* approximate byte budget
//!   ([`CacheBudget`]) — a logical clock stamps each hit, and inserts evict
//!   least-recently-used `Ready` entries until both budgets hold, so a
//!   long-running session cannot grow without bound;
//! * **in-flight miss dedup** — the first thread to miss a key installs an
//!   `InFlight` slot and computes; concurrent callers of the same key block
//!   on that slot's condvar instead of duplicating ~1 s of cold pipeline,
//!   then re-read the published value;
//! * **panic/error safety** — a fill that returns `Err` or unwinds removes
//!   the in-flight slot (waiters wake and one of them retries the fill), so
//!   a poisoned entry can never be observed and the mutex itself ignores
//!   poisoning (all guarded state is updated in single statements).
//!
//! Eviction only ever removes `Ready` entries; an in-flight computation is
//! never cancelled by budget pressure. Waiting on another thread's fill is
//! *not* interruptible by a deadline — the filling thread owns the
//! computation and its own deadline governs it.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Locks ignoring poisoning; see the module docs for why this is sound
/// here.
fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Entry-count and approximate byte budget of one cache tier. `None`
/// disables the respective bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheBudget {
    /// Maximum resident entries (`None` = unbounded).
    pub max_entries: Option<usize>,
    /// Maximum resident bytes, by the tier's approximate per-entry
    /// footprint (`None` = unbounded).
    pub max_bytes: Option<usize>,
}

impl CacheBudget {
    /// No bounds at all.
    pub fn unbounded() -> Self {
        CacheBudget::default()
    }

    /// A budget bounded by entry count only.
    pub fn entries(max_entries: usize) -> Self {
        CacheBudget {
            max_entries: Some(max_entries),
            max_bytes: None,
        }
    }
}

/// Counters of one cache tier (see [`BoundedCache::stats`]). All counters
/// are cumulative since session construction except `entries` /
/// `resident_bytes`, which are the current residency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from a resident entry.
    pub hits: usize,
    /// Lookups that ran the fill computation.
    pub misses: usize,
    /// Entries removed by LRU budget pressure, plus values too large for
    /// the whole byte budget that were returned uncached.
    pub evictions: usize,
    /// Lookups that blocked on another thread's in-flight fill of the same
    /// key instead of duplicating it.
    pub coalesced: usize,
    /// Currently resident (ready) entries.
    pub entries: usize,
    /// Approximate bytes of the resident entries.
    pub resident_bytes: usize,
}

/// A key's slot: either a published value or a computation in flight.
enum Slot<V> {
    Ready {
        value: Arc<V>,
        bytes: usize,
        last_used: u64,
    },
    InFlight(Arc<InFlight>),
}

/// The rendezvous waiters block on while one thread fills a key.
struct InFlight {
    done: Mutex<bool>,
    cv: Condvar,
}

impl InFlight {
    fn new() -> Self {
        InFlight {
            done: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn wait(&self) {
        let mut done = lock_ignore_poison(&self.done);
        while !*done {
            done = self.cv.wait(done).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn finish(&self) {
        *lock_ignore_poison(&self.done) = true;
        self.cv.notify_all();
    }
}

/// The map plus the LRU clock and byte accounting, under one mutex.
struct CacheState<K, V> {
    map: HashMap<K, Slot<V>>,
    /// Logical LRU clock: bumped on every hit and insert.
    clock: u64,
    /// Sum of the `bytes` of all `Ready` entries.
    resident: usize,
}

/// A bounded, coalescing cache tier. See the module docs for the design.
pub struct BoundedCache<K, V> {
    state: Mutex<CacheState<K, V>>,
    budget: CacheBudget,
    hits: AtomicUsize,
    misses: AtomicUsize,
    evictions: AtomicUsize,
    coalesced: AtomicUsize,
}

impl<K: Eq + Hash + Clone, V> std::fmt::Debug for BoundedCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("BoundedCache")
            .field("budget", &self.budget)
            .field("stats", &stats)
            .finish()
    }
}

/// Removes the in-flight slot for a key if its fill errors or unwinds, so
/// waiters wake up and retry rather than blocking on a corpse.
struct FillGuard<'c, K: Eq + Hash + Clone, V> {
    cache: &'c BoundedCache<K, V>,
    key: &'c K,
    armed: bool,
}

impl<K: Eq + Hash + Clone, V> Drop for FillGuard<'_, K, V> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let mut state = lock_ignore_poison(&self.cache.state);
        if let Some(Slot::InFlight(inflight)) = state.map.remove(self.key) {
            inflight.finish();
        }
    }
}

impl<K: Eq + Hash + Clone, V> BoundedCache<K, V> {
    /// An empty cache under `budget`.
    pub fn new(budget: CacheBudget) -> Self {
        BoundedCache {
            state: Mutex::new(CacheState {
                map: HashMap::new(),
                clock: 0,
                resident: 0,
            }),
            budget,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
            coalesced: AtomicUsize::new(0),
        }
    }

    /// The budget this tier enforces.
    pub fn budget(&self) -> CacheBudget {
        self.budget
    }

    /// Returns the resident value for `key` (counting a hit and bumping its
    /// recency), or computes it via `fill`, publishing on `Ok`.
    ///
    /// Concurrent callers of the same key coalesce: exactly one runs `fill`
    /// while the rest block and then re-read the published entry. A `fill`
    /// that returns `Err` or panics is **not** cached — its slot is cleared
    /// (one waiter, if any, takes over the fill) and the error/panic
    /// propagates to its own caller only.
    ///
    /// `bytes_of` prices the value for the byte budget; after publishing,
    /// least-recently-used entries are evicted until the budget holds. A
    /// value that *alone* exceeds the whole byte budget is never published
    /// at all — it is returned to its caller but warm residents stay put
    /// (the drop still counts as an eviction).
    pub fn get_or_fill<E>(
        &self,
        key: &K,
        bytes_of: impl FnOnce(&V) -> usize,
        fill: impl FnOnce() -> Result<V, E>,
    ) -> Result<Arc<V>, E> {
        // A lookup that blocks on another thread's fill counts once, as
        // `coalesced` — neither its wait nor its re-read is a hit or miss.
        let mut waited = false;
        loop {
            let waiter = {
                let mut state = lock_ignore_poison(&self.state);
                state.clock += 1;
                let now = state.clock;
                match state.map.get_mut(key) {
                    Some(Slot::Ready {
                        value, last_used, ..
                    }) => {
                        *last_used = now;
                        let value = value.clone();
                        if !waited {
                            self.hits.fetch_add(1, Ordering::Relaxed);
                        }
                        return Ok(value);
                    }
                    Some(Slot::InFlight(inflight)) => {
                        if !waited {
                            self.coalesced.fetch_add(1, Ordering::Relaxed);
                        }
                        Arc::clone(inflight)
                    }
                    None => {
                        if !waited {
                            self.misses.fetch_add(1, Ordering::Relaxed);
                        }
                        state
                            .map
                            .insert(key.clone(), Slot::InFlight(Arc::new(InFlight::new())));
                        break;
                    }
                }
            };
            waited = true;
            waiter.wait();
        }
        // This thread owns the fill. The guard clears the in-flight slot on
        // every non-publishing exit (Err return or unwind).
        let mut guard = FillGuard {
            cache: self,
            key,
            armed: true,
        };
        let value = fill()?;
        let bytes = bytes_of(&value);
        let value = Arc::new(value);
        let mut state = lock_ignore_poison(&self.state);
        guard.armed = false;
        if self.budget.max_bytes.is_some_and(|m| bytes > m) {
            // The entry alone busts the byte budget: publishing it would
            // force every warm resident out before it was itself evicted as
            // the newest entry. Drop it instead and leave residents alone.
            if let Some(Slot::InFlight(inflight)) = state.map.remove(key) {
                inflight.finish();
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
            return Ok(value);
        }
        state.clock += 1;
        let now = state.clock;
        if let Some(Slot::InFlight(inflight)) = state.map.insert(
            key.clone(),
            Slot::Ready {
                value: value.clone(),
                bytes,
                last_used: now,
            },
        ) {
            inflight.finish();
        }
        state.resident += bytes;
        self.evict_over_budget(&mut state);
        Ok(value)
    }

    /// Returns the resident value for `key` without filling, counting a hit
    /// and bumping recency when present. Does not wait on in-flight fills.
    pub fn get_if_ready(&self, key: &K) -> Option<Arc<V>> {
        let mut state = lock_ignore_poison(&self.state);
        state.clock += 1;
        let now = state.clock;
        match state.map.get_mut(key) {
            Some(Slot::Ready {
                value, last_used, ..
            }) => {
                *last_used = now;
                let value = value.clone();
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            _ => None,
        }
    }

    /// Counts an extra hit (used when a value obtained once is fanned out
    /// to duplicate requests, so per-request counters stay truthful).
    pub(crate) fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Evicts least-recently-used `Ready` entries until both budgets hold.
    /// In-flight slots are never evicted and do not count toward budgets.
    fn evict_over_budget(&self, state: &mut CacheState<K, V>) {
        loop {
            let ready: usize = state
                .map
                .values()
                .filter(|s| matches!(s, Slot::Ready { .. }))
                .count();
            let over_entries = self.budget.max_entries.is_some_and(|m| ready > m);
            let over_bytes = self.budget.max_bytes.is_some_and(|m| state.resident > m);
            if (!over_entries && !over_bytes) || ready == 0 {
                return;
            }
            let victim = state
                .map
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Ready { last_used, .. } => Some((*last_used, k)),
                    Slot::InFlight(_) => None,
                })
                .min_by_key(|&(last_used, _)| last_used)
                .map(|(_, k)| k.clone());
            let Some(victim) = victim else { return };
            if let Some(Slot::Ready { bytes, .. }) = state.map.remove(&victim) {
                state.resident -= bytes;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Number of resident (ready) entries.
    pub fn len(&self) -> usize {
        lock_ignore_poison(&self.state)
            .map
            .values()
            .filter(|s| matches!(s, Slot::Ready { .. }))
            .count()
    }

    /// Whether no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate bytes of the resident entries.
    pub fn resident_bytes(&self) -> usize {
        lock_ignore_poison(&self.state).resident
    }

    /// Current counters of this tier.
    pub fn stats(&self) -> CacheStats {
        let (entries, resident_bytes) = {
            let state = lock_ignore_poison(&self.state);
            let entries = state
                .map
                .values()
                .filter(|s| matches!(s, Slot::Ready { .. }))
                .count();
            (entries, state.resident)
        };
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            entries,
            resident_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::convert::Infallible;

    fn fill_ok(v: u64) -> impl FnOnce() -> Result<u64, Infallible> {
        move || Ok(v)
    }

    #[test]
    fn hit_miss_and_lru_eviction_by_entries() {
        let cache: BoundedCache<String, u64> = BoundedCache::new(CacheBudget::entries(2));
        let sized = |_: &u64| 8usize;
        cache
            .get_or_fill(&"a".to_string(), sized, fill_ok(1))
            .unwrap();
        cache
            .get_or_fill(&"b".to_string(), sized, fill_ok(2))
            .unwrap();
        // touch `a` so `b` is the LRU victim when `c` arrives
        assert_eq!(
            *cache
                .get_or_fill(&"a".to_string(), sized, fill_ok(9))
                .unwrap(),
            1
        );
        cache
            .get_or_fill(&"c".to_string(), sized, fill_ok(3))
            .unwrap();
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 3);
        assert!(cache.get_if_ready(&"b".to_string()).is_none(), "b evicted");
        assert!(cache.get_if_ready(&"a".to_string()).is_some(), "a survived");
    }

    #[test]
    fn byte_budget_evicts_and_accounts() {
        let cache: BoundedCache<u32, Vec<u8>> = BoundedCache::new(CacheBudget {
            max_entries: None,
            max_bytes: Some(100),
        });
        let sized = |v: &Vec<u8>| v.len();
        cache
            .get_or_fill(&1, sized, || Ok::<_, Infallible>(vec![0u8; 60]))
            .unwrap();
        cache
            .get_or_fill(&2, sized, || Ok::<_, Infallible>(vec![0u8; 30]))
            .unwrap();
        assert_eq!(cache.resident_bytes(), 90);
        // 60 more bytes push the total to 150; entry 1 (LRU) is evicted.
        cache
            .get_or_fill(&3, sized, || Ok::<_, Infallible>(vec![0u8; 60]))
            .unwrap();
        assert_eq!(cache.resident_bytes(), 90);
        assert!(cache.get_if_ready(&1).is_none());
        // A single entry larger than the whole budget is spilled immediately
        // but still returned to its caller.
        let big = cache
            .get_or_fill(&4, sized, || Ok::<_, Infallible>(vec![0u8; 500]))
            .unwrap();
        assert_eq!(big.len(), 500);
        assert!(
            cache.get_if_ready(&4).is_none(),
            "over-budget entry spilled"
        );
        assert!(cache.resident_bytes() <= 100);
    }

    #[test]
    fn oversize_entry_does_not_evict_warm_residents() {
        let cache: BoundedCache<u32, Vec<u8>> = BoundedCache::new(CacheBudget {
            max_entries: None,
            max_bytes: Some(100),
        });
        let sized = |v: &Vec<u8>| v.len();
        cache
            .get_or_fill(&1, sized, || Ok::<_, Infallible>(vec![0u8; 40]))
            .unwrap();
        cache
            .get_or_fill(&2, sized, || Ok::<_, Infallible>(vec![0u8; 40]))
            .unwrap();
        // An entry that alone busts the budget is returned but never
        // published, and the two warm residents are untouched.
        let big = cache
            .get_or_fill(&3, sized, || Ok::<_, Infallible>(vec![0u8; 101]))
            .unwrap();
        assert_eq!(big.len(), 101);
        assert!(cache.get_if_ready(&3).is_none());
        assert!(cache.get_if_ready(&1).is_some(), "warm resident 1 survived");
        assert!(cache.get_if_ready(&2).is_some(), "warm resident 2 survived");
        assert_eq!(cache.resident_bytes(), 80);
        assert_eq!(cache.stats().evictions, 1, "the drop is visible in stats");
        // The key stays fillable: a later, smaller value for it publishes.
        cache
            .get_or_fill(&3, sized, || Ok::<_, Infallible>(vec![0u8; 10]))
            .unwrap();
        assert!(cache.get_if_ready(&3).is_some());
    }

    #[test]
    fn zero_byte_entries_are_resident_and_terminate_eviction() {
        let cache: BoundedCache<u32, Vec<u8>> = BoundedCache::new(CacheBudget {
            max_entries: None,
            max_bytes: Some(10),
        });
        let sized = |v: &Vec<u8>| v.len();
        // Zero-byte entries never contribute byte pressure, so any number of
        // them stays resident and the eviction loop terminates immediately.
        for k in 0..64u32 {
            cache
                .get_or_fill(&k, sized, || Ok::<_, Infallible>(Vec::new()))
                .unwrap();
        }
        assert_eq!(cache.len(), 64);
        assert_eq!(cache.resident_bytes(), 0);
        assert_eq!(cache.stats().evictions, 0);
        // A real-sized entry still triggers only its own accounting.
        cache
            .get_or_fill(&1000, sized, || Ok::<_, Infallible>(vec![0u8; 10]))
            .unwrap();
        assert_eq!(cache.resident_bytes(), 10);
        assert_eq!(cache.len(), 65);
        // An entry-count budget still applies to zero-byte entries.
        let counted: BoundedCache<u32, Vec<u8>> = BoundedCache::new(CacheBudget::entries(4));
        for k in 0..10u32 {
            counted
                .get_or_fill(&k, sized, || Ok::<_, Infallible>(Vec::new()))
                .unwrap();
        }
        assert_eq!(counted.len(), 4);
        assert_eq!(counted.stats().evictions, 6);
    }

    #[test]
    fn interleaved_hit_miss_storm_preserves_lru_order() {
        let cache: BoundedCache<u32, u64> = BoundedCache::new(CacheBudget::entries(3));
        let sized = |_: &u64| 1usize;
        for k in [1u32, 2, 3] {
            cache.get_or_fill(&k, sized, fill_ok(k as u64)).unwrap();
        }
        // Storm: hits refresh recency out of insertion order, misses evict.
        // Touch order so far (oldest -> newest): 1, 2, 3.
        cache.get_or_fill(&1, sized, fill_ok(0)).unwrap(); // hit: 2, 3, 1
        cache.get_or_fill(&4, sized, fill_ok(4)).unwrap(); // miss: evicts 2
        assert!(cache.get_if_ready(&2).is_none(), "2 was LRU");
        // Now (oldest -> newest): 3, 1, 4 — `get_if_ready` above also bumped
        // nothing for 2 (absent), but hits below do bump.
        cache.get_or_fill(&3, sized, fill_ok(0)).unwrap(); // hit: 1, 4, 3
        cache.get_or_fill(&5, sized, fill_ok(5)).unwrap(); // miss: evicts 1
        assert!(cache.get_if_ready(&1).is_none(), "1 was LRU after 3's hit");
        for k in [3u32, 4, 5] {
            assert!(cache.get_if_ready(&k).is_some(), "{k} resident");
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 3);
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.misses, 5);
    }

    #[test]
    fn errors_are_not_cached_and_slot_is_cleared() {
        let cache: BoundedCache<u32, u64> = BoundedCache::new(CacheBudget::unbounded());
        let r = cache.get_or_fill(&7, |_| 0, || Err::<u64, String>("boom".into()));
        assert_eq!(r.unwrap_err(), "boom");
        assert_eq!(cache.len(), 0);
        // The key is immediately fillable again.
        assert_eq!(*cache.get_or_fill(&7, |_| 0, fill_ok(42)).unwrap(), 42);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn panicking_fill_clears_the_slot() {
        let cache: BoundedCache<u32, u64> = BoundedCache::new(CacheBudget::unbounded());
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_fill(
                &1,
                |_| 0,
                || -> Result<u64, Infallible> { panic!("mid-fill") },
            )
        }));
        assert!(r.is_err());
        assert_eq!(cache.len(), 0, "no poisoned residue");
        assert_eq!(*cache.get_or_fill(&1, |_| 0, fill_ok(5)).unwrap(), 5);
    }

    #[test]
    fn concurrent_same_key_misses_coalesce_to_one_fill() {
        use std::sync::atomic::AtomicUsize;
        let cache: Arc<BoundedCache<u32, u64>> =
            Arc::new(BoundedCache::new(CacheBudget::unbounded()));
        let fills = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let fills = Arc::clone(&fills);
            handles.push(std::thread::spawn(move || {
                *cache
                    .get_or_fill(
                        &42,
                        |_| 8,
                        || {
                            fills.fetch_add(1, Ordering::SeqCst);
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            Ok::<u64, Infallible>(99)
                        },
                    )
                    .unwrap()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 99);
        }
        assert_eq!(
            fills.load(Ordering::SeqCst),
            1,
            "cold fill ran exactly once"
        );
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits + stats.coalesced, 7);
    }

    #[test]
    fn waiters_survive_a_panicking_filler() {
        let cache: Arc<BoundedCache<u32, u64>> =
            Arc::new(BoundedCache::new(CacheBudget::unbounded()));
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let panicker = {
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    cache.get_or_fill(
                        &1,
                        |_| 0,
                        || -> Result<u64, Infallible> {
                            barrier.wait(); // waiter is about to queue up
                            std::thread::sleep(std::time::Duration::from_millis(10));
                            panic!("filler died");
                        },
                    )
                }));
            })
        };
        barrier.wait();
        // This call either coalesces onto the dying fill (then retries) or
        // arrives after the slot is cleared; both must end with 7.
        let v = cache.get_or_fill(&1, |_| 0, fill_ok(7)).unwrap();
        assert_eq!(*v, 7);
        panicker.join().unwrap();
        assert_eq!(cache.len(), 1);
    }
}
