//! The MESA system facade: preparation → selection-bias analysis → pruning →
//! MCIMR → responsibility → (optionally) unexplained subgroups, end to end.

use std::collections::HashMap;

use tabular::{AggregateQuery, DataFrame};

use kg::KnowledgeGraph;

use crate::error::Result;
use crate::mcimr::{mcimr, McimrConfig, McimrTrace};
use crate::missing::{
    analyze_candidates, fully_observed_columns, MissingPolicy, SelectionBiasInfo,
};
use crate::problem::{prepare_query, Explanation, PrepareConfig, PreparedQuery};
use crate::pruning::{prune, PruningConfig, PruningReport};
use crate::session::Session;
use crate::subgroups::{unexplained_subgroups, Subgroup, SubgroupConfig};

/// Full configuration of a MESA run.
#[derive(Debug, Clone, Copy)]
pub struct MesaConfig {
    /// Data preparation (binning, extraction hops).
    pub prepare: PrepareConfig,
    /// Pruning phases and thresholds.
    pub pruning: PruningConfig,
    /// MCIMR options (k, stopping rule).
    pub mcimr: McimrConfig,
    /// Missing-data policy.
    pub missing: MissingPolicy,
}

impl Default for MesaConfig {
    fn default() -> Self {
        MesaConfig {
            prepare: PrepareConfig::default(),
            pruning: PruningConfig::default(),
            mcimr: McimrConfig::default(),
            missing: MissingPolicy::Ipw,
        }
    }
}

impl MesaConfig {
    /// The MESA⁻ variant: identical to MESA but with pruning disabled.
    pub fn mesa_minus() -> Self {
        MesaConfig {
            pruning: PruningConfig::disabled(),
            ..Default::default()
        }
    }

    /// Sets the explanation-size bound `k`.
    pub fn with_k(mut self, k: usize) -> Self {
        self.mcimr.k = k;
        self
    }
}

/// The result of a full MESA run.
#[derive(Debug, Clone)]
pub struct MesaReport {
    /// The explanation (selected attributes, explainability, responsibilities).
    pub explanation: Explanation,
    /// The pruning report (what was dropped and why).
    pub pruning: PruningReport,
    /// Selection-bias analyses for attributes where bias was detected.
    pub selection_bias: HashMap<String, SelectionBiasInfo>,
    /// MCIMR run diagnostics.
    pub trace: McimrTrace,
    /// Number of candidate attributes before pruning.
    pub n_candidates: usize,
    /// Number of attributes extracted from the knowledge source.
    pub n_extracted: usize,
}

/// The MESA system.
///
/// ```
/// use mesa::Mesa;
/// use tabular::{AggregateQuery, DataFrameBuilder};
/// use kg::{KnowledgeGraph, Object};
///
/// // A tiny dataset where salary is driven by each country's GDP, which only
/// // exists in the knowledge graph.
/// let mut rows = (0..120).collect::<Vec<_>>();
/// let df = DataFrameBuilder::new()
///     .cat("Country", rows.iter().map(|i| Some(["DE", "IT", "NG", "KE"][i % 4])).collect())
///     .float("Salary", rows.iter().map(|i| Some(if i % 4 < 2 { 80.0 } else { 30.0 } + (i % 3) as f64)).collect())
///     .build().unwrap();
/// let mut g = KnowledgeGraph::new();
/// for (c, gdp) in [("DE", 50.0), ("IT", 50.0), ("NG", 6.0), ("KE", 6.0)] {
///     g.add_fact(c, "GDP per capita", Object::number(gdp));
/// }
/// rows.clear();
///
/// let mesa = Mesa::new();
/// let report = mesa
///     .explain(&df, &AggregateQuery::avg("Country", "Salary"), Some(&g), &["Country"])
///     .unwrap();
/// assert!(report.explanation.attributes.contains(&"GDP per capita".to_string()));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Mesa {
    config: MesaConfig,
}

impl Mesa {
    /// A MESA instance with the default configuration.
    pub fn new() -> Self {
        Mesa {
            config: MesaConfig::default(),
        }
    }

    /// A MESA instance with a custom configuration.
    pub fn with_config(config: MesaConfig) -> Self {
        Mesa { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MesaConfig {
        &self.config
    }

    /// Prepares a query (context, extraction, binning, encoding) without
    /// running the explanation search. Useful when several algorithms are run
    /// over the same prepared data (as the benchmark harness does).
    pub fn prepare(
        &self,
        df: &DataFrame,
        query: &AggregateQuery,
        graph: Option<&KnowledgeGraph>,
        extraction_columns: &[&str],
    ) -> Result<PreparedQuery> {
        prepare_query(df, query, graph, extraction_columns, self.config.prepare)
    }

    /// Runs the full pipeline on already-prepared data.
    pub fn explain_prepared(&self, prepared: &PreparedQuery) -> Result<MesaReport> {
        let n_candidates = prepared.candidates.len();
        // Pruning.
        let pruning = prune(
            &prepared.encoded,
            &prepared.candidates,
            prepared.exposure(),
            prepared.outcome(),
            &self.config.pruning,
        )?;
        // Selection-bias analysis on the surviving candidates.
        let features = fully_observed_columns(&prepared.frame);
        let selection_bias = analyze_candidates(
            &prepared.encoded,
            &pruning.kept,
            prepared.outcome(),
            prepared.exposure(),
            &features,
            self.config.missing,
            self.config.pruning.ci,
        )?;
        // MCIMR.
        let (explanation, trace) =
            mcimr(prepared, &pruning.kept, &selection_bias, self.config.mcimr)?;
        Ok(MesaReport {
            explanation,
            pruning,
            selection_bias,
            trace,
            n_candidates,
            n_extracted: prepared.extracted.len(),
        })
    }

    /// End-to-end explanation of a query over a dataset and a knowledge
    /// source.
    ///
    /// This is a thin wrapper over a transient [`Session`]: the same staged
    /// pipeline serves both the one-shot and the cached cross-query path,
    /// so there is nothing for the two to diverge on. When several queries
    /// hit the same dataset, construct the session once ([`Mesa::session`])
    /// and let it amortise extraction and preparation.
    pub fn explain(
        &self,
        df: &DataFrame,
        query: &AggregateQuery,
        graph: Option<&KnowledgeGraph>,
        extraction_columns: &[&str],
    ) -> Result<MesaReport> {
        let session = self.session(df, graph, extraction_columns);
        let report = session.explain(query)?;
        drop(session);
        // The session's memo held the only other handle; unwrap without a
        // copy now that it is gone.
        Ok(std::sync::Arc::try_unwrap(report).unwrap_or_else(|shared| (*shared).clone()))
    }

    /// A long-lived [`Session`] over one dataset, carrying this instance's
    /// configuration: caches KG extraction, prepared queries, and reports
    /// across queries, and batches independent queries with
    /// [`Session::explain_many`].
    pub fn session<'a>(
        &self,
        df: &'a DataFrame,
        graph: Option<&'a KnowledgeGraph>,
        extraction_columns: &[&str],
    ) -> Session<'a> {
        Session::new(df, graph, extraction_columns, self.config)
    }

    /// Finds the top-k unexplained data subgroups for an explanation
    /// (Algorithm 2).
    pub fn unexplained_subgroups(
        &self,
        prepared: &PreparedQuery,
        explanation: &Explanation,
        config: &SubgroupConfig,
    ) -> Result<Vec<Subgroup>> {
        unexplained_subgroups(prepared, &explanation.attributes, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg::Object;
    use tabular::DataFrameBuilder;

    /// Dataset: salary per country, confounded by GDP/Gini which only exist
    /// in the KG. The table itself holds a noisy `Gender` attribute and a
    /// `CountryCode` that is logically equivalent to the exposure.
    fn setup() -> (DataFrame, KnowledgeGraph) {
        let n = 480;
        let mut country = Vec::new();
        let mut code = Vec::new();
        let mut gender = Vec::new();
        let mut salary = Vec::new();
        // GDP takes only three levels across the six countries so that it is
        // informative about (but not logically equivalent to) the exposure.
        let gdp = [80.0, 80.0, 60.0, 25.0, 25.0, 20.0];
        let gini = [30.0, 45.0, 30.0, 45.0, 30.0, 45.0];
        for i in 0..n {
            let cid = i % 6;
            let c = ["DE", "FR", "IT", "NG", "KE", "EG"][cid];
            country.push(Some(c));
            code.push(Some(format!("code-{c}")));
            let male = (i / 6) % 2 == 0;
            gender.push(Some(if male { "M" } else { "W" }));
            let ineq = if gini[cid] > 40.0 { 8.0 } else { 0.0 };
            salary.push(Some(
                gdp[cid] - ineq + (i % 5) as f64 + if male { 4.0 } else { 0.0 },
            ));
        }
        let code_refs: Vec<Option<&str>> = code.iter().map(|c| c.as_deref()).collect();
        let df = DataFrameBuilder::new()
            .cat("Country", country)
            .cat("CountryCode", code_refs)
            .cat("Gender", gender)
            .float("Salary", salary)
            .build()
            .unwrap();
        let mut g = KnowledgeGraph::new();
        for (i, c) in ["DE", "FR", "IT", "NG", "KE", "EG"].iter().enumerate() {
            g.add_fact(*c, "GDP per capita", Object::number(gdp[i]));
            g.add_fact(*c, "Gini", Object::number(gini[i]));
            g.add_fact(*c, "wikiID", Object::integer(i as i64));
            g.add_fact(*c, "type", Object::text("Country"));
        }
        (df, g)
    }

    #[test]
    fn end_to_end_finds_kg_confounders() {
        let (df, g) = setup();
        let mesa = Mesa::new();
        let report = mesa
            .explain(
                &df,
                &AggregateQuery::avg("Country", "Salary"),
                Some(&g),
                &["Country"],
            )
            .unwrap();
        let attrs = &report.explanation.attributes;
        assert!(attrs.contains(&"GDP per capita".to_string()), "{attrs:?}");
        assert!(
            !attrs.contains(&"CountryCode".to_string()),
            "FD attribute must be pruned"
        );
        assert!(!attrs.contains(&"wikiID".to_string()));
        assert!(report.explanation.explainability < report.explanation.baseline_cmi * 0.6);
        assert!(report.n_extracted >= 2);
        assert!(report.n_candidates > 3);
        assert!(report.pruning.n_offline_dropped() + report.pruning.n_online_dropped() > 0);
    }

    #[test]
    fn without_graph_only_table_attributes_are_available() {
        let (df, _) = setup();
        let mesa = Mesa::new();
        let report = mesa
            .explain(&df, &AggregateQuery::avg("Country", "Salary"), None, &[])
            .unwrap();
        assert!(report.n_extracted == 0);
        // The table has no genuine confounder, so the explanation is weaker
        // than what the KG-powered run achieves.
        let (df2, g) = setup();
        let with_kg = mesa
            .explain(
                &df2,
                &AggregateQuery::avg("Country", "Salary"),
                Some(&g),
                &["Country"],
            )
            .unwrap();
        assert!(with_kg.explanation.explainability <= report.explanation.explainability + 1e-9);
    }

    #[test]
    fn mesa_minus_keeps_all_candidates() {
        let (df, g) = setup();
        let mesa = Mesa::with_config(MesaConfig::mesa_minus());
        let report = mesa
            .explain(
                &df,
                &AggregateQuery::avg("Country", "Salary"),
                Some(&g),
                &["Country"],
            )
            .unwrap();
        assert!(report.pruning.dropped.is_empty());
        // quality should not degrade much relative to MESA (paper's finding)
        let default_report = Mesa::new()
            .explain(
                &df,
                &AggregateQuery::avg("Country", "Salary"),
                Some(&g),
                &["Country"],
            )
            .unwrap();
        assert!(
            (report.explanation.explainability - default_report.explanation.explainability).abs()
                < 0.3
        );
    }

    #[test]
    fn with_k_controls_size() {
        let (df, g) = setup();
        let mesa = Mesa::with_config(MesaConfig::default().with_k(1));
        let report = mesa
            .explain(
                &df,
                &AggregateQuery::avg("Country", "Salary"),
                Some(&g),
                &["Country"],
            )
            .unwrap();
        assert!(report.explanation.len() <= 1);
    }

    #[test]
    fn prepare_then_explain_prepared_matches_explain() {
        let (df, g) = setup();
        let mesa = Mesa::new();
        let q = AggregateQuery::avg("Country", "Salary");
        let prepared = mesa.prepare(&df, &q, Some(&g), &["Country"]).unwrap();
        let a = mesa.explain_prepared(&prepared).unwrap();
        let b = mesa.explain(&df, &q, Some(&g), &["Country"]).unwrap();
        assert_eq!(a.explanation.attributes, b.explanation.attributes);
    }

    #[test]
    fn subgroup_entry_point_runs() {
        let (df, g) = setup();
        let mesa = Mesa::new();
        let q = AggregateQuery::avg("Country", "Salary");
        let prepared = mesa.prepare(&df, &q, Some(&g), &["Country"]).unwrap();
        let report = mesa.explain_prepared(&prepared).unwrap();
        let groups = mesa
            .unexplained_subgroups(
                &prepared,
                &report.explanation,
                &SubgroupConfig {
                    tau: 0.0,
                    min_group_size: 10,
                    ..Default::default()
                },
            )
            .unwrap();
        // with tau = 0 some refinement always scores above threshold unless
        // the explanation is perfect everywhere; either way the call succeeds
        let _ = groups;
    }
}
