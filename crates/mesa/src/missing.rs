//! Missing-data handling (Section 3.2): selection-bias detection and Inverse
//! Probability Weighting.
//!
//! Extracted attributes contain missing values (failed links, sparse KG). The
//! estimators in `infotheory` use complete-case analysis, which is unbiased
//! only when the recoverability conditions of Propositions 3.1/3.2 hold —
//! essentially, when missingness carries no information about the outcome (or
//! the partner attribute) once the observed variables are taken into account.
//!
//! For each candidate attribute `E` we therefore:
//!
//! 1. build its *selection indicator* `R_E` (1 = observed, 0 = missing);
//! 2. test whether `R_E` is independent of the outcome `O` and of the
//!    exposure `T` (given the context, which the prepared frame already
//!    encodes). If both independencies hold, complete cases are a
//!    representative sample and no correction is needed;
//! 3. otherwise fit a logistic regression `P(R_E = 1 | X)` on fully observed
//!    attributes of the input dataset and weight each complete case by
//!    `P(R_E = 1) / P(R_E = 1 | x_i)` — the IPW estimator the paper adopts.

use std::collections::HashMap;

use std::borrow::Cow;

use infotheory::{CiTestConfig, EncodedFrame};
use stats::{logistic_fit, logistic_fit_weighted, LogisticConfig};
use tabular::{Column, ColumnView, EncodedColumn};

use crate::error::{MesaError, Result};

/// How MESA treats missing values in candidate attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissingPolicy {
    /// Complete-case analysis with no correction.
    CompleteCase,
    /// Detect selection bias per attribute and re-weight complete cases
    /// (Inverse Probability Weighting) where it is detected. The paper's
    /// default.
    Ipw,
}

/// Result of the selection-bias analysis for one attribute.
#[derive(Debug, Clone)]
pub struct SelectionBiasInfo {
    /// The attribute name.
    pub attribute: String,
    /// Fraction of missing values.
    pub missing_fraction: f64,
    /// Whether selection bias was detected (missingness associated with the
    /// outcome or the exposure).
    pub biased: bool,
    /// IPW weights for every row (1.0 where no correction applies). `None`
    /// when no correction is needed or possible.
    pub weights: Option<Vec<f64>>,
}

/// Builds the selection indicator `R_E` for an attribute as an encoded
/// column: code 1 = observed, code 0 = missing. Accepts the column in either
/// lifecycle state (`&EncodedColumn` or [`ColumnView`]).
pub fn selection_indicator<'a>(column: impl Into<ColumnView<'a>>) -> EncodedColumn {
    let column = column.into();
    // The indicator is the validity bitmap re-expressed as codes; walking
    // set-bit runs word-by-word fills it in O(words + runs) instead of one
    // branch per row.
    let mut codes = vec![0u32; column.len()];
    for (start, end) in column.validity().iter_runs() {
        codes[start..end].fill(1);
    }
    EncodedColumn::from_codes(codes, vec!["missing".into(), "observed".into()])
}

/// Analyses one candidate attribute for selection bias and, when detected,
/// estimates IPW weights.
///
/// * `feature_columns` — fully observed attributes of the input dataset used
///   as predictors of the selection probability (their discrete codes are
///   used as numeric features, which is what "the values of the attributes in
///   D" amounts to after binning).
pub fn analyze_attribute(
    encoded: &EncodedFrame,
    attribute: &str,
    outcome: &str,
    exposure: &str,
    feature_columns: &[String],
    ci: CiTestConfig,
) -> Result<SelectionBiasInfo> {
    let col = encoded.column(attribute)?;
    let missing_fraction = encoded.missing_fraction(attribute)?;
    if missing_fraction <= 0.0 || missing_fraction >= 1.0 {
        return Ok(SelectionBiasInfo {
            attribute: attribute.to_string(),
            missing_fraction,
            biased: false,
            weights: None,
        });
    }
    let r = selection_indicator(col);
    // Independence of the selection indicator from outcome and exposure.
    let o = encoded.column(outcome)?;
    let t = encoded.column(exposure)?;
    let r_vs_o = infotheory::ci_test_views((&r).into(), o, &[], None, ci);
    let r_vs_t = infotheory::ci_test_views((&r).into(), t, &[], None, ci);
    let biased = !r_vs_o.independent || !r_vs_t.independent;
    if !biased {
        return Ok(SelectionBiasInfo {
            attribute: attribute.to_string(),
            missing_fraction,
            biased,
            weights: None,
        });
    }

    // Fit P(R_E = 1 | X) on fully observed features.
    let n = r.len();
    // The indicator is fully observed, so its raw codes are all meaningful.
    let y: Vec<f64> = r.codes().iter().map(|&c| f64::from(c)).collect();
    let mut features: Vec<(&str, ColumnView<'_>)> = Vec::new();
    for f in feature_columns {
        if f == attribute {
            continue;
        }
        let fc = encoded.column(f)?;
        if fc.null_count() > 0 {
            continue; // only fully observed features are usable
        }
        if fc.cardinality() <= 1 {
            continue;
        }
        features.push((f.as_str(), fc));
        if features.len() >= 6 {
            break; // keep the model small; it only supplies weights
        }
    }
    let marginal = y.iter().sum::<f64>() / n as f64;
    // Materialise each feature's codes once: for sealed columns `codes()`
    // decodes into an owned buffer, which must not happen inside the row loop.
    let feature_codes: Vec<Cow<'_, [u32]>> = features.iter().map(|(_, c)| c.codes()).collect();

    // The features are discrete codes with small cardinalities, so rows with
    // the same feature combination are interchangeable for the fit. Group
    // them by mixed-radix code packing (the entropy kernel's trick) and run
    // IRLS over the distinct combinations with binomial weights — same
    // optimum, orders of magnitude fewer rows.
    let dense_cap = infotheory::adaptive_dense_cells(n);
    let cells = features.iter().try_fold(1usize, |acc, (_, c)| {
        let next = acc.checked_mul(c.cardinality())?;
        (next <= dense_cap).then_some(next)
    });
    let weights = match cells {
        Some(cells) => {
            let mut combo_of = Vec::with_capacity(n);
            let mut tallies = vec![(0.0f64, 0.0f64); cells]; // (rows, observed)
            for (i, &yi) in y.iter().enumerate() {
                let mut idx = 0usize;
                let mut mult = 1usize;
                for ((_, c), codes) in features.iter().zip(&feature_codes) {
                    idx += codes[i] as usize * mult;
                    mult *= c.cardinality();
                }
                combo_of.push(idx);
                tallies[idx].0 += 1.0;
                tallies[idx].1 += yi;
            }
            let mut grouped_combos = Vec::new();
            let mut gy = Vec::new();
            let mut gw = Vec::new();
            let mut gpred: Vec<(String, Vec<f64>)> = features
                .iter()
                .map(|(name, _)| (name.to_string(), Vec::new()))
                .collect();
            for (idx, &(count, observed)) in tallies.iter().enumerate() {
                if count == 0.0 {
                    continue;
                }
                grouped_combos.push(idx);
                gy.push(observed / count);
                gw.push(count);
                let mut rest = idx;
                for ((_, c), (_, vals)) in features.iter().zip(gpred.iter_mut()) {
                    vals.push((rest % c.cardinality()) as f64);
                    rest /= c.cardinality();
                }
            }
            match logistic_fit_weighted(&gy, &gpred, Some(&gw), LogisticConfig::default()) {
                Ok(model) => {
                    // Selection probability per combination, then one lookup
                    // per row. Weights only matter for complete cases;
                    // incomplete rows are dropped by the estimators
                    // regardless of their weight.
                    let mut p_of = vec![1.0f64; cells];
                    for (gi, &idx) in grouped_combos.iter().enumerate() {
                        let feats: Vec<f64> = gpred.iter().map(|(_, v)| v[gi]).collect();
                        p_of[idx] = model.predict_proba(&feats).clamp(0.05, 1.0);
                    }
                    let w = (0..n)
                        .map(|i| {
                            if y[i] > 0.5 {
                                marginal / p_of[combo_of[i]]
                            } else {
                                1.0
                            }
                        })
                        .collect();
                    Some(w)
                }
                Err(_) => None,
            }
        }
        // Pathological cross product: fall back to the row-level fit.
        None => {
            let predictors: Vec<(String, Vec<f64>)> = features
                .iter()
                .zip(&feature_codes)
                .map(|((name, _), codes)| {
                    (name.to_string(), codes.iter().map(|&v| v as f64).collect())
                })
                .collect();
            match logistic_fit(&y, &predictors, LogisticConfig::default()) {
                Ok(model) => {
                    let mut w = Vec::with_capacity(n);
                    for i in 0..n {
                        let feats: Vec<f64> = predictors.iter().map(|(_, v)| v[i]).collect();
                        let p = model.predict_proba(&feats).clamp(0.05, 1.0);
                        w.push(if y[i] > 0.5 { marginal / p } else { 1.0 });
                    }
                    Some(w)
                }
                Err(_) => None,
            }
        }
    };
    Ok(SelectionBiasInfo {
        attribute: attribute.to_string(),
        missing_fraction,
        biased,
        weights,
    })
}

/// Selection-bias analysis for a whole candidate set. Returns a map from
/// attribute name to its analysis, including weights where needed.
pub fn analyze_candidates(
    encoded: &EncodedFrame,
    candidates: &[String],
    outcome: &str,
    exposure: &str,
    feature_columns: &[String],
    policy: MissingPolicy,
    ci: CiTestConfig,
) -> Result<HashMap<String, SelectionBiasInfo>> {
    let mut out = HashMap::with_capacity(candidates.len());
    if policy == MissingPolicy::CompleteCase {
        return Ok(out);
    }
    // Each attribute's analysis is independent read-only work over the
    // encoded frame — fan it out over the persistent pool (adaptive grain:
    // attributes with expensive IPW fits don't strand the cheap ones).
    let analyses = crate::parallel::parallel_map(candidates, |_, c| {
        analyze_attribute(encoded, c, outcome, exposure, feature_columns, ci)
    });
    for (c, info) in candidates.iter().zip(analyses) {
        let info = info?;
        if info.biased {
            out.insert(c.clone(), info);
        }
    }
    Ok(out)
}

/// Combines the IPW weights of several attributes into a single per-row
/// weight vector (element-wise product), used when scoring a multi-attribute
/// explanation. Returns `None` when no attribute carries weights.
pub fn combine_weights(
    attributes: &[String],
    analyses: &HashMap<String, SelectionBiasInfo>,
    n_rows: usize,
) -> Option<Vec<f64>> {
    let mut combined: Option<Vec<f64>> = None;
    for a in attributes {
        if let Some(info) = analyses.get(a) {
            if let Some(w) = &info.weights {
                let acc = combined.get_or_insert_with(|| vec![1.0; n_rows]);
                for (c, &wi) in acc.iter_mut().zip(w) {
                    *c *= wi;
                }
            }
        }
    }
    combined
}

/// Mean-imputes every candidate attribute of a frame (the imputation baseline
/// of Figure 3). Returns a new frame.
pub fn impute_candidates(
    frame: &tabular::DataFrame,
    candidates: &[String],
) -> Result<tabular::DataFrame> {
    let mut out = frame.clone();
    for c in candidates {
        out = kg::impute_mean(&out, c).map_err(MesaError::from)?;
    }
    Ok(out)
}

/// Helper: the column names of a frame that have no missing values (the
/// feature pool for the selection-probability model).
pub fn fully_observed_columns(frame: &tabular::DataFrame) -> Vec<String> {
    frame
        .columns()
        .filter(|c| c.null_count() == 0)
        .map(|c: &Column| c.name().to_string())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::DataFrameBuilder;

    /// Frame where the `hdi` attribute is missing exactly for high-salary
    /// rows — blatant selection bias.
    fn biased_frame() -> tabular::DataFrame {
        let n = 240;
        let mut country = Vec::new();
        let mut salary = Vec::new();
        let mut hdi = Vec::new();
        let mut mar = Vec::new();
        for i in 0..n {
            let c = ["DE", "IT", "NG", "KE"][i % 4];
            let high = i % 4 < 2;
            country.push(Some(c));
            salary.push(Some(if high { "high" } else { "low" }));
            // hdi observed mostly for low-salary countries
            hdi.push(if high && i % 3 != 0 {
                None
            } else {
                Some(if high { "big" } else { "small" })
            });
            // missing-at-random attribute
            mar.push(if i % 5 == 0 {
                None
            } else {
                Some(if i % 2 == 0 { "x" } else { "y" })
            });
        }
        DataFrameBuilder::new()
            .cat("Country", country)
            .cat("Salary", salary)
            .cat("HDI", hdi)
            .cat("MAR", mar)
            .build()
            .unwrap()
    }

    #[test]
    fn selection_indicator_is_binary() {
        let col = tabular::Column::from_str_values("x", vec![Some("a"), None, Some("b")]).encode();
        let r = selection_indicator(&col);
        assert_eq!(
            r.iter_codes().collect::<Vec<_>>(),
            vec![Some(1), Some(0), Some(1)]
        );
        assert_eq!(r.cardinality(), 2);
    }

    #[test]
    fn detects_bias_only_where_present() {
        let df = biased_frame();
        let encoded = EncodedFrame::from_frame(&df);
        let features = fully_observed_columns(&df);
        let biased = analyze_attribute(
            &encoded,
            "HDI",
            "Salary",
            "Country",
            &features,
            CiTestConfig::default(),
        )
        .unwrap();
        assert!(biased.biased, "HDI missingness depends on salary");
        assert!(biased.missing_fraction > 0.2);
        assert!(biased.weights.is_some());
        let w = biased.weights.unwrap();
        assert_eq!(w.len(), df.n_rows());
        assert!(w.iter().all(|&x| x.is_finite() && x > 0.0));
        // complete cases in the under-represented (high-salary) group get up-weighted
        assert!(w.iter().any(|&x| x > 1.01));

        let mar = analyze_attribute(
            &encoded,
            "MAR",
            "Salary",
            "Country",
            &features,
            CiTestConfig::default(),
        )
        .unwrap();
        assert!(
            !mar.biased,
            "MAR attribute should not trigger the correction"
        );
        assert!(mar.weights.is_none());
    }

    #[test]
    fn fully_observed_attribute_is_unbiased() {
        let df = biased_frame();
        let encoded = EncodedFrame::from_frame(&df);
        let info = analyze_attribute(
            &encoded,
            "Country",
            "Salary",
            "Country",
            &[],
            CiTestConfig::default(),
        )
        .unwrap();
        assert_eq!(info.missing_fraction, 0.0);
        assert!(!info.biased);
    }

    #[test]
    fn analyze_candidates_respects_policy() {
        let df = biased_frame();
        let encoded = EncodedFrame::from_frame(&df);
        let features = fully_observed_columns(&df);
        let candidates = vec!["HDI".to_string(), "MAR".to_string()];
        let none = analyze_candidates(
            &encoded,
            &candidates,
            "Salary",
            "Country",
            &features,
            MissingPolicy::CompleteCase,
            CiTestConfig::default(),
        )
        .unwrap();
        assert!(none.is_empty());
        let ipw = analyze_candidates(
            &encoded,
            &candidates,
            "Salary",
            "Country",
            &features,
            MissingPolicy::Ipw,
            CiTestConfig::default(),
        )
        .unwrap();
        assert!(ipw.contains_key("HDI"));
        assert!(!ipw.contains_key("MAR"));
    }

    #[test]
    fn weight_combination() {
        let mut analyses = HashMap::new();
        analyses.insert(
            "a".to_string(),
            SelectionBiasInfo {
                attribute: "a".into(),
                missing_fraction: 0.1,
                biased: true,
                weights: Some(vec![2.0, 1.0, 1.0]),
            },
        );
        analyses.insert(
            "b".to_string(),
            SelectionBiasInfo {
                attribute: "b".into(),
                missing_fraction: 0.1,
                biased: true,
                weights: Some(vec![1.0, 3.0, 1.0]),
            },
        );
        let combined = combine_weights(&["a".to_string(), "b".to_string()], &analyses, 3).unwrap();
        assert_eq!(combined, vec![2.0, 3.0, 1.0]);
        assert!(combine_weights(&["c".to_string()], &analyses, 3).is_none());
        assert!(combine_weights(&[], &analyses, 3).is_none());
    }

    #[test]
    fn ipw_corrects_complete_case_bias() {
        // Ground truth: HDI ("big"/"small") fully explains Salary given Country.
        // Biased missingness makes the naive complete-case CMI estimate of
        // I(Salary; Country | HDI) deviate; IPW should move it back towards
        // the unbiased (fully observed) value.
        let df = biased_frame();
        let encoded = EncodedFrame::from_frame(&df);
        let features = fully_observed_columns(&df);
        let info = analyze_attribute(
            &encoded,
            "HDI",
            "Salary",
            "Country",
            &features,
            CiTestConfig::default(),
        )
        .unwrap();
        let w = info.weights.unwrap();
        let naive = encoded.cmi("Salary", "Country", &["HDI"], None).unwrap();
        let weighted = encoded
            .cmi("Salary", "Country", &["HDI"], Some(&w))
            .unwrap();
        // both should be small (HDI explains most of it), and the weighted
        // estimate must stay finite and non-negative
        assert!(naive >= 0.0 && weighted >= 0.0);
        assert!(weighted.is_finite());
    }

    #[test]
    fn impute_candidates_fills_all() {
        let df = biased_frame();
        let out = impute_candidates(&df, &["HDI".to_string(), "MAR".to_string()]).unwrap();
        assert_eq!(out.column("HDI").unwrap().null_count(), 0);
        assert_eq!(out.column("MAR").unwrap().null_count(), 0);
    }

    #[test]
    fn fully_observed_columns_lists_complete_ones() {
        let df = biased_frame();
        let cols = fully_observed_columns(&df);
        assert!(cols.contains(&"Country".to_string()));
        assert!(cols.contains(&"Salary".to_string()));
        assert!(!cols.contains(&"HDI".to_string()));
    }
}
