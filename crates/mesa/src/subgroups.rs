//! Identifying unexplained data subgroups (Section 4.3, Algorithm 2).
//!
//! Given a query and its explanation `E`, find the top-k *largest* context
//! refinements `C'` of the query context whose explanation score
//! `I(O; T | C', E)` exceeds a threshold `τ` — the parts of the data where the
//! analyst needs a different explanation.
//!
//! Refinements are conjunctions of attribute = value terms over discrete
//! attributes. The refinement lattice is traversed top-down with a max-heap
//! ordered by group size, so large groups are examined first and a group is
//! only reported when none of its ancestors already is.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use infotheory::EncodedFrame;
use tabular::{DataFrame, Predicate, Value};

use crate::error::Result;
use crate::problem::PreparedQuery;

/// Configuration of the unexplained-subgroup search.
#[derive(Debug, Clone, PartialEq)]
pub struct SubgroupConfig {
    /// Number of groups to return.
    pub top_k: usize,
    /// Explanation-score threshold `τ`: groups scoring above it are reported.
    pub tau: f64,
    /// Attributes eligible for refinement. Empty = every candidate attribute
    /// of the prepared query plus the context attributes.
    pub refine_on: Vec<String>,
    /// Minimum group size considered (tiny groups give meaningless CMI
    /// estimates).
    pub min_group_size: usize,
    /// Maximum refinement depth (number of conjuncts added to the context).
    pub max_depth: usize,
}

impl Default for SubgroupConfig {
    fn default() -> Self {
        SubgroupConfig {
            top_k: 5,
            tau: 0.2,
            refine_on: Vec::new(),
            min_group_size: 20,
            max_depth: 2,
        }
    }
}

/// One unexplained subgroup.
#[derive(Debug, Clone, PartialEq)]
pub struct Subgroup {
    /// The refinement terms added to the query context.
    pub terms: Vec<(String, Value)>,
    /// Number of rows in the group.
    pub size: usize,
    /// The explanation score `I(O; T | C', E)` of the group.
    pub score: f64,
}

impl Subgroup {
    /// SQL-ish rendering of the refinement.
    pub fn describe(&self) -> String {
        Predicate::conjunction(&self.terms).describe()
    }

    /// Whether `other`'s refinement terms are a superset of this group's —
    /// i.e. this group is an ancestor of `other` in the lattice.
    pub fn is_ancestor_of(&self, other: &Subgroup) -> bool {
        self.terms.iter().all(|t| other.terms.contains(t))
    }
}

/// A heap entry ordered by group size; exact size ties pop in generation
/// order (`seq`), which is deterministic — partitioning below emits values in
/// first-appearance order, never in hash-map order, so the reported ranking
/// of equally-sized, equally-scored groups is bit-stable across runs.
#[derive(Debug, Clone)]
struct HeapEntry {
    terms: Vec<(String, Value)>,
    rows: Vec<usize>,
    seq: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.rows
            .len()
            .cmp(&other.rows.len())
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Generates the children of a refinement: one new equality term per eligible
/// attribute/value, restricted to the rows of the parent. Children are
/// emitted in attribute order, then value first-appearance order, each tagged
/// with the next sequence number from `next_seq`.
fn gen_children(
    frame: &DataFrame,
    parent_rows: &[usize],
    parent_terms: &[(String, Value)],
    refine_on: &[String],
    min_size: usize,
    next_seq: &mut usize,
) -> Result<Vec<HeapEntry>> {
    let mut children = Vec::new();
    for attr in refine_on {
        if parent_terms.iter().any(|(a, _)| a == attr) {
            continue;
        }
        let col = frame.column(attr)?;
        // Partition parent rows by value of `attr`, keeping the partitions in
        // first-appearance order (the index map is only a lookup aid).
        let mut index: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
        let mut partitions: Vec<(Value, Vec<usize>)> = Vec::new();
        for &row in parent_rows {
            let v = col.get(row)?;
            if v.is_null() {
                continue;
            }
            let slot = *index.entry(v.render()).or_insert_with(|| {
                partitions.push((v.clone(), Vec::new()));
                partitions.len() - 1
            });
            partitions[slot].1.push(row);
        }
        for (value, rows) in partitions {
            if rows.len() < min_size || rows.len() == parent_rows.len() {
                continue;
            }
            let mut terms = parent_terms.to_vec();
            terms.push((attr.clone(), value));
            let seq = *next_seq;
            *next_seq += 1;
            children.push(HeapEntry { terms, rows, seq });
        }
    }
    Ok(children)
}

/// Computes the explanation score `I(O; T | E)` restricted to a set of rows.
fn group_score(
    frame: &DataFrame,
    rows: &[usize],
    outcome: &str,
    exposure: &str,
    explanation: &[String],
) -> Result<f64> {
    let sub = frame.take(rows);
    let mut names: Vec<&str> = vec![outcome, exposure];
    names.extend(explanation.iter().map(|s| s.as_str()));
    let encoded = EncodedFrame::from_frame_columns(&sub, &names)?;
    let z: Vec<&str> = explanation.iter().map(|s| s.as_str()).collect();
    Ok(encoded.cmi(outcome, exposure, &z, None)?)
}

/// Algorithm 2: the top-k largest context refinements whose explanation score
/// exceeds `τ`.
pub fn unexplained_subgroups(
    prepared: &PreparedQuery,
    explanation: &[String],
    config: &SubgroupConfig,
) -> Result<Vec<Subgroup>> {
    let frame = &prepared.frame;
    let outcome = prepared.outcome();
    let exposure = prepared.exposure();
    // Eligible refinement attributes: caller-specified, or every candidate
    // that is not part of the explanation and is reasonably low-cardinality.
    let refine_on: Vec<String> = if config.refine_on.is_empty() {
        prepared
            .candidates
            .iter()
            .filter(|c| !explanation.contains(c))
            .filter(|c| {
                prepared
                    .encoded
                    .cardinality(c)
                    .map(|card| (2..=40).contains(&card))
                    .unwrap_or(false)
            })
            .cloned()
            .collect()
    } else {
        config.refine_on.clone()
    };

    let all_rows: Vec<usize> = (0..frame.n_rows()).collect();
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
    let mut next_seq = 0usize;
    for child in gen_children(
        frame,
        &all_rows,
        &[],
        &refine_on,
        config.min_group_size,
        &mut next_seq,
    )? {
        heap.push(child);
    }

    let mut results: Vec<Subgroup> = Vec::new();
    while let Some(entry) = heap.pop() {
        if results.len() >= config.top_k {
            break;
        }
        let score = group_score(frame, &entry.rows, outcome, exposure, explanation)?;
        let group = Subgroup {
            terms: entry.terms.clone(),
            size: entry.rows.len(),
            score,
        };
        if score > config.tau {
            // Only report when no ancestor is already reported.
            if !results.iter().any(|r| r.is_ancestor_of(&group)) {
                results.push(group);
            }
        } else if entry.terms.len() < config.max_depth {
            for child in gen_children(
                frame,
                &entry.rows,
                &entry.terms,
                &refine_on,
                config.min_group_size,
                &mut next_seq,
            )? {
                heap.push(child);
            }
        }
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{prepare_query, PrepareConfig};
    use tabular::{AggregateQuery, DataFrameBuilder};

    /// World: salary is explained by `HDI` globally, but inside Europe all
    /// HDIs are equal so the explanation fails there and `Gini` would be
    /// needed instead.
    fn prepared() -> PreparedQuery {
        let n = 600;
        let mut country = Vec::new();
        let mut continent = Vec::new();
        let mut hdi = Vec::new();
        let mut gini = Vec::new();
        let mut salary = Vec::new();
        for i in 0..n {
            let cid = i % 6;
            let c = ["DE", "FR", "IT", "NG", "KE", "EG"][cid];
            let eu = cid < 3;
            continent.push(Some(if eu { "Europe" } else { "Africa" }));
            country.push(Some(c));
            // Europe: all very-high HDI (so HDI cannot explain the European
            // spread); Africa: one HDI level per country (fully explained).
            let h = if eu {
                "very high"
            } else {
                ["mid", "low", "very low"][cid - 3]
            };
            hdi.push(Some(h));
            // Gini varies inside Europe and drives the salary spread there
            let g = ["low", "mid", "high", "mid", "mid", "high"][cid];
            gini.push(Some(g));
            let base = if eu {
                70.0
            } else {
                [40.0, 25.0, 24.0][cid - 3]
            };
            let gini_penalty = match g {
                "high" => 18.0,
                "mid" => 9.0,
                _ => 0.0,
            };
            salary.push(Some(base - gini_penalty + (i % 3) as f64));
        }
        let df = DataFrameBuilder::new()
            .cat("Country", country)
            .cat("Continent", continent)
            .cat("HDI", hdi)
            .cat("Gini", gini)
            .float("Salary", salary)
            .build()
            .unwrap();
        prepare_query(
            &df,
            &AggregateQuery::avg("Country", "Salary"),
            None,
            &[],
            PrepareConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn finds_europe_as_unexplained_for_hdi_explanation() {
        let p = prepared();
        let config = SubgroupConfig {
            refine_on: vec!["Continent".to_string()],
            tau: 0.15,
            ..Default::default()
        };
        let groups = unexplained_subgroups(&p, &["HDI".to_string()], &config).unwrap();
        assert!(
            !groups.is_empty(),
            "Europe should be reported as unexplained"
        );
        let top = &groups[0];
        assert_eq!(top.terms.len(), 1);
        assert_eq!(top.terms[0].0, "Continent");
        assert_eq!(top.terms[0].1.render(), "Europe");
        assert!(top.score > 0.15);
        assert!(top.describe().contains("Continent = Europe"));
    }

    #[test]
    fn good_explanation_leaves_no_groups() {
        let p = prepared();
        let config = SubgroupConfig {
            refine_on: vec!["Continent".to_string()],
            tau: 0.3,
            max_depth: 1,
            ..Default::default()
        };
        // HDI + Gini together explain both continents
        let groups =
            unexplained_subgroups(&p, &["HDI".to_string(), "Gini".to_string()], &config).unwrap();
        assert!(groups.is_empty(), "{groups:?}");
    }

    #[test]
    fn respects_top_k_and_ordering_by_size() {
        let p = prepared();
        let config = SubgroupConfig {
            refine_on: vec!["Continent".to_string(), "Gini".to_string()],
            tau: 0.05,
            top_k: 2,
            ..Default::default()
        };
        let groups = unexplained_subgroups(&p, &["HDI".to_string()], &config).unwrap();
        assert!(groups.len() <= 2);
        for w in groups.windows(2) {
            assert!(w[0].size >= w[1].size, "groups must be ordered by size");
        }
    }

    #[test]
    fn min_group_size_filters_tiny_groups() {
        let p = prepared();
        let config = SubgroupConfig {
            refine_on: vec!["Continent".to_string()],
            tau: 0.0,
            min_group_size: 10_000,
            ..Default::default()
        };
        let groups = unexplained_subgroups(&p, &["HDI".to_string()], &config).unwrap();
        assert!(groups.is_empty());
    }

    #[test]
    fn ancestor_relation() {
        let a = Subgroup {
            terms: vec![("x".into(), Value::Int(1))],
            size: 10,
            score: 0.5,
        };
        let b = Subgroup {
            terms: vec![("x".into(), Value::Int(1)), ("y".into(), Value::Int(2))],
            size: 5,
            score: 0.6,
        };
        assert!(a.is_ancestor_of(&b));
        assert!(!b.is_ancestor_of(&a));
    }

    #[test]
    fn default_refinement_attributes_exclude_explanation() {
        let p = prepared();
        let config = SubgroupConfig {
            tau: 10.0,
            ..Default::default()
        };
        // tau so high nothing is reported; we just check it runs over the
        // default refinement attributes without error
        let groups = unexplained_subgroups(&p, &["HDI".to_string()], &config).unwrap();
        assert!(groups.is_empty());
    }
}
