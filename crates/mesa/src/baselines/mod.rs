//! Baseline explanation algorithms the paper compares MESA against
//! (Section 5, "Baseline Algorithms").

pub mod brute_force;
pub mod hypdb;
pub mod linreg;
pub mod topk;

pub use brute_force::brute_force;
pub use hypdb::{hypdb, HypDbConfig};
pub use linreg::linear_regression;
pub use topk::top_k;
