//! The Brute-Force baseline: the optimal solution to Definition 2.1 by
//! exhaustive search over all attribute subsets up to size `k`.
//!
//! Exponential in the number of candidates; the paper only runs it on the
//! small Covid-19 and Forbes datasets and always after pruning. It serves as
//! the gold standard for explainability scores (Figure 2).

use crate::error::Result;
use crate::problem::{Explanation, PreparedQuery};
use crate::responsibility::responsibilities;

/// A name-sorted copy of a subset, the tie-break key for exactly-equal
/// objectives (subsets are enumerated in candidate order, so comparing them
/// unsorted would leak the enumeration order back into the tie-break).
fn sorted(subset: &[String]) -> Vec<&str> {
    let mut names: Vec<&str> = subset.iter().map(String::as_str).collect();
    names.sort_unstable();
    names
}

/// Exhaustively searches all subsets of `candidates` with `1 ≤ |E| ≤ k` and
/// returns the one minimising the Definition 2.1 objective
/// `I(O;T|E,C) · |E|`.
pub fn brute_force(
    prepared: &PreparedQuery,
    candidates: &[String],
    k: usize,
) -> Result<Explanation> {
    let baseline = prepared.baseline_cmi();
    if candidates.is_empty() || k == 0 {
        return Ok(Explanation::empty(baseline));
    }
    let n = candidates.len();
    let k = k.min(n);
    let mut best: Option<(Vec<String>, f64, f64)> = None; // (set, objective, cmi)

    // Iterate subsets by bitmask; skip subsets larger than k. For the sizes
    // the paper uses this after pruning (tens of candidates at most on the
    // small datasets), this is tractable.
    let max_mask: u64 = 1u64 << n.min(20);
    for mask in 1..max_mask {
        let size = mask.count_ones() as usize;
        if size > k {
            continue;
        }
        let subset: Vec<String> = (0..n.min(20))
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| candidates[i].clone())
            .collect();
        let cmi = prepared.explanation_cmi(&subset, None)?;
        let objective = cmi * size as f64;
        // Exact objective ties are broken by the candidate names (smaller
        // name-sorted subset wins) so the reported optimum does not depend
        // on enumeration order.
        let wins = match &best {
            None => true,
            Some((best_subset, b, _)) => {
                objective < *b || (objective == *b && sorted(&subset) < sorted(best_subset))
            }
        };
        if wins {
            best = Some((subset, objective, cmi));
        }
    }

    let (attributes, _, explainability) = best.expect("at least one subset evaluated");
    let resp = responsibilities(prepared, &attributes, None)?;
    Ok(Explanation {
        attributes,
        baseline_cmi: baseline,
        explainability,
        responsibilities: resp,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{prepare_query, PrepareConfig};
    use tabular::{AggregateQuery, DataFrameBuilder};

    fn prepared() -> PreparedQuery {
        let n = 240;
        let mut country = Vec::new();
        let mut gdp = Vec::new();
        let mut gini = Vec::new();
        let mut noise = Vec::new();
        let mut salary = Vec::new();
        for i in 0..n {
            let cid = i % 4;
            country.push(Some(["A", "B", "C", "D"][cid]));
            gdp.push(Some(["hi", "hi", "lo", "lo"][cid]));
            gini.push(Some(["eq", "uneq", "eq", "uneq"][cid]));
            noise.push(Some(if (i * 7) % 3 == 0 { "x" } else { "y" }));
            let s = (if cid < 2 { 80.0 } else { 30.0 }) - (if cid % 2 == 1 { 15.0 } else { 0.0 });
            salary.push(Some(s));
        }
        let df = DataFrameBuilder::new()
            .cat("Country", country)
            .cat("GDP", gdp)
            .cat("Gini", gini)
            .cat("Noise", noise)
            .float("Salary", salary)
            .build()
            .unwrap();
        prepare_query(
            &df,
            &AggregateQuery::avg("Country", "Salary"),
            None,
            &[],
            PrepareConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn finds_the_optimal_subset() {
        let p = prepared();
        let cands: Vec<String> = ["GDP", "Gini", "Noise"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let e = brute_force(&p, &cands, 3).unwrap();
        // GDP + Gini fully determine salary, so they explain everything and
        // adding Noise only increases the |E| factor.
        let mut sorted = e.attributes.clone();
        sorted.sort();
        assert_eq!(sorted, vec!["GDP".to_string(), "Gini".to_string()]);
        assert!(e.explainability < 0.05);
    }

    #[test]
    fn objective_is_globally_minimal() {
        let p = prepared();
        let cands: Vec<String> = ["GDP", "Gini", "Noise"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let e = brute_force(&p, &cands, 3).unwrap();
        let best_objective = p.objective(&e.attributes).unwrap();
        // compare against every singleton and pair explicitly
        for a in &cands {
            assert!(p.objective(std::slice::from_ref(a)).unwrap() >= best_objective - 1e-9);
            for b in &cands {
                if a != b {
                    assert!(p.objective(&[a.clone(), b.clone()]).unwrap() >= best_objective - 1e-9);
                }
            }
        }
    }

    #[test]
    fn k_limits_subset_size() {
        let p = prepared();
        let cands: Vec<String> = ["GDP", "Gini", "Noise"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let e = brute_force(&p, &cands, 1).unwrap();
        assert_eq!(e.len(), 1);
        assert_eq!(e.attributes[0], "GDP");
    }

    #[test]
    fn empty_candidates() {
        let p = prepared();
        let e = brute_force(&p, &[], 3).unwrap();
        assert!(e.is_empty());
        let e = brute_force(&p, &["GDP".to_string()], 0).unwrap();
        assert!(e.is_empty());
    }
}
