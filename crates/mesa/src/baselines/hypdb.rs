//! The HypDB baseline (reference \[63\] of the paper): confounder detection by
//! causal analysis over the *input dataset only*.
//!
//! HypDB searches for covariates that are associated with both the exposure
//! and the outcome (the classic confounder criterion) using conditional
//! independence tests, then ranks them by responsibility. Two properties of
//! the original system are reproduced because the paper's comparison depends
//! on them:
//!
//! * it never sees attributes extracted from external sources — only columns
//!   of the input table are candidates;
//! * its search is exponential in the number of candidates (it evaluates
//!   subsets, not just individuals), so the attribute set must be capped
//!   (the paper caps it at 50 after random subsampling) to keep running times
//!   feasible.

use infotheory::CiTestConfig;

use crate::error::Result;
use crate::problem::{Explanation, PreparedQuery};
use crate::responsibility::responsibilities;

/// Configuration of the HypDB baseline.
#[derive(Debug, Clone, Copy)]
pub struct HypDbConfig {
    /// Number of attributes reported.
    pub k: usize,
    /// Cap on the number of candidate attributes considered (the paper uses
    /// 50; anything above the cap is truncated in input order).
    pub max_candidates: usize,
    /// Maximum subset size enumerated during the covariate search. The
    /// exponential enumeration is what makes HypDB slow on wide tables.
    pub max_subset_size: usize,
    /// CI-test configuration.
    pub ci: CiTestConfig,
}

impl Default for HypDbConfig {
    fn default() -> Self {
        HypDbConfig {
            k: 3,
            max_candidates: 50,
            max_subset_size: 2,
            ci: CiTestConfig::default(),
        }
    }
}

/// Runs the HypDB-style baseline.
///
/// `candidates` should already be restricted to input-table attributes (the
/// caller — `bench::run_method` — takes care of
/// excluding extracted attributes).
pub fn hypdb(
    prepared: &PreparedQuery,
    candidates: &[String],
    config: HypDbConfig,
) -> Result<Explanation> {
    let baseline = prepared.baseline_cmi();
    let candidates: Vec<String> = candidates
        .iter()
        .take(config.max_candidates)
        .cloned()
        .collect();
    if candidates.is_empty() || config.k == 0 {
        return Ok(Explanation::empty(baseline));
    }
    let outcome = prepared.outcome();
    let exposure = prepared.exposure();

    // Step 1: covariate detection — keep attributes associated with both T
    // and O (marginally or conditionally on the other).
    let mut covariates: Vec<String> = Vec::new();
    for c in &candidates {
        let with_t = prepared
            .encoded
            .ci_test(exposure, c, &[], None, config.ci)?;
        let with_o = prepared
            .encoded
            .ci_test(outcome, c, &[exposure], None, config.ci)?;
        if !with_t.independent && !with_o.independent {
            covariates.push(c.clone());
        }
    }
    if covariates.is_empty() {
        return Ok(Explanation::empty(baseline));
    }

    // Step 2: exhaustive subset scoring up to `max_subset_size` — this is the
    // exponential part. The best subset seeds the ranking; attributes are then
    // ranked by their individual CMI reduction (responsibility-style score).
    let n = covariates.len().min(20);
    let mut best_subset: Vec<String> = Vec::new();
    let mut best_score = f64::INFINITY;
    let max_mask: u64 = 1 << n;
    for mask in 1u64..max_mask {
        let size = mask.count_ones() as usize;
        if size > config.max_subset_size {
            continue;
        }
        let subset: Vec<String> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| covariates[i].clone())
            .collect();
        let cmi = prepared.explanation_cmi(&subset, None)?;
        if cmi < best_score {
            best_score = cmi;
            best_subset = subset;
        }
    }

    // Step 3: rank remaining covariates by individual reduction and fill up
    // to k attributes.
    let mut ranked: Vec<(String, f64)> = Vec::new();
    for c in &covariates {
        if best_subset.contains(c) {
            continue;
        }
        let cmi = prepared.explanation_cmi(std::slice::from_ref(c), None)?;
        ranked.push((c.clone(), baseline - cmi));
    }
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut attributes = best_subset;
    for (c, _) in ranked {
        if attributes.len() >= config.k {
            break;
        }
        attributes.push(c);
    }
    attributes.truncate(config.k);

    let explainability = prepared.explanation_cmi(&attributes, None)?;
    let resp = responsibilities(prepared, &attributes, None)?;
    Ok(Explanation {
        attributes,
        baseline_cmi: baseline,
        explainability,
        responsibilities: resp,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{prepare_query, PrepareConfig};
    use tabular::{AggregateQuery, DataFrameBuilder};

    /// `DevType` confounds country and salary inside the table; `Hobby` is
    /// associated with neither.
    fn prepared() -> PreparedQuery {
        let n = 400;
        let mut country = Vec::new();
        let mut devtype = Vec::new();
        let mut hobby = Vec::new();
        let mut salary = Vec::new();
        for i in 0..n {
            let cid = i % 4;
            // dev type is unevenly distributed across countries (but not
            // determined by them) and drives salary: a genuine table-level
            // confounder of the country/salary correlation
            let data_share = [8, 7, 3, 2][cid];
            let dt = if (i / 4) % 10 < data_share {
                "data"
            } else {
                "web"
            };
            country.push(Some(["A", "B", "C", "D"][cid]));
            devtype.push(Some(dt));
            hobby.push(Some(if (i / 4) % 3 == 0 { "yes" } else { "no" }));
            salary.push(Some(
                if dt == "data" { 90.0 } else { 40.0 } + (i % 4) as f64,
            ));
        }
        let df = DataFrameBuilder::new()
            .cat("Country", country)
            .cat("DevType", devtype)
            .cat("Hobby", hobby)
            .float("Salary", salary)
            .build()
            .unwrap();
        prepare_query(
            &df,
            &AggregateQuery::avg("Country", "Salary"),
            None,
            &[],
            PrepareConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn detects_table_confounder() {
        let p = prepared();
        let cands: Vec<String> = ["DevType", "Hobby"].iter().map(|s| s.to_string()).collect();
        let e = hypdb(&p, &cands, HypDbConfig::default()).unwrap();
        assert!(e.attributes.contains(&"DevType".to_string()));
        assert!(!e.attributes.contains(&"Hobby".to_string()));
        assert!(e.explainability < e.baseline_cmi);
    }

    #[test]
    fn candidate_cap_is_respected() {
        let p = prepared();
        let cands: Vec<String> = ["Hobby", "DevType"].iter().map(|s| s.to_string()).collect();
        // cap = 1 keeps only Hobby (input order), which is no confounder
        let cfg = HypDbConfig {
            max_candidates: 1,
            ..Default::default()
        };
        let e = hypdb(&p, &cands, cfg).unwrap();
        assert!(e.is_empty());
    }

    #[test]
    fn empty_inputs() {
        let p = prepared();
        assert!(hypdb(&p, &[], HypDbConfig::default()).unwrap().is_empty());
        let cfg = HypDbConfig {
            k: 0,
            ..Default::default()
        };
        assert!(hypdb(&p, &["DevType".to_string()], cfg).unwrap().is_empty());
    }

    #[test]
    fn k_limits_output() {
        let p = prepared();
        let cands: Vec<String> = ["DevType", "Hobby"].iter().map(|s| s.to_string()).collect();
        let cfg = HypDbConfig {
            k: 1,
            ..Default::default()
        };
        let e = hypdb(&p, &cands, cfg).unwrap();
        assert!(e.len() <= 1);
    }
}
