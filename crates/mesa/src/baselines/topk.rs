//! The Top-K baseline: rank attributes by their *individual* explanation
//! power only (Max-Relevance without the redundancy term) and return the k
//! best.
//!
//! Its characteristic failure mode — selecting highly redundant attributes
//! such as `Year Low F` together with `Year Avg F` — is what the MCIMR
//! min-redundancy term exists to avoid.

use crate::error::Result;
use crate::problem::{Explanation, PreparedQuery};
use crate::responsibility::responsibilities;

/// Selects the `k` attributes with the lowest individual `I(O; T | C, E)`.
pub fn top_k(prepared: &PreparedQuery, candidates: &[String], k: usize) -> Result<Explanation> {
    let baseline = prepared.baseline_cmi();
    if candidates.is_empty() || k == 0 {
        return Ok(Explanation::empty(baseline));
    }
    let mut scored: Vec<(String, f64)> = Vec::with_capacity(candidates.len());
    for c in candidates {
        let cmi = prepared.explanation_cmi(std::slice::from_ref(c), None)?;
        scored.push((c.clone(), cmi));
    }
    scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    let attributes: Vec<String> = scored.into_iter().take(k).map(|(c, _)| c).collect();
    let explainability = prepared.explanation_cmi(&attributes, None)?;
    let resp = responsibilities(prepared, &attributes, None)?;
    Ok(Explanation {
        attributes,
        baseline_cmi: baseline,
        explainability,
        responsibilities: resp,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{prepare_query, PrepareConfig};
    use tabular::{AggregateQuery, DataFrameBuilder};

    /// `GDP` and `GDP twin` are equally informative and redundant; `Gini`
    /// adds complementary information.
    fn prepared() -> PreparedQuery {
        let n = 240;
        let mut country = Vec::new();
        let mut gdp = Vec::new();
        let mut twin = Vec::new();
        let mut gini = Vec::new();
        let mut salary = Vec::new();
        for i in 0..n {
            let cid = i % 4;
            country.push(Some(["A", "B", "C", "D"][cid]));
            gdp.push(Some(["hi", "hi", "lo", "lo"][cid]));
            twin.push(Some(["hi", "hi", "lo", "lo"][cid]));
            gini.push(Some(["eq", "uneq", "eq", "uneq"][cid]));
            let s = (if cid < 2 { 80.0 } else { 30.0 }) - (if cid % 2 == 1 { 15.0 } else { 0.0 });
            salary.push(Some(s));
        }
        let df = DataFrameBuilder::new()
            .cat("Country", country)
            .cat("GDP", gdp)
            .cat("GDP twin", twin)
            .cat("Gini", gini)
            .float("Salary", salary)
            .build()
            .unwrap();
        prepare_query(
            &df,
            &AggregateQuery::avg("Country", "Salary"),
            None,
            &[],
            PrepareConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn picks_individually_best_attributes_ignoring_redundancy() {
        let p = prepared();
        let cands: Vec<String> = ["GDP", "GDP twin", "Gini"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let e = top_k(&p, &cands, 2).unwrap();
        assert_eq!(e.len(), 2);
        // the two redundant GDP variants have the lowest individual CMI, so
        // Top-K picks both and misses Gini — exactly the paper's criticism
        assert!(e.attributes.contains(&"GDP".to_string()));
        assert!(e.attributes.contains(&"GDP twin".to_string()));
        assert!(!e.attributes.contains(&"Gini".to_string()));
    }

    #[test]
    fn k_larger_than_candidates() {
        let p = prepared();
        let cands = vec!["GDP".to_string()];
        let e = top_k(&p, &cands, 5).unwrap();
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn empty_inputs() {
        let p = prepared();
        assert!(top_k(&p, &[], 3).unwrap().is_empty());
        assert!(top_k(&p, &["GDP".to_string()], 0).unwrap().is_empty());
    }
}
