//! The Linear Regression (LR) baseline: fit an OLS regression of the outcome
//! on the candidate attributes and report the top-k attributes with the
//! largest absolute coefficients whose p-value is below 0.05.
//!
//! The baseline only captures linear relationships with the outcome and is
//! blind to the exposure, which is why the paper finds its explanations the
//! least convincing. It frequently returns an empty explanation because no
//! coefficient reaches significance.

use stats::ols_fit;

use crate::error::Result;
use crate::problem::{Explanation, PreparedQuery};
use crate::responsibility::responsibilities;

/// Significance threshold used by the paper.
const P_VALUE_THRESHOLD: f64 = 0.05;

/// Runs the LR baseline over the candidates.
///
/// Categorical candidates enter the regression through their discrete codes
/// (after binning everything is low-cardinality, so this is the usual
/// "treat codes as ordinal" shortcut). Rows with a missing value in any used
/// column are dropped.
pub fn linear_regression(
    prepared: &PreparedQuery,
    candidates: &[String],
    k: usize,
) -> Result<Explanation> {
    let baseline = prepared.baseline_cmi();
    if candidates.is_empty() || k == 0 {
        return Ok(Explanation::empty(baseline));
    }

    // Assemble the design matrix from encoded codes, complete cases only.
    let outcome_col = prepared.encoded.column(prepared.outcome())?;
    let cand_cols: Vec<_> = candidates
        .iter()
        .map(|c| prepared.encoded.column(c))
        .collect::<std::result::Result<Vec<_>, _>>()?;
    let n = outcome_col.len();
    let mut rows: Vec<usize> = Vec::with_capacity(n);
    'row: for i in 0..n {
        if !outcome_col.is_present(i) {
            continue;
        }
        for c in &cand_cols {
            if !c.is_present(i) {
                continue 'row;
            }
        }
        rows.push(i);
    }
    if rows.len() < candidates.len() + 2 {
        return Ok(Explanation::empty(baseline));
    }
    // Materialise codes once per column: sealed columns decode `codes()` into
    // an owned buffer, so the call must stay out of the per-row maps.
    let outcome_codes = outcome_col.codes();
    let y: Vec<f64> = rows.iter().map(|&i| outcome_codes[i] as f64).collect();
    let predictors: Vec<(String, Vec<f64>)> = candidates
        .iter()
        .zip(&cand_cols)
        .map(|(name, col)| {
            let codes = col.codes();
            (
                name.clone(),
                rows.iter().map(|&i| codes[i] as f64).collect(),
            )
        })
        .collect();

    let fit = match ols_fit(&y, &predictors) {
        Ok(f) => f,
        // Collinear candidates (common before pruning) make the fit singular;
        // the baseline then produces no explanation, as in the paper where LR
        // "failed to generate explanations" for several queries.
        Err(_) => return Ok(Explanation::empty(baseline)),
    };

    let mut significant: Vec<(String, f64)> = fit
        .coefficients
        .iter()
        .filter(|c| c.name != "(intercept)" && c.p_value < P_VALUE_THRESHOLD)
        .map(|c| (c.name.clone(), c.estimate.abs()))
        .collect();
    significant.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let attributes: Vec<String> = significant.into_iter().take(k).map(|(n, _)| n).collect();
    let explainability = prepared.explanation_cmi(&attributes, None)?;
    let resp = responsibilities(prepared, &attributes, None)?;
    Ok(Explanation {
        attributes,
        baseline_cmi: baseline,
        explainability,
        responsibilities: resp,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{prepare_query, PrepareConfig};
    use tabular::{AggregateQuery, DataFrameBuilder};

    fn prepared() -> PreparedQuery {
        let n = 300;
        let mut country = Vec::new();
        let mut gdp = Vec::new();
        let mut noise = Vec::new();
        let mut salary = Vec::new();
        for i in 0..n {
            let cid = i % 5;
            country.push(Some(["A", "B", "C", "D", "E"][cid]));
            gdp.push(Some(cid as f64 * 10.0));
            // independent of both the country cycle and the salary wiggle
            noise.push(Some(((i / 5) % 7) as f64));
            salary.push(Some(20.0 + cid as f64 * 15.0 + (i % 5) as f64));
        }
        let df = DataFrameBuilder::new()
            .cat("Country", country)
            .float("GDP", gdp)
            .float("Noise", noise)
            .float("Salary", salary)
            .build()
            .unwrap();
        prepare_query(
            &df,
            &AggregateQuery::avg("Country", "Salary"),
            None,
            &[],
            PrepareConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn selects_linearly_predictive_attribute() {
        let p = prepared();
        let cands: Vec<String> = ["GDP", "Noise"].iter().map(|s| s.to_string()).collect();
        let e = linear_regression(&p, &cands, 2).unwrap();
        // GDP has by far the largest (and most significant) coefficient, so it
        // must be present and ranked first.
        assert!(!e.is_empty());
        assert_eq!(e.attributes[0], "GDP");
    }

    #[test]
    fn k_one_returns_only_the_strongest() {
        let p = prepared();
        let cands: Vec<String> = ["GDP", "Noise"].iter().map(|s| s.to_string()).collect();
        let e = linear_regression(&p, &cands, 1).unwrap();
        assert_eq!(e.attributes, vec!["GDP".to_string()]);
    }

    #[test]
    fn collinear_candidates_return_empty() {
        let p = prepared();
        // GDP listed twice makes the design singular
        let cands: Vec<String> = ["GDP", "GDP"].iter().map(|s| s.to_string()).collect();
        let e = linear_regression(&p, &cands, 2).unwrap();
        assert!(e.is_empty());
        assert_eq!(e.explainability, e.baseline_cmi);
    }

    #[test]
    fn empty_inputs() {
        let p = prepared();
        assert!(linear_regression(&p, &[], 3).unwrap().is_empty());
        assert!(linear_regression(&p, &["GDP".to_string()], 0)
            .unwrap()
            .is_empty());
    }
}
