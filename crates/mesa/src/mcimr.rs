//! The MCIMR algorithm (Algorithm 1): greedy selection of confounding
//! attributes by Min-Conditional-mutual-Information and Min-Redundancy.
//!
//! At each iteration the candidate minimising
//!
//! `I(O; T | C, E)  +  (1 / |E_selected|) · Σ_{E_i ∈ E_selected} I(E; E_i)`
//!
//! is added (Equation 5). Before adding, the *responsibility test* (Lemma
//! 4.2) checks whether the candidate is conditionally independent of the
//! outcome given the already-selected attributes; if so its responsibility
//! would be ≤ 0 and the algorithm stops, which is how `k` becomes an upper
//! bound rather than an exact size.
//!
//! Per-attribute IPW weights (from the selection-bias analysis) are applied
//! to every term that involves the corresponding attribute.
//!
//! Two implementation notes on the greedy loop: the relevance term
//! `I(O;T|E_cand)` and the pairwise redundancy terms `I(E_cand; E_i)` are
//! memoised across rounds (each is computed exactly once per
//! candidate/pair), and the per-candidate computations of a round run in
//! parallel via scoped threads. Both are pure optimisations — the selected
//! attributes and their scores are identical to the naive loop.

use std::collections::HashMap;

use infotheory::CiTestConfig;

use crate::error::Result;
use crate::missing::SelectionBiasInfo;
use crate::parallel::parallel_map;
use crate::problem::{Explanation, PreparedQuery};
use crate::responsibility::responsibilities;

/// Options for an MCIMR run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McimrConfig {
    /// Upper bound on the explanation size (the paper's default is 5).
    pub k: usize,
    /// Whether to apply the responsibility-test stopping rule. Disabling it
    /// forces exactly `k` attributes (used by the stopping-rule ablation).
    pub use_stopping_rule: bool,
    /// CI-test configuration used by the responsibility test.
    pub ci: CiTestConfig,
}

impl Default for McimrConfig {
    fn default() -> Self {
        McimrConfig {
            k: 5,
            use_stopping_rule: true,
            ci: CiTestConfig::default(),
        }
    }
}

/// Diagnostics of a single MCIMR run (used by the efficiency experiments).
#[derive(Debug, Clone, Default)]
pub struct McimrTrace {
    /// Number of candidate evaluations (CMI computations of the `v1` term;
    /// with memoisation this is one per distinct candidate).
    pub n_evaluations: usize,
    /// Number of iterations executed (attributes considered for addition).
    pub n_iterations: usize,
    /// Whether the responsibility test triggered early termination.
    pub stopped_early: bool,
}

/// Runs MCIMR over the prepared query, selecting from `candidates`.
///
/// `bias` maps attribute names to their selection-bias analysis; when an
/// attribute has IPW weights they are used for every information measure
/// involving it.
pub fn mcimr(
    prepared: &PreparedQuery,
    candidates: &[String],
    bias: &HashMap<String, SelectionBiasInfo>,
    config: McimrConfig,
) -> Result<(Explanation, McimrTrace)> {
    let outcome = prepared.outcome().to_string();
    let exposure = prepared.exposure().to_string();
    let baseline = prepared.baseline_cmi();
    let mut trace = McimrTrace::default();
    let mut selected: Vec<String> = Vec::new();
    let mut remaining: Vec<String> = candidates.to_vec();

    let weight_of =
        |attr: &str| -> Option<&[f64]> { bias.get(attr).and_then(|info| info.weights.as_deref()) };

    // The relevance term `v1 = I(O; T | E_cand)` conditions only on the
    // candidate itself, never on the selected set, so it is constant across
    // greedy rounds: compute every candidate's term once (fanned out over
    // the persistent pool — per-candidate CMI cost is skewed by
    // cardinality, which the pool's dynamic claiming absorbs) and reuse it.
    // Keyed by candidate name.
    let v1_terms: Vec<Result<f64>> = parallel_map(&remaining, |_, cand| {
        Ok(prepared
            .encoded
            .cmi(&outcome, &exposure, &[cand.as_str()], weight_of(cand))?)
    });
    let mut v1: HashMap<String, f64> = HashMap::with_capacity(remaining.len());
    for (cand, term) in remaining.iter().zip(v1_terms) {
        v1.insert(cand.clone(), term?);
        trace.n_evaluations += 1;
    }
    // Memoised pairwise redundancy terms: `mi_terms[cand][r]` holds
    // `I(E_cand; E_r)` against the attribute selected in round `r`, so round
    // `r + 1` only computes the terms against the newest selection and
    // scoring sums a per-candidate slice (in selection order, matching the
    // naive loop's summation order).
    let mut mi_terms: HashMap<String, Vec<f64>> = HashMap::new();

    for _iteration in 0..config.k {
        if remaining.is_empty() {
            break;
        }
        trace.n_iterations += 1;
        if let Some(newest) = selected.last().cloned() {
            let new_terms: Vec<Result<f64>> = parallel_map(&remaining, |_, cand| {
                Ok(prepared
                    .encoded
                    .mutual_information(cand, &newest, weight_of(cand))?)
            });
            for (cand, term) in remaining.iter().zip(new_terms) {
                let term = term?;
                match mi_terms.get_mut(cand.as_str()) {
                    Some(terms) => terms.push(term),
                    None => {
                        mi_terms.insert(cand.clone(), vec![term]);
                    }
                }
            }
        }
        // NextBestAtt: minimise v1 + v2 / |selected|. Exact score ties are
        // broken by candidate name so the greedy path does not depend on the
        // candidate enumeration order.
        let mut best: Option<(usize, f64)> = None;
        for (idx, cand) in remaining.iter().enumerate() {
            let v2 = if selected.is_empty() {
                0.0
            } else {
                let mut sum = 0.0;
                for term in &mi_terms[cand.as_str()] {
                    sum += term;
                }
                sum / selected.len() as f64
            };
            let score = v1[cand] + v2;
            let wins = match best {
                None => true,
                Some((best_idx, b)) => score < b || (score == b && *cand < remaining[best_idx]),
            };
            if wins {
                best = Some((idx, score));
            }
        }
        let (best_idx, _) = match best {
            Some(b) => b,
            None => break,
        };
        let candidate = remaining.remove(best_idx);

        // Responsibility test (Lemma 4.2): stop if O ⫫ E_next | E_selected,
        // i.e. the responsibility of the next attribute would be ≈ 0. The CI
        // verdict alone has little power on small samples with conditioning,
        // so it is combined with the attribute's actual marginal improvement
        // of the explanation score.
        if config.use_stopping_rule {
            let z: Vec<&str> = selected.iter().map(|s| s.as_str()).collect();
            let test = prepared.encoded.ci_test(
                &outcome,
                &candidate,
                &z,
                weight_of(&candidate),
                config.ci,
            )?;
            if test.independent && !selected.is_empty() {
                let current = prepared.explanation_cmi(&selected, None)?;
                let mut with_candidate = selected.clone();
                with_candidate.push(candidate.clone());
                let after = prepared.explanation_cmi(&with_candidate, None)?;
                let improvement = current - after;
                let negligible = improvement <= (0.02 * baseline).max(config.ci.min_cmi);
                if negligible {
                    trace.stopped_early = true;
                    break;
                }
            }
        }
        selected.push(candidate);
    }

    let weights = crate::missing::combine_weights(&selected, bias, prepared.encoded.n_rows());
    let explainability = prepared.explanation_cmi(&selected, weights.as_deref())?;
    let resp = responsibilities(prepared, &selected, weights.as_deref())?;
    Ok((
        Explanation {
            attributes: selected,
            baseline_cmi: baseline,
            explainability,
            responsibilities: resp,
        },
        trace,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{prepare_query, PrepareConfig};
    use tabular::{AggregateQuery, DataFrameBuilder};

    /// Salary is driven by two country-level factors (`GDP`, `Gini`) plus a
    /// weak within-dataset factor (`Gender`). `GDP copy` is redundant with
    /// `GDP`; `Noise` is irrelevant.
    fn prepared() -> PreparedQuery {
        let n = 600;
        let mut country = Vec::new();
        let mut gdp = Vec::new();
        let mut gdp_copy = Vec::new();
        let mut gini = Vec::new();
        let mut gender = Vec::new();
        let mut noise = Vec::new();
        let mut salary = Vec::new();
        for i in 0..n {
            let cid = i % 6;
            let c = ["A", "B", "C", "D", "E", "F"][cid];
            let g = ["hi", "hi", "mid", "mid", "lo", "lo"][cid];
            let ineq = ["low", "high", "low", "high", "low", "high"][cid];
            let male = (i / 3) % 2 == 0;
            country.push(Some(c));
            gdp.push(Some(g));
            gdp_copy.push(Some(g));
            gini.push(Some(ineq));
            gender.push(Some(if male { "M" } else { "W" }));
            noise.push(Some(if (i * 13) % 5 < 2 { "x" } else { "y" }));
            let base = match g {
                "hi" => 90.0,
                "mid" => 55.0,
                _ => 25.0,
            };
            let inequality_penalty = if ineq == "high" { 12.0 } else { 0.0 };
            let s = base - inequality_penalty + if male { 6.0 } else { 0.0 };
            salary.push(Some(s));
        }
        let df = DataFrameBuilder::new()
            .cat("Country", country)
            .cat("GDP", gdp)
            .cat("GDP copy", gdp_copy)
            .cat("Gini", gini)
            .cat("Gender", gender)
            .cat("Noise", noise)
            .float("Salary", salary)
            .build()
            .unwrap();
        prepare_query(
            &df,
            &AggregateQuery::avg("Country", "Salary"),
            None,
            &[],
            PrepareConfig::default(),
        )
        .unwrap()
    }

    fn run(prepared: &PreparedQuery, candidates: &[&str], config: McimrConfig) -> Explanation {
        let cands: Vec<String> = candidates.iter().map(|s| s.to_string()).collect();
        mcimr(prepared, &cands, &HashMap::new(), config).unwrap().0
    }

    #[test]
    fn selects_the_true_confounders_first() {
        let p = prepared();
        let e = run(
            &p,
            &["GDP", "Gini", "Gender", "Noise"],
            McimrConfig::default(),
        );
        assert!(!e.is_empty());
        assert_eq!(
            e.attributes[0], "GDP",
            "GDP should be picked first: {:?}",
            e.attributes
        );
        assert!(
            e.attributes.contains(&"Gini".to_string()),
            "{:?}",
            e.attributes
        );
        assert!(!e.attributes.contains(&"Noise".to_string()));
        // conditioning on the selected set shrinks the correlation a lot
        assert!(e.explainability < e.baseline_cmi * 0.5);
        assert_eq!(e.responsibilities.len(), e.attributes.len());
    }

    #[test]
    fn redundancy_term_avoids_duplicates() {
        let p = prepared();
        let e = run(
            &p,
            &["GDP", "GDP copy", "Gini", "Noise"],
            McimrConfig {
                k: 2,
                ..Default::default()
            },
        );
        // with k = 2, picking GDP and its copy would be wasteful; the
        // min-redundancy term should prefer Gini as the second attribute
        assert_eq!(e.attributes.len().min(2), e.attributes.len());
        if e.attributes.len() == 2 {
            assert!(
                !(e.attributes.contains(&"GDP".to_string())
                    && e.attributes.contains(&"GDP copy".to_string())),
                "selected both redundant copies: {:?}",
                e.attributes
            );
        }
    }

    #[test]
    fn k_bounds_the_size() {
        let p = prepared();
        for k in 1..=4 {
            let e = run(
                &p,
                &["GDP", "Gini", "Gender", "Noise"],
                McimrConfig {
                    k,
                    ..Default::default()
                },
            );
            assert!(e.len() <= k);
        }
    }

    #[test]
    fn stopping_rule_prunes_irrelevant_tail() {
        let p = prepared();
        let with_stop = run(&p, &["GDP", "Gini", "Noise"], McimrConfig::default());
        let without_stop = run(
            &p,
            &["GDP", "Gini", "Noise"],
            McimrConfig {
                use_stopping_rule: false,
                k: 3,
                ..Default::default()
            },
        );
        assert!(with_stop.len() <= without_stop.len());
        assert!(!with_stop.attributes.contains(&"Noise".to_string()));
        // forcing k = 3 without the test includes everything
        assert_eq!(without_stop.len(), 3);
    }

    #[test]
    fn empty_candidates_give_empty_explanation() {
        let p = prepared();
        let e = run(&p, &[], McimrConfig::default());
        assert!(e.is_empty());
        assert_eq!(e.explainability, e.baseline_cmi);
    }

    #[test]
    fn trace_counts_evaluations() {
        let p = prepared();
        let cands: Vec<String> = ["GDP", "Gini", "Gender", "Noise"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (_, trace) = mcimr(&p, &cands, &HashMap::new(), McimrConfig::default()).unwrap();
        assert!(trace.n_iterations >= 1);
        assert!(trace.n_evaluations >= cands.len());
    }

    #[test]
    fn linear_evaluation_count_in_candidates() {
        // The paper's Proposition 4.3: O(k |A|) — evaluations grow linearly
        // with the candidate count for fixed k.
        let p = prepared();
        let small: Vec<String> = ["GDP", "Gini"].iter().map(|s| s.to_string()).collect();
        let large: Vec<String> = ["GDP", "Gini", "Gender", "Noise", "GDP copy"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let cfg = McimrConfig {
            k: 2,
            use_stopping_rule: false,
            ..Default::default()
        };
        let (_, t_small) = mcimr(&p, &small, &HashMap::new(), cfg).unwrap();
        let (_, t_large) = mcimr(&p, &large, &HashMap::new(), cfg).unwrap();
        let bound_small = cfg.k * small.len();
        let bound_large = cfg.k * large.len();
        assert!(t_small.n_evaluations <= bound_small);
        assert!(t_large.n_evaluations <= bound_large);
    }
}
