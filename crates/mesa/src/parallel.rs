//! Re-export of the shared [`parallel`] runtime crate.
//!
//! The implementation lived here until PR 3 hoisted it into
//! `crates/parallel` so that `kg` (a dependency of `mesa`) can fan out
//! per-entity extraction without an upward dependency; PR 7 replaced the
//! scoped-thread chunker there with the persistent pool. This module keeps
//! the `mesa::parallel::parallel_map` / `mesa::parallel_map` paths working
//! and surfaces the runtime controls ([`set_threads`], [`with_thread_cap`],
//! [`effective_threads`]) to downstream users of `mesa`.

pub use parallel::{
    checkpoint, current_deadline, effective_threads, parallel_map, parallel_map_with, scoped_map,
    set_threads, with_deadline, with_thread_cap, Cancelled, Deadline, FanOut,
};
