//! Re-export of the shared [`parallel`] fan-out crate.
//!
//! The implementation lived here until PR 3 hoisted it into
//! `crates/parallel` so that `kg` (a dependency of `mesa`) can fan out
//! per-entity extraction without an upward dependency. This module keeps the
//! `mesa::parallel::parallel_map` / `mesa::parallel_map` paths working.

pub use parallel::parallel_map;
