//! Degree of responsibility (Definition 2.2): the normalised individual
//! contribution of each attribute in an explanation.

use crate::error::Result;
use crate::problem::PreparedQuery;

/// Computes the degree of responsibility of every attribute in `explanation`.
///
/// `Resp(E_i) = [I(O;T | E\{E_i}, C) - I(O;T | E, C)] / Σ_j [I(O;T | E\{E_j}, C) - I(O;T | E, C)]`
///
/// A negative responsibility means the attribute *harms* the explanation
/// (negative interaction information with `O` and `T`). When the explanation
/// is empty, or when no attribute contributes (denominator ≈ 0), the result
/// assigns equal responsibility to every attribute.
pub fn responsibilities(
    prepared: &PreparedQuery,
    explanation: &[String],
    weights: Option<&[f64]>,
) -> Result<Vec<f64>> {
    let k = explanation.len();
    if k == 0 {
        return Ok(Vec::new());
    }
    if k == 1 {
        return Ok(vec![1.0]);
    }
    let full = prepared.explanation_cmi(explanation, weights)?;
    let mut contributions = Vec::with_capacity(k);
    for i in 0..k {
        let without: Vec<String> = explanation
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, a)| a.clone())
            .collect();
        let cmi_without = prepared.explanation_cmi(&without, weights)?;
        contributions.push(cmi_without - full);
    }
    let total: f64 = contributions.iter().sum();
    if total.abs() < 1e-12 {
        return Ok(vec![1.0 / k as f64; k]);
    }
    Ok(contributions.into_iter().map(|c| c / total).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{prepare_query, PrepareConfig};
    use tabular::{AggregateQuery, DataFrameBuilder};

    /// Salary is driven jointly by `gdp` (strongly) and `gender` (weakly);
    /// `useless` is unrelated.
    fn prepared() -> PreparedQuery {
        let n = 400;
        let mut country = Vec::new();
        let mut gdp = Vec::new();
        let mut gender = Vec::new();
        let mut useless = Vec::new();
        let mut salary = Vec::new();
        for i in 0..n {
            let c = ["A", "B", "C", "D"][i % 4];
            let rich = i % 4 < 2;
            // gender varies independently of the country (period 8 vs 4)
            let male = (i / 4) % 2 == 0;
            country.push(Some(c));
            gdp.push(Some(if rich { "big" } else { "small" }));
            gender.push(Some(if male { "M" } else { "W" }));
            useless.push(Some(if (i * 7) % 3 == 0 { "u" } else { "v" }));
            let s = (if rich { 80.0 } else { 30.0 }) + (if male { 10.0 } else { 0.0 });
            salary.push(Some(s));
        }
        let df = DataFrameBuilder::new()
            .cat("Country", country)
            .cat("GDP", gdp)
            .cat("Gender", gender)
            .cat("Useless", useless)
            .float("Salary", salary)
            .build()
            .unwrap();
        prepare_query(
            &df,
            &AggregateQuery::avg("Country", "Salary"),
            None,
            &[],
            PrepareConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn empty_and_singleton() {
        let p = prepared();
        assert!(responsibilities(&p, &[], None).unwrap().is_empty());
        assert_eq!(
            responsibilities(&p, &["GDP".to_string()], None).unwrap(),
            vec![1.0]
        );
    }

    #[test]
    fn responsibilities_sum_to_one() {
        let p = prepared();
        let expl = vec!["GDP".to_string(), "Gender".to_string()];
        let resp = responsibilities(&p, &expl, None).unwrap();
        assert_eq!(resp.len(), 2);
        assert!((resp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stronger_contributor_gets_higher_responsibility() {
        let p = prepared();
        let expl = vec!["GDP".to_string(), "Gender".to_string()];
        let resp = responsibilities(&p, &expl, None).unwrap();
        assert!(resp[0] > resp[1], "GDP should dominate: {resp:?}");
    }

    #[test]
    fn useless_attribute_gets_low_or_negative_responsibility() {
        let p = prepared();
        let expl = vec!["GDP".to_string(), "Useless".to_string()];
        let resp = responsibilities(&p, &expl, None).unwrap();
        assert!(resp[0] > 0.8);
        assert!(resp[1] < 0.2);
    }

    #[test]
    fn degenerate_denominator_splits_evenly() {
        let p = prepared();
        // two copies of an attribute that explains nothing at all
        let expl = vec!["Useless".to_string(), "Useless".to_string()];
        let resp = responsibilities(&p, &expl, None).unwrap();
        assert_eq!(resp, vec![0.5, 0.5]);
    }
}
