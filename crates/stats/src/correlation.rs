//! Pearson and Spearman correlation and basic descriptive statistics.
//!
//! Pearson's r is mentioned in the paper as the standardised slope of the LR
//! baseline; Spearman's coefficient is one of the alternative partial
//! correlation measures discussed in Section 2.2.

/// Arithmetic mean. Returns `None` for an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Population variance. Returns `None` for an empty slice.
pub fn variance(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    Some(values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64)
}

/// Population standard deviation.
pub fn std_dev(values: &[f64]) -> Option<f64> {
    variance(values).map(f64::sqrt)
}

/// Pearson correlation coefficient between two equal-length slices.
///
/// Returns `None` when the slices are empty, have different lengths, or when
/// either has zero variance.
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.is_empty() {
        return None;
    }
    let mx = mean(x)?;
    let my = mean(y)?;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (a, b) in x.iter().zip(y) {
        cov += (a - mx) * (b - my);
        vx += (a - mx) * (a - mx);
        vy += (b - my) * (b - my);
    }
    if vx <= 0.0 || vy <= 0.0 {
        return None;
    }
    Some(cov / (vx.sqrt() * vy.sqrt()))
}

/// Ranks with average ties (1-based ranks as used by Spearman).
fn ranks(values: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = vec![0.0; values.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        // average rank for the tie group [i, j]
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            out[idx[k]] = avg;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation between two equal-length slices.
pub fn spearman(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.is_empty() {
        return None;
    }
    pearson(&ranks(x), &ranks(y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptive_stats() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&v), Some(5.0));
        assert_eq!(variance(&v), Some(4.0));
        assert_eq!(std_dev(&v), Some(2.0));
        assert_eq!(mean(&[]), None);
        assert_eq!(variance(&[]), None);
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &z).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert_eq!(pearson(&[1.0, 2.0], &[1.0]), None);
        assert_eq!(pearson(&[], &[]), None);
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), None);
    }

    #[test]
    fn pearson_independent_near_zero() {
        let x: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        let y: Vec<f64> = (0..100).map(|i| ((i / 10) % 10) as f64).collect();
        assert!(pearson(&x, &y).unwrap().abs() < 1e-10);
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        // x^3 is nonlinear but perfectly monotone: Spearman = 1, Pearson < 1
        let x: Vec<f64> = (1..20).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v.powi(3)).collect();
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        assert!(pearson(&x, &y).unwrap() < 1.0);
    }

    #[test]
    fn spearman_handles_ties() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 2.0, 2.0, 3.0];
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_average_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
        assert_eq!(ranks(&[5.0]), vec![1.0]);
    }
}
