//! Binary logistic regression fitted by iteratively re-weighted least squares
//! (Newton–Raphson).
//!
//! MESA uses logistic regression at pre-processing time to estimate the
//! selection probability `P(R_E = 1 | X)` of each extracted attribute from the
//! fully observed attributes of the input dataset; the inverse of that
//! probability becomes the IPW weight of each complete case (Section 3.2).

use crate::matrix::{Matrix, MatrixError};
use crate::ols::FitError;

/// A fitted logistic regression model.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticFit {
    /// Intercept followed by one coefficient per predictor (input order).
    pub coefficients: Vec<f64>,
    /// Names matching `coefficients` (first entry is `"(intercept)"`).
    pub names: Vec<String>,
    /// Number of Newton iterations performed.
    pub iterations: usize,
    /// Whether the optimiser converged before the iteration cap.
    pub converged: bool,
    /// Log-likelihood at the final iterate.
    pub log_likelihood: f64,
}

impl LogisticFit {
    /// Predicted probability `P(y = 1 | x)` for one feature vector (without
    /// the intercept term — it is added internally).
    pub fn predict_proba(&self, features: &[f64]) -> f64 {
        debug_assert_eq!(features.len() + 1, self.coefficients.len());
        let mut z = self.coefficients[0];
        for (i, f) in features.iter().enumerate() {
            z += self.coefficients[i + 1] * f;
        }
        sigmoid(z)
    }
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Configuration for the IRLS optimiser.
#[derive(Debug, Clone, Copy)]
pub struct LogisticConfig {
    /// Maximum Newton iterations.
    pub max_iter: usize,
    /// Convergence tolerance on the max absolute coefficient update.
    pub tol: f64,
    /// L2 ridge penalty (applied to all coefficients except the intercept);
    /// a small positive value keeps the Hessian invertible under separation.
    pub ridge: f64,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        LogisticConfig {
            max_iter: 50,
            tol: 1e-8,
            ridge: 1e-6,
        }
    }
}

/// Fits `P(y=1 | X) = sigmoid(b0 + X b)` by Newton–Raphson / IRLS.
///
/// `y` entries must be 0.0 or 1.0; `predictors` is a list of `(name, values)`
/// columns of the same length as `y`.
pub fn logistic_fit(
    y: &[f64],
    predictors: &[(String, Vec<f64>)],
    config: LogisticConfig,
) -> Result<LogisticFit, FitError> {
    let n = y.len();
    let p = predictors.len() + 1;
    if n < p {
        return Err(FitError::TooFewRows { rows: n, params: p });
    }
    for (name, col) in predictors {
        if col.len() != n {
            return Err(FitError::ShapeMismatch(format!(
                "predictor {name} has {} rows, outcome has {n}",
                col.len()
            )));
        }
    }
    for &v in y {
        if v != 0.0 && v != 1.0 {
            return Err(FitError::ShapeMismatch(format!(
                "outcome value {v} is not 0/1"
            )));
        }
    }

    // Design matrix with intercept.
    let mut design = Matrix::zeros(n, p);
    for i in 0..n {
        design[(i, 0)] = 1.0;
        for (j, (_, col)) in predictors.iter().enumerate() {
            design[(i, j + 1)] = col[i];
        }
    }

    let mut beta = vec![0.0; p];
    let mut converged = false;
    let mut iterations = 0;
    for iter in 0..config.max_iter {
        iterations = iter + 1;
        // Gradient and Hessian.
        let mut grad = vec![0.0; p];
        let mut hess = Matrix::zeros(p, p);
        for i in 0..n {
            let mut z = 0.0;
            for j in 0..p {
                z += design[(i, j)] * beta[j];
            }
            let mu = sigmoid(z);
            let w = (mu * (1.0 - mu)).max(1e-10);
            let resid = y[i] - mu;
            for j in 0..p {
                grad[j] += design[(i, j)] * resid;
                for k in j..p {
                    hess[(j, k)] += design[(i, j)] * design[(i, k)] * w;
                }
            }
        }
        // Symmetrise and add the ridge term (not on the intercept).
        for j in 0..p {
            for k in 0..j {
                hess[(j, k)] = hess[(k, j)];
            }
        }
        for j in 1..p {
            hess[(j, j)] += config.ridge;
            grad[j] -= config.ridge * beta[j];
        }
        let step = match hess.solve(&Matrix::column_vector(grad)) {
            Ok(s) => s,
            Err(MatrixError::Singular) => return Err(FitError::Singular),
            Err(MatrixError::ShapeMismatch(m)) => return Err(FitError::ShapeMismatch(m)),
        };
        // Damp the step while preserving its direction: a hard element-wise
        // clamp would distort the Newton direction under quasi-separation.
        let step_norm: f64 = (0..p).map(|j| step[(j, 0)].abs()).fold(0.0, f64::max);
        let scale = if step_norm > 5.0 {
            5.0 / step_norm
        } else {
            1.0
        };
        let mut max_update: f64 = 0.0;
        for j in 0..p {
            let delta = step[(j, 0)] * scale;
            beta[j] += delta;
            max_update = max_update.max(delta.abs());
        }
        if max_update < config.tol {
            converged = true;
            break;
        }
    }

    // Final log-likelihood.
    let mut log_likelihood = 0.0;
    for i in 0..n {
        let mut z = 0.0;
        for j in 0..p {
            z += design[(i, j)] * beta[j];
        }
        let mu = sigmoid(z).clamp(1e-12, 1.0 - 1e-12);
        log_likelihood += y[i] * mu.ln() + (1.0 - y[i]) * (1.0 - mu).ln();
    }

    let mut names = Vec::with_capacity(p);
    names.push("(intercept)".to_string());
    names.extend(predictors.iter().map(|(n, _)| n.clone()));
    Ok(LogisticFit {
        coefficients: beta,
        names,
        iterations,
        converged,
        log_likelihood,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fit(y: &[f64], preds: &[(String, Vec<f64>)]) -> LogisticFit {
        logistic_fit(y, preds, LogisticConfig::default()).unwrap()
    }

    #[test]
    fn sigmoid_bounds() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(50.0) > 0.999999);
        assert!(sigmoid(-50.0) < 1e-6);
    }

    #[test]
    fn recovers_known_relationship() {
        // y = 1 when x > 0.5 with a smooth boundary
        let x: Vec<f64> = (0..200).map(|i| i as f64 / 200.0).collect();
        let y: Vec<f64> = x.iter().map(|&x| if x > 0.5 { 1.0 } else { 0.0 }).collect();
        let model = fit(&y, &[("x".to_string(), x)]);
        assert!(model.coefficients[1] > 0.0, "slope should be positive");
        assert!(model.predict_proba(&[0.9]) > 0.9);
        assert!(model.predict_proba(&[0.1]) < 0.1);
        assert!(model.predict_proba(&[0.5]) > 0.2 && model.predict_proba(&[0.5]) < 0.8);
    }

    #[test]
    fn intercept_only_matches_base_rate() {
        let y = vec![1.0, 1.0, 1.0, 0.0];
        let model = fit(&y, &[]);
        assert!((model.predict_proba(&[]) - 0.75).abs() < 1e-4);
        assert!(model.converged);
    }

    #[test]
    fn balanced_noise_gives_half() {
        let y: Vec<f64> = (0..100).map(|i| (i % 2) as f64).collect();
        let x: Vec<f64> = (0..100).map(|i| ((i * 7) % 13) as f64).collect();
        let model = fit(&y, &[("x".to_string(), x)]);
        let p = model.predict_proba(&[6.0]);
        assert!(p > 0.3 && p < 0.7);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(
            logistic_fit(&[0.0, 2.0], &[], LogisticConfig::default()),
            Err(FitError::ShapeMismatch(_))
        ));
        assert!(matches!(
            logistic_fit(
                &[0.0],
                &[("x".to_string(), vec![1.0, 2.0])],
                LogisticConfig::default()
            ),
            Err(FitError::TooFewRows { .. })
        ));
        assert!(matches!(
            logistic_fit(
                &[0.0, 1.0, 1.0],
                &[("x".to_string(), vec![1.0, 2.0])],
                LogisticConfig::default()
            ),
            Err(FitError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn separable_data_stays_finite() {
        // Perfectly separable: without ridge/step capping this diverges.
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&x| if x >= 25.0 { 1.0 } else { 0.0 })
            .collect();
        let model = fit(&y, &[("x".to_string(), x)]);
        assert!(model.coefficients.iter().all(|c| c.is_finite()));
        assert!(model.predict_proba(&[49.0]) > 0.9);
        assert!(model.predict_proba(&[0.0]) < 0.1);
    }

    #[test]
    fn log_likelihood_improves_over_null() {
        let x: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        let y: Vec<f64> = x.iter().map(|&x| if x > 4.0 { 1.0 } else { 0.0 }).collect();
        let with_x = fit(&y, &[("x".to_string(), x)]);
        let null = fit(&y, &[]);
        assert!(with_x.log_likelihood > null.log_likelihood);
    }
}
