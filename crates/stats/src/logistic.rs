//! Binary logistic regression fitted by iteratively re-weighted least squares
//! (Newton–Raphson).
//!
//! MESA uses logistic regression at pre-processing time to estimate the
//! selection probability `P(R_E = 1 | X)` of each extracted attribute from the
//! fully observed attributes of the input dataset; the inverse of that
//! probability becomes the IPW weight of each complete case (Section 3.2).

use crate::matrix::{Matrix, MatrixError};
use crate::ols::FitError;

/// A fitted logistic regression model.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticFit {
    /// Intercept followed by one coefficient per predictor (input order).
    pub coefficients: Vec<f64>,
    /// Names matching `coefficients` (first entry is `"(intercept)"`).
    pub names: Vec<String>,
    /// Number of Newton iterations performed.
    pub iterations: usize,
    /// Whether the optimiser converged before the iteration cap.
    pub converged: bool,
    /// Log-likelihood at the final iterate.
    pub log_likelihood: f64,
}

impl LogisticFit {
    /// Predicted probability `P(y = 1 | x)` for one feature vector (without
    /// the intercept term — it is added internally).
    pub fn predict_proba(&self, features: &[f64]) -> f64 {
        debug_assert_eq!(features.len() + 1, self.coefficients.len());
        let mut z = self.coefficients[0];
        for (i, f) in features.iter().enumerate() {
            z += self.coefficients[i + 1] * f;
        }
        sigmoid(z)
    }
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Configuration for the IRLS optimiser.
#[derive(Debug, Clone, Copy)]
pub struct LogisticConfig {
    /// Maximum Newton iterations.
    pub max_iter: usize,
    /// Convergence tolerance on the max absolute coefficient update.
    pub tol: f64,
    /// L2 ridge penalty (applied to all coefficients except the intercept);
    /// a small positive value keeps the Hessian invertible under separation.
    pub ridge: f64,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        LogisticConfig {
            max_iter: 50,
            tol: 1e-8,
            ridge: 1e-6,
        }
    }
}

/// Fits `P(y=1 | X) = sigmoid(b0 + X b)` by Newton–Raphson / IRLS.
///
/// `y` entries must be 0.0 or 1.0; `predictors` is a list of `(name, values)`
/// columns of the same length as `y`.
pub fn logistic_fit(
    y: &[f64],
    predictors: &[(String, Vec<f64>)],
    config: LogisticConfig,
) -> Result<LogisticFit, FitError> {
    for &v in y {
        if v != 0.0 && v != 1.0 {
            return Err(FitError::ShapeMismatch(format!(
                "outcome value {v} is not 0/1"
            )));
        }
    }
    logistic_fit_weighted(y, predictors, None, config)
}

/// Weighted (binomial) logistic regression: `y` entries are success
/// *proportions* in `[0, 1]` and `row_weights` gives the number of
/// observations (or any non-negative weight) behind each row.
///
/// This is the grouped form of [`logistic_fit`]: collapsing rows with
/// identical discrete feature vectors into one weighted row reaches the same
/// optimum while running IRLS over the number of *distinct combinations*
/// instead of the number of rows.
pub fn logistic_fit_weighted(
    y: &[f64],
    predictors: &[(String, Vec<f64>)],
    row_weights: Option<&[f64]>,
    config: LogisticConfig,
) -> Result<LogisticFit, FitError> {
    let n = y.len();
    let p = predictors.len() + 1;
    if n < p {
        return Err(FitError::TooFewRows { rows: n, params: p });
    }
    for (name, col) in predictors {
        if col.len() != n {
            return Err(FitError::ShapeMismatch(format!(
                "predictor {name} has {} rows, outcome has {n}",
                col.len()
            )));
        }
    }
    for &v in y {
        if !(0.0..=1.0).contains(&v) {
            return Err(FitError::ShapeMismatch(format!(
                "outcome value {v} is not a proportion in [0, 1]"
            )));
        }
    }
    if let Some(w) = row_weights {
        if w.len() != n {
            return Err(FitError::ShapeMismatch(format!(
                "row weights have {} entries, outcome has {n}",
                w.len()
            )));
        }
        for &v in w {
            if !v.is_finite() || v < 0.0 {
                return Err(FitError::ShapeMismatch(format!(
                    "row weight {v} is not finite and non-negative"
                )));
            }
        }
    }

    // Design matrix with intercept, flat row-major: row slices keep the hot
    // IRLS loop free of per-access index arithmetic. The accumulation order
    // is identical to the textbook nested loop, so results are bit-for-bit
    // unchanged.
    let mut design = vec![0.0f64; n * p];
    for i in 0..n {
        design[i * p] = 1.0;
        for (j, (_, col)) in predictors.iter().enumerate() {
            design[i * p + j + 1] = col[i];
        }
    }

    let mut beta = vec![0.0; p];
    let mut converged = false;
    let mut iterations = 0;
    let mut grad = vec![0.0f64; p];
    let mut hess_flat = vec![0.0f64; p * p];
    for iter in 0..config.max_iter {
        iterations = iter + 1;
        // Gradient and Hessian (upper triangle).
        grad.iter_mut().for_each(|g| *g = 0.0);
        hess_flat.iter_mut().for_each(|h| *h = 0.0);
        for i in 0..n {
            let row = &design[i * p..(i + 1) * p];
            let mut z = 0.0;
            for (x, b) in row.iter().zip(&beta) {
                z += x * b;
            }
            let wi = row_weights.map(|w| w[i]).unwrap_or(1.0);
            let mu = sigmoid(z);
            let w = (mu * (1.0 - mu)).max(1e-10) * wi;
            let resid = (y[i] - mu) * wi;
            for j in 0..p {
                let xj = row[j];
                grad[j] += xj * resid;
                let hrow = &mut hess_flat[j * p + j..j * p + p];
                for (h, &xk) in hrow.iter_mut().zip(&row[j..]) {
                    *h += xj * xk * w;
                }
            }
        }
        // Symmetrise into a matrix and add the ridge term (not on the
        // intercept).
        let mut hess = Matrix::zeros(p, p);
        for j in 0..p {
            for k in j..p {
                hess[(j, k)] = hess_flat[j * p + k];
                hess[(k, j)] = hess_flat[j * p + k];
            }
        }
        for j in 1..p {
            hess[(j, j)] += config.ridge;
            grad[j] -= config.ridge * beta[j];
        }
        let step = match hess.solve(&Matrix::column_vector(grad.clone())) {
            Ok(s) => s,
            Err(MatrixError::Singular) => return Err(FitError::Singular),
            Err(MatrixError::ShapeMismatch(m)) => return Err(FitError::ShapeMismatch(m)),
        };
        // Damp the step while preserving its direction: a hard element-wise
        // clamp would distort the Newton direction under quasi-separation.
        let step_norm: f64 = (0..p).map(|j| step[(j, 0)].abs()).fold(0.0, f64::max);
        let scale = if step_norm > 5.0 {
            5.0 / step_norm
        } else {
            1.0
        };
        let mut max_update: f64 = 0.0;
        for j in 0..p {
            let delta = step[(j, 0)] * scale;
            beta[j] += delta;
            max_update = max_update.max(delta.abs());
        }
        if max_update < config.tol {
            converged = true;
            break;
        }
    }

    // Final log-likelihood (weighted; constant binomial coefficients of the
    // grouped form are omitted).
    let mut log_likelihood = 0.0;
    for i in 0..n {
        let row = &design[i * p..(i + 1) * p];
        let mut z = 0.0;
        for (x, b) in row.iter().zip(&beta) {
            z += x * b;
        }
        let wi = row_weights.map(|w| w[i]).unwrap_or(1.0);
        let mu = sigmoid(z).clamp(1e-12, 1.0 - 1e-12);
        log_likelihood += wi * (y[i] * mu.ln() + (1.0 - y[i]) * (1.0 - mu).ln());
    }

    let mut names = Vec::with_capacity(p);
    names.push("(intercept)".to_string());
    names.extend(predictors.iter().map(|(n, _)| n.clone()));
    Ok(LogisticFit {
        coefficients: beta,
        names,
        iterations,
        converged,
        log_likelihood,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fit(y: &[f64], preds: &[(String, Vec<f64>)]) -> LogisticFit {
        logistic_fit(y, preds, LogisticConfig::default()).unwrap()
    }

    #[test]
    fn sigmoid_bounds() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(50.0) > 0.999999);
        assert!(sigmoid(-50.0) < 1e-6);
    }

    #[test]
    fn recovers_known_relationship() {
        // y = 1 when x > 0.5 with a smooth boundary
        let x: Vec<f64> = (0..200).map(|i| i as f64 / 200.0).collect();
        let y: Vec<f64> = x.iter().map(|&x| if x > 0.5 { 1.0 } else { 0.0 }).collect();
        let model = fit(&y, &[("x".to_string(), x)]);
        assert!(model.coefficients[1] > 0.0, "slope should be positive");
        assert!(model.predict_proba(&[0.9]) > 0.9);
        assert!(model.predict_proba(&[0.1]) < 0.1);
        assert!(model.predict_proba(&[0.5]) > 0.2 && model.predict_proba(&[0.5]) < 0.8);
    }

    #[test]
    fn intercept_only_matches_base_rate() {
        let y = vec![1.0, 1.0, 1.0, 0.0];
        let model = fit(&y, &[]);
        assert!((model.predict_proba(&[]) - 0.75).abs() < 1e-4);
        assert!(model.converged);
    }

    #[test]
    fn balanced_noise_gives_half() {
        let y: Vec<f64> = (0..100).map(|i| (i % 2) as f64).collect();
        let x: Vec<f64> = (0..100).map(|i| ((i * 7) % 13) as f64).collect();
        let model = fit(&y, &[("x".to_string(), x)]);
        let p = model.predict_proba(&[6.0]);
        assert!(p > 0.3 && p < 0.7);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(
            logistic_fit(&[0.0, 2.0], &[], LogisticConfig::default()),
            Err(FitError::ShapeMismatch(_))
        ));
        assert!(matches!(
            logistic_fit(
                &[0.0],
                &[("x".to_string(), vec![1.0, 2.0])],
                LogisticConfig::default()
            ),
            Err(FitError::TooFewRows { .. })
        ));
        assert!(matches!(
            logistic_fit(
                &[0.0, 1.0, 1.0],
                &[("x".to_string(), vec![1.0, 2.0])],
                LogisticConfig::default()
            ),
            Err(FitError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn separable_data_stays_finite() {
        // Perfectly separable: without ridge/step capping this diverges.
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&x| if x >= 25.0 { 1.0 } else { 0.0 })
            .collect();
        let model = fit(&y, &[("x".to_string(), x)]);
        assert!(model.coefficients.iter().all(|c| c.is_finite()));
        assert!(model.predict_proba(&[49.0]) > 0.9);
        assert!(model.predict_proba(&[0.0]) < 0.1);
    }

    #[test]
    fn grouped_fit_matches_ungrouped() {
        // 300 rows over 3 distinct feature values, collapsed to 3 weighted
        // binomial rows: same optimum.
        let x: Vec<f64> = (0..300).map(|i| (i % 3) as f64).collect();
        let y: Vec<f64> = (0..300)
            .map(|i| {
                if (i % 3) as f64 + ((i / 3) % 4) as f64 > 2.5 {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        let full = fit(&y, &[("x".to_string(), x.clone())]);
        let mut tallies = [(0.0f64, 0.0f64); 3];
        for (xi, yi) in x.iter().zip(&y) {
            tallies[*xi as usize].0 += 1.0;
            tallies[*xi as usize].1 += yi;
        }
        let gx: Vec<f64> = vec![0.0, 1.0, 2.0];
        let gy: Vec<f64> = tallies.iter().map(|(n, k)| k / n).collect();
        let gw: Vec<f64> = tallies.iter().map(|(n, _)| *n).collect();
        let grouped = logistic_fit_weighted(
            &gy,
            &[("x".to_string(), gx)],
            Some(&gw),
            LogisticConfig::default(),
        )
        .unwrap();
        for (a, b) in full.coefficients.iter().zip(&grouped.coefficients) {
            assert!((a - b).abs() < 1e-6, "coefficients diverge: {a} vs {b}");
        }
        assert!((full.log_likelihood - grouped.log_likelihood).abs() < 1e-6);
    }

    #[test]
    fn weighted_rejects_bad_inputs() {
        let y = [0.5, 0.25];
        let preds = [("x".to_string(), vec![0.0, 1.0])];
        assert!(
            logistic_fit_weighted(&y, &preds, Some(&[1.0]), LogisticConfig::default()).is_err()
        );
        assert!(logistic_fit_weighted(
            &y,
            &preds,
            Some(&[1.0, f64::NAN]),
            LogisticConfig::default()
        )
        .is_err());
        assert!(
            logistic_fit_weighted(&[1.5, 0.0], &preds, None, LogisticConfig::default()).is_err()
        );
        // proportions are accepted by the weighted entry point
        assert!(
            logistic_fit_weighted(&y, &preds, Some(&[4.0, 4.0]), LogisticConfig::default()).is_ok()
        );
    }

    #[test]
    fn log_likelihood_improves_over_null() {
        let x: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        let y: Vec<f64> = x.iter().map(|&x| if x > 4.0 { 1.0 } else { 0.0 }).collect();
        let with_x = fit(&y, &[("x".to_string(), x)]);
        let null = fit(&y, &[]);
        assert!(with_x.log_likelihood > null.log_likelihood);
    }
}
