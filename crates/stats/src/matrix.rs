//! Small dense matrices with just the operations the regression models need:
//! multiplication, transpose, and solving linear systems / inversion via
//! Gauss–Jordan elimination with partial pivoting.

use std::fmt;

/// Errors from matrix operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// The operand shapes are incompatible for the operation.
    ShapeMismatch(String),
    /// The matrix is singular (or numerically too close to singular).
    Singular,
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            MatrixError::Singular => write!(f, "matrix is singular"),
        }
    }
}

impl std::error::Error for MatrixError {}

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row-major data.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must be rows*cols");
        Matrix { rows, cols, data }
    }

    /// Builds a column vector.
    pub fn column_vector(data: Vec<f64>) -> Self {
        let rows = data.len();
        Matrix {
            rows,
            cols: 1,
            data,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.cols
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Matrix product `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, MatrixError> {
        if self.cols != other.rows {
            return Err(MatrixError::ShapeMismatch(format!(
                "{}x{} * {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Solves `self * x = rhs` for `x` via Gauss–Jordan elimination with
    /// partial pivoting. `self` must be square.
    pub fn solve(&self, rhs: &Matrix) -> Result<Matrix, MatrixError> {
        if self.rows != self.cols {
            return Err(MatrixError::ShapeMismatch(
                "solve requires a square matrix".into(),
            ));
        }
        if rhs.rows != self.rows {
            return Err(MatrixError::ShapeMismatch(
                "rhs row count must match".into(),
            ));
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut b = rhs.clone();
        for col in 0..n {
            // Partial pivot.
            let mut pivot = col;
            for r in col + 1..n {
                if a[(r, col)].abs() > a[(pivot, col)].abs() {
                    pivot = r;
                }
            }
            if a[(pivot, col)].abs() < 1e-12 {
                return Err(MatrixError::Singular);
            }
            if pivot != col {
                a.swap_rows(pivot, col);
                b.swap_rows(pivot, col);
            }
            let diag = a[(col, col)];
            for j in 0..n {
                a[(col, j)] /= diag;
            }
            for j in 0..b.cols {
                b[(col, j)] /= diag;
            }
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = a[(r, col)];
                if factor == 0.0 {
                    continue;
                }
                for j in 0..n {
                    a[(r, j)] -= factor * a[(col, j)];
                }
                for j in 0..b.cols {
                    b[(r, j)] -= factor * b[(col, j)];
                }
            }
        }
        Ok(b)
    }

    /// The inverse of a square matrix.
    pub fn inverse(&self) -> Result<Matrix, MatrixError> {
        self.solve(&Matrix::identity(self.rows))
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(a * self.cols + j, b * self.cols + j);
        }
    }

    /// Returns the data of a single column as a `Vec`.
    pub fn column(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.n_cols(), 3);
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.column(1), vec![2.0, 5.0]);
        let v = Matrix::column_vector(vec![1.0, 2.0]);
        assert_eq!(v.n_rows(), 2);
        assert_eq!(v.n_cols(), 1);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = m.transpose();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_identity() {
        let m = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i).unwrap(), m);
        let bad = Matrix::zeros(3, 3);
        assert!(m.matmul(&bad).is_err());
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 0.0, 2.0, -1.0, 3.0, 1.0]);
        let b = Matrix::from_rows(3, 2, vec![3.0, 1.0, 2.0, 1.0, 1.0, 0.0]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(2, 2, vec![5.0, 1.0, 4.0, 2.0]));
    }

    #[test]
    fn solve_linear_system() {
        let a = Matrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        let b = Matrix::column_vector(vec![5.0, 10.0]);
        let x = a.solve(&b).unwrap();
        assert!((x[(0, 0)] - 1.0).abs() < 1e-10);
        assert!((x[(1, 0)] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn solve_requires_pivoting() {
        // leading zero forces a row swap
        let a = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let b = Matrix::column_vector(vec![2.0, 3.0]);
        let x = a.solve(&b).unwrap();
        assert!((x[(0, 0)] - 3.0).abs() < 1e-12);
        assert!((x[(1, 0)] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(a.solve(&Matrix::identity(2)), Err(MatrixError::Singular));
    }

    #[test]
    fn inverse_times_self_is_identity() {
        let a = Matrix::from_rows(3, 3, vec![4.0, 7.0, 2.0, 3.0, 6.0, 1.0, 2.0, 5.0, 3.0]);
        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn non_square_solve_errors() {
        let a = Matrix::zeros(2, 3);
        assert!(a.solve(&Matrix::identity(2)).is_err());
        let sq = Matrix::identity(2);
        assert!(sq.solve(&Matrix::zeros(3, 1)).is_err());
    }
}
