//! Ordinary least squares multiple linear regression with coefficient
//! standard errors, t statistics, and p-values.
//!
//! The paper's LR baseline "employs the OLS method to estimate the
//! coefficients of a linear regression describing the relationship between
//! the outcome and the candidate attributes. The explanations are defined as
//! the top-k attributes with the highest coefficients (s.t. the p value is
//! < .05)". This module provides exactly that fit.

use crate::matrix::{Matrix, MatrixError};
use crate::special::student_t_sf;

/// Errors from fitting a regression.
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// Not enough rows for the number of predictors.
    TooFewRows {
        /// Number of observations provided.
        rows: usize,
        /// Number of parameters the design matrix needs.
        params: usize,
    },
    /// The design matrix is rank deficient / singular.
    Singular,
    /// The inputs have inconsistent lengths.
    ShapeMismatch(String),
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::TooFewRows { rows, params } => {
                write!(f, "too few rows ({rows}) for {params} parameters")
            }
            FitError::Singular => write!(f, "design matrix is singular"),
            FitError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
        }
    }
}

impl std::error::Error for FitError {}

impl From<MatrixError> for FitError {
    fn from(e: MatrixError) -> Self {
        match e {
            MatrixError::Singular => FitError::Singular,
            MatrixError::ShapeMismatch(m) => FitError::ShapeMismatch(m),
        }
    }
}

/// A fitted OLS coefficient.
#[derive(Debug, Clone, PartialEq)]
pub struct Coefficient {
    /// Name of the predictor (or `"(intercept)"`).
    pub name: String,
    /// Estimated coefficient.
    pub estimate: f64,
    /// Standard error of the estimate.
    pub std_error: f64,
    /// t statistic (estimate / std error).
    pub t_value: f64,
    /// Two-sided p-value under the t distribution with `n - p` dof.
    pub p_value: f64,
}

/// A fitted OLS model.
#[derive(Debug, Clone, PartialEq)]
pub struct OlsFit {
    /// One entry per predictor, in input order, preceded by the intercept.
    pub coefficients: Vec<Coefficient>,
    /// Coefficient of determination.
    pub r_squared: f64,
    /// Residual degrees of freedom (`n - p`).
    pub dof: usize,
    /// Number of rows used for the fit.
    pub n: usize,
}

impl OlsFit {
    /// The coefficient for a named predictor, if present.
    pub fn coefficient(&self, name: &str) -> Option<&Coefficient> {
        self.coefficients.iter().find(|c| c.name == name)
    }
}

/// Fits `y ~ intercept + X` by ordinary least squares.
///
/// * `predictors` is a list of `(name, values)` columns; all must have the
///   same length as `y`.
/// * Returns an error when the system is singular (e.g. collinear predictors)
///   or when there are not strictly more rows than parameters.
pub fn ols_fit(y: &[f64], predictors: &[(String, Vec<f64>)]) -> Result<OlsFit, FitError> {
    let n = y.len();
    let p = predictors.len() + 1; // + intercept
    for (name, col) in predictors {
        if col.len() != n {
            return Err(FitError::ShapeMismatch(format!(
                "predictor {name} has {} rows, outcome has {n}",
                col.len()
            )));
        }
    }
    if n <= p {
        return Err(FitError::TooFewRows { rows: n, params: p });
    }

    // Design matrix with a leading column of ones.
    let mut design = Matrix::zeros(n, p);
    for i in 0..n {
        design[(i, 0)] = 1.0;
        for (j, (_, col)) in predictors.iter().enumerate() {
            design[(i, j + 1)] = col[i];
        }
    }
    let yv = Matrix::column_vector(y.to_vec());

    let xt = design.transpose();
    let xtx = xt.matmul(&design)?;
    let xty = xt.matmul(&yv)?;
    let xtx_inv = xtx.inverse()?;
    let beta = xtx_inv.matmul(&xty)?;

    // Residuals and sigma^2.
    let fitted = design.matmul(&beta)?;
    let mut rss = 0.0;
    let mean_y = y.iter().sum::<f64>() / n as f64;
    let mut tss = 0.0;
    for i in 0..n {
        let r = y[i] - fitted[(i, 0)];
        rss += r * r;
        tss += (y[i] - mean_y) * (y[i] - mean_y);
    }
    let dof = n - p;
    let sigma2 = rss / dof as f64;
    let r_squared = if tss > 0.0 { 1.0 - rss / tss } else { 0.0 };

    let mut coefficients = Vec::with_capacity(p);
    for j in 0..p {
        let name = if j == 0 {
            "(intercept)".to_string()
        } else {
            predictors[j - 1].0.clone()
        };
        let estimate = beta[(j, 0)];
        let var = (sigma2 * xtx_inv[(j, j)]).max(0.0);
        let std_error = var.sqrt();
        let t_value = if std_error > 0.0 {
            estimate / std_error
        } else {
            0.0
        };
        let p_value = 2.0 * student_t_sf(t_value.abs(), dof as f64);
        coefficients.push(Coefficient {
            name,
            estimate,
            std_error,
            t_value,
            p_value,
        });
    }

    Ok(OlsFit {
        coefficients,
        r_squared,
        dof,
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_linear_fit() {
        // y = 2 + 3x
        let x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|x| 2.0 + 3.0 * x).collect();
        let fit = ols_fit(&y, &[("x".to_string(), x)]).unwrap();
        assert!((fit.coefficient("(intercept)").unwrap().estimate - 2.0).abs() < 1e-8);
        assert!((fit.coefficient("x").unwrap().estimate - 3.0).abs() < 1e-8);
        assert!(fit.r_squared > 0.999999);
        assert_eq!(fit.n, 20);
        assert_eq!(fit.dof, 18);
    }

    #[test]
    fn two_predictors() {
        // y = 1 + 2a - 1.5b with a tiny deterministic wiggle
        let a: Vec<f64> = (0..30).map(|i| (i % 7) as f64).collect();
        let b: Vec<f64> = (0..30).map(|i| ((i * 3) % 5) as f64).collect();
        let y: Vec<f64> = a
            .iter()
            .zip(&b)
            .enumerate()
            .map(|(i, (a, b))| 1.0 + 2.0 * a - 1.5 * b + 0.001 * ((i % 3) as f64 - 1.0))
            .collect();
        let fit = ols_fit(&y, &[("a".to_string(), a), ("b".to_string(), b)]).unwrap();
        assert!((fit.coefficient("a").unwrap().estimate - 2.0).abs() < 0.01);
        assert!((fit.coefficient("b").unwrap().estimate + 1.5).abs() < 0.01);
        // strong relationship => significant
        assert!(fit.coefficient("a").unwrap().p_value < 0.001);
        assert!(fit.coefficient("b").unwrap().p_value < 0.001);
    }

    #[test]
    fn irrelevant_predictor_not_significant() {
        // y depends only on a; b alternates independently of y
        let a: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        let b: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { 0.0 })
            .collect();
        let y: Vec<f64> = a
            .iter()
            .enumerate()
            .map(|(i, a)| 5.0 * a + ((i * 17 % 13) as f64) * 0.3)
            .collect();
        let fit = ols_fit(&y, &[("a".to_string(), a), ("b".to_string(), b)]).unwrap();
        assert!(fit.coefficient("a").unwrap().p_value < 0.001);
        assert!(fit.coefficient("b").unwrap().p_value > 0.05);
    }

    #[test]
    fn collinear_predictors_error() {
        let a: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| 2.0 * x).collect();
        let y: Vec<f64> = a.iter().map(|x| x + 1.0).collect();
        let res = ols_fit(&y, &[("a".to_string(), a), ("b".to_string(), b)]);
        assert_eq!(res, Err(FitError::Singular));
    }

    #[test]
    fn too_few_rows_and_shape_errors() {
        let y = vec![1.0, 2.0];
        let x = vec![1.0, 2.0];
        assert!(matches!(
            ols_fit(&y, &[("x".to_string(), x.clone())]),
            Err(FitError::TooFewRows { .. })
        ));
        let y = vec![1.0, 2.0, 3.0];
        assert!(matches!(
            ols_fit(&y, &[("x".to_string(), vec![1.0])]),
            Err(FitError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn coefficient_lookup() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|x| x * 2.0).collect();
        let fit = ols_fit(&y, &[("x".to_string(), x)]).unwrap();
        assert!(fit.coefficient("x").is_some());
        assert!(fit.coefficient("nope").is_none());
    }
}
