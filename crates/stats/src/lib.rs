//! # stats
//!
//! The small statistics substrate the MESA reproduction needs beyond
//! information theory:
//!
//! * [`Matrix`] — dense matrices with solve/inverse, backing the regressions.
//! * [`ols_fit`] — multiple linear regression with t statistics and p-values
//!   (the paper's LR baseline).
//! * [`logistic_fit`] — logistic regression via IRLS, used to estimate the
//!   selection probabilities behind the Inverse Probability Weighting scheme.
//! * [`pearson`] / [`spearman`] — classical correlation measures.
//!
//! ```
//! use stats::ols_fit;
//! let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
//! let y: Vec<f64> = x.iter().map(|x| 1.0 + 2.0 * x).collect();
//! let fit = ols_fit(&y, &[("x".to_string(), x)]).unwrap();
//! assert!((fit.coefficient("x").unwrap().estimate - 2.0).abs() < 1e-8);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod correlation;
pub mod logistic;
pub mod matrix;
pub mod ols;
pub mod special;

pub use correlation::{mean, pearson, spearman, std_dev, variance};
pub use logistic::{logistic_fit, logistic_fit_weighted, LogisticConfig, LogisticFit};
pub use matrix::{Matrix, MatrixError};
pub use ols::{ols_fit, Coefficient, FitError, OlsFit};
pub use special::{beta_inc, erf, ln_gamma, normal_cdf, student_t_sf};
