//! Special functions for the regression p-values: log-gamma, the regularised
//! incomplete beta function, and the Student-t survival function.

/// Natural log of the gamma function (Lanczos approximation).
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Continued fraction for the incomplete beta function (Numerical Recipes
/// `betacf`).
fn betacf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Regularised incomplete beta function `I_x(a, b)` for `a, b > 0`,
/// `0 <= x <= 1`.
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        (front * betacf(a, b, x) / a).clamp(0.0, 1.0)
    } else {
        (1.0 - front * betacf(b, a, 1.0 - x) / b).clamp(0.0, 1.0)
    }
}

/// Student-t survival function `P(T_dof >= t)` for `t >= 0`.
///
/// For `t < 0` the value is `1 - P(T >= |t|)`.
pub fn student_t_sf(t: f64, dof: f64) -> f64 {
    if dof <= 0.0 {
        return 0.5;
    }
    if t == 0.0 {
        return 0.5;
    }
    let x = dof / (dof + t * t);
    let tail = 0.5 * beta_inc(dof / 2.0, 0.5, x);
    if t > 0.0 {
        tail
    } else {
        1.0 - tail
    }
}

/// Standard normal cumulative distribution function.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function via Abramowitz–Stegun 7.1.26 (|error| < 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known() {
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn beta_inc_bounds_and_symmetry() {
        assert_eq!(beta_inc(2.0, 3.0, 0.0), 0.0);
        assert_eq!(beta_inc(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        for &(a, b, x) in &[(2.0, 3.0, 0.3), (0.5, 0.5, 0.7), (5.0, 1.0, 0.2)] {
            let lhs = beta_inc(a, b, x);
            let rhs = 1.0 - beta_inc(b, a, 1.0 - x);
            assert!(
                (lhs - rhs).abs() < 1e-10,
                "symmetry failed for ({a},{b},{x})"
            );
        }
        // I_x(1,1) = x (uniform)
        assert!((beta_inc(1.0, 1.0, 0.42) - 0.42).abs() < 1e-12);
    }

    #[test]
    fn student_t_known_quantiles() {
        // For dof=10, P(T >= 2.228) ~= 0.025
        assert!((student_t_sf(2.228, 10.0) - 0.025).abs() < 1e-3);
        // For dof=1 (Cauchy), P(T >= 1) = 0.25
        assert!((student_t_sf(1.0, 1.0) - 0.25).abs() < 1e-6);
        // symmetry
        assert!((student_t_sf(-1.5, 7.0) + student_t_sf(1.5, 7.0) - 1.0).abs() < 1e-10);
        assert_eq!(student_t_sf(0.0, 5.0), 0.5);
        // large dof approaches the normal tail
        assert!((student_t_sf(1.96, 100000.0) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn erf_and_normal_cdf() {
        // The Abramowitz–Stegun approximation carries ~1.5e-7 absolute error.
        assert!(erf(0.0).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427).abs() < 1e-3);
        assert!((erf(-1.0) + 0.8427).abs() < 1e-3);
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }
}
