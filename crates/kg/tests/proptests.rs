//! Property tests for the interner and the entity linker.
//!
//! The vendored `proptest` stand-in has no string strategy, so surface forms
//! are generated as codepoint vectors and rendered in the test bodies.

use std::collections::HashSet;

use kg::{normalize, EntityLinker, Interner, KnowledgeGraph, LinkId, LinkOutcome, Object};
use proptest::prelude::*;

/// Renders a codepoint vector as a printable string (codepoints are folded
/// into a range that mixes ASCII, Latin-1 and combining marks).
fn word(codes: &[u32]) -> String {
    codes
        .iter()
        .filter_map(|&c| char::from_u32(0x20 + (c % 0x2e0)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interner_round_trips_and_dedups(
        words in prop::collection::vec(prop::collection::vec(0u32..0x2e0, 0..12), 1..40),
    ) {
        let mut interner = Interner::new();
        let names: Vec<String> = words.iter().map(|w| word(w)).collect();
        let syms: Vec<_> = names.iter().map(|n| interner.intern(n)).collect();
        for (name, &sym) in names.iter().zip(&syms) {
            // round trip: resolve(intern(s)) == s, get(s) == intern(s)
            prop_assert_eq!(interner.resolve(sym), name.as_str());
            prop_assert_eq!(interner.get(name), Some(sym));
            // dedup: re-interning returns the same symbol
            prop_assert_eq!(interner.intern(name), sym);
        }
        let distinct: HashSet<&String> = names.iter().collect();
        prop_assert_eq!(interner.len(), distinct.len());
        // symbols are dense indices in first-intern order
        let mut seen = HashSet::new();
        for &sym in &syms {
            prop_assert!(sym.index() < interner.len());
            seen.insert(sym.index());
        }
        prop_assert_eq!(seen.len(), interner.len());
    }

    #[test]
    fn normalize_is_idempotent_and_canonical(codes in prop::collection::vec(0u32..0x500, 0..30)) {
        let s: String = codes.iter().filter_map(|&c| char::from_u32(c % 0x500)).collect();
        let n = normalize(&s);
        prop_assert_eq!(normalize(&n), n.clone(), "input {s:?}");
        prop_assert!(!n.starts_with(' ') && !n.ends_with(' '));
        prop_assert!(!n.contains("  "));
        // Note: characters without a lowercase mapping (e.g. 'ϒ') pass
        // through `to_lowercase` unchanged, so uppercase can survive — but
        // only alphanumerics and single spaces ever appear.
        prop_assert!(n.chars().all(|c| c == ' ' || c.is_alphanumeric()));
    }

    #[test]
    fn ambiguous_aliases_refuse_to_link(
        a in prop::collection::vec(0u32..0x2e0, 1..10),
        b in prop::collection::vec(0u32..0x2e0, 1..10),
    ) {
        // Two distinct entities sharing one registered alias: the linker
        // must refuse to guess, whatever the names are.
        let e1 = format!("A {}", word(&a));
        let e2 = format!("B {}", word(&b));
        let mut g = KnowledgeGraph::new();
        g.add_fact(e1.clone(), "p", Object::number(1.0));
        g.add_fact(e2.clone(), "p", Object::number(2.0));
        g.add_alias("shared alias", e1.clone());
        g.add_alias("shared alias", e2.clone());
        let linker = g.linker();
        match linker.link("shared alias") {
            LinkOutcome::Ambiguous(cands) => {
                prop_assert_eq!(cands.len(), 2);
                prop_assert!(cands.contains(&e1) && cands.contains(&e2));
            }
            other => prop_assert!(false, "expected ambiguity, got {other:?}"),
        }
        // registering the alias twice for the same entity stays unambiguous
        let mut g2 = KnowledgeGraph::new();
        g2.add_fact(e1.clone(), "p", Object::number(1.0));
        g2.add_alias("al", e1.clone());
        g2.add_alias("al", e1.clone());
        prop_assert_eq!(g2.linker().link("al"), LinkOutcome::Matched(e1.clone()));
    }

    #[test]
    fn empty_surface_forms_never_link(
        punct in prop::collection::vec(0u32..5u32, 0..8),
        name in prop::collection::vec(0u32..0x2e0, 1..10),
    ) {
        // Strings that normalise to "" (punctuation/whitespace only) must
        // come back NotFound unless they exactly match an entity name.
        let surface: String = punct
            .iter()
            .map(|&c| [' ', '.', '-', '!', '\''][c as usize])
            .collect();
        prop_assert_eq!(normalize(&surface), String::new());
        let mut g = KnowledgeGraph::new();
        g.add_fact(format!("E {}", word(&name)), "p", Object::number(1.0));
        prop_assert_eq!(g.linker().link(&surface), LinkOutcome::NotFound);
        prop_assert_eq!(g.linker().link_id(&surface), LinkId::NotFound);
    }

    #[test]
    fn link_and_link_id_agree(
        names in prop::collection::vec(prop::collection::vec(0u32..0x2e0, 1..10), 1..20),
        probe in prop::collection::vec(0u32..0x2e0, 0..10),
    ) {
        let mut g = KnowledgeGraph::new();
        for n in &names {
            g.add_fact(format!("E {}", word(n)), "p", Object::number(1.0));
        }
        let linker: &EntityLinker = g.linker();
        for surface in names
            .iter()
            .map(|n| format!("E {}", word(n)))
            .chain([word(&probe), format!("e {}", word(&probe))])
        {
            let by_name = linker.link(&surface);
            match (by_name, linker.link_id(&surface)) {
                (LinkOutcome::Matched(n), LinkId::Matched(s)) => {
                    prop_assert_eq!(n, linker.name(s));
                }
                (LinkOutcome::Ambiguous(ns), LinkId::Ambiguous(ss)) => {
                    prop_assert_eq!(ns.len(), ss.len());
                }
                (LinkOutcome::NotFound, LinkId::NotFound) => {}
                (a, b) => prop_assert!(false, "outcomes diverge: {a:?} vs {b:?}"),
            }
        }
    }
}
