//! Attribute extraction: turning KG properties of the entities mentioned in a
//! table column into new candidate-confounder columns.
//!
//! Section 3.1 of the paper: map the distinct values of the extraction column
//! (e.g. `Country`) to KG entities via NED, pull all their properties,
//! optionally follow entity-valued links for additional hops, aggregate
//! one-to-many relations with a user-chosen function, and flatten everything
//! into a single *universal relation* keyed by the original table value. Any
//! property that is missing for an entity — or any value that fails to link —
//! becomes a null, which is exactly where the selection-bias machinery of
//! Section 3.2 enters.
//!
//! The pipeline is id-based end to end: values are linked to interned
//! symbols by the graph's cached [`crate::EntityLinker`], the multi-hop expansion
//! runs **once per distinct entity** (rows sharing `"United States"` share
//! one BFS) and fans out over [`parallel::parallel_map`] on the persistent
//! pool — hub entities with large neighbourhoods are absorbed by dynamic
//! claiming, and extraction nested under a session batch or candidate
//! fan-out shares the pool instead of spawning threads — per-entity
//! property scans walk borrowed CSR slices, and results are scattered into
//! dense per-column builders keyed by an attribute-name index instead of a
//! `BTreeMap<String, HashMap<usize, Value>>`.

use std::collections::{HashMap, HashSet};

use parallel::parallel_map;
use tabular::{Column, DataFrame, Result, Value};

use crate::graph::{KnowledgeGraph, StoredObject};
use crate::intern::Sym;
use crate::linking::LinkId;
#[cfg(test)]
use crate::triple::Object;

/// How to collapse a one-to-many property (several objects for one subject
/// and predicate) into a single value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OneToManyAgg {
    /// Mean of numeric objects (nulls when none are numeric).
    Mean,
    /// Maximum of numeric objects.
    Max,
    /// Minimum of numeric objects.
    Min,
    /// Number of objects.
    Count,
    /// First object in insertion order (rendered as a string if an entity).
    First,
}

impl OneToManyAgg {
    #[cfg(test)]
    fn apply(self, objects: &[&Object]) -> Value {
        match self {
            OneToManyAgg::First => objects.first().map(|o| o.to_value()).unwrap_or(Value::Null),
            OneToManyAgg::Count => Value::Int(objects.len() as i64),
            OneToManyAgg::Mean | OneToManyAgg::Max | OneToManyAgg::Min => {
                let nums: Vec<f64> = objects
                    .iter()
                    .filter_map(|o| o.to_value().as_f64())
                    .collect();
                self.fold_numeric(&nums)
            }
        }
    }

    /// The aggregation over a CSR run of stored objects; semantically
    /// identical to `apply` but without materialising [`Object`]s.
    fn apply_stored(self, graph: &KnowledgeGraph, run: &[u32]) -> Value {
        match self {
            OneToManyAgg::First => run
                .first()
                .map(|&t| graph.object_value(graph.triple_object(t)))
                .unwrap_or(Value::Null),
            OneToManyAgg::Count => Value::Int(run.len() as i64),
            OneToManyAgg::Mean | OneToManyAgg::Max | OneToManyAgg::Min => {
                let nums: Vec<f64> = run
                    .iter()
                    .filter_map(|&t| match graph.triple_object(t) {
                        StoredObject::Literal(v) => v.as_f64(),
                        StoredObject::Entity(_) => None,
                    })
                    .collect();
                self.fold_numeric(&nums)
            }
        }
    }

    fn fold_numeric(self, nums: &[f64]) -> Value {
        if nums.is_empty() {
            return Value::Null;
        }
        let v = match self {
            OneToManyAgg::Mean => nums.iter().sum::<f64>() / nums.len() as f64,
            OneToManyAgg::Max => nums.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            OneToManyAgg::Min => nums.iter().cloned().fold(f64::INFINITY, f64::min),
            _ => unreachable!(),
        };
        Value::Float(v)
    }

    fn label(self) -> &'static str {
        match self {
            OneToManyAgg::Mean => "avg",
            OneToManyAgg::Max => "max",
            OneToManyAgg::Min => "min",
            OneToManyAgg::Count => "count",
            OneToManyAgg::First => "first",
        }
    }
}

/// Configuration for the extraction process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExtractionConfig {
    /// Number of hops to follow in the graph (1 = direct properties only).
    pub hops: usize,
    /// Aggregation for one-to-many properties.
    pub one_to_many: OneToManyAgg,
}

impl Default for ExtractionConfig {
    fn default() -> Self {
        ExtractionConfig {
            hops: 1,
            one_to_many: OneToManyAgg::Mean,
        }
    }
}

/// Summary statistics of one extraction run (reported in Table 1 and used by
/// the missing-data experiments).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExtractionStats {
    /// Number of distinct table values submitted for linking.
    pub n_values: usize,
    /// Values that linked to a unique entity.
    pub n_linked: usize,
    /// Values whose linking was ambiguous (not linked).
    pub n_ambiguous: usize,
    /// Values with no matching entity.
    pub n_not_found: usize,
    /// Number of extracted attribute columns (excluding the key column).
    pub n_attributes: usize,
}

/// The output of [`extract_attributes`]: a table with one row per distinct
/// input value, keyed by `key_column`, plus the linking statistics.
#[derive(Debug, Clone)]
pub struct ExtractionResult {
    /// The universal relation of extracted properties.
    pub table: DataFrame,
    /// Name of the key column inside [`ExtractionResult::table`].
    pub key_column: String,
    /// Linking / extraction statistics.
    pub stats: ExtractionStats,
}

impl ExtractionResult {
    /// Names of the extracted attribute columns (everything but the key).
    pub fn attribute_names(&self) -> Vec<String> {
        self.table
            .column_names()
            .into_iter()
            .filter(|n| *n != self.key_column)
            .map(|s| s.to_string())
            .collect()
    }
}

/// The hop-1 fast path: attributes are keyed by `(predicate symbol, plain |
/// aggregated)` — a dense `u32` — so neither the per-entity expansions nor
/// the row scatter ever touch a `String`. Column names are materialised once
/// per distinct attribute when its column builder is created.
fn scatter_one_hop(
    graph: &KnowledgeGraph,
    config: ExtractionConfig,
    distinct: &[Sym],
    row_entity: &[Option<u32>],
    n_rows: usize,
) -> (Vec<String>, Vec<Vec<Value>>) {
    let expansions: Vec<Vec<(u32, Value)>> = parallel_map(distinct, |_, &sym| {
        expand_node(graph, sym, config.one_to_many).attrs
    });

    // Dense key -> column slot table (2 slots per predicate).
    let mut col_lookup = vec![usize::MAX; graph.n_predicates() * 2];
    let mut col_names: Vec<String> = Vec::new();
    let mut col_cells: Vec<Vec<Value>> = Vec::new();
    for (row, slot) in row_entity.iter().enumerate() {
        let Some(slot) = slot else { continue };
        for (key, value) in &expansions[*slot as usize] {
            let mut ci = col_lookup[*key as usize];
            if ci == usize::MAX {
                ci = col_names.len();
                col_lookup[*key as usize] = ci;
                col_names.push(leaf_name(graph, *key, config.one_to_many));
                col_cells.push(vec![Value::Null; n_rows]);
            }
            col_cells[ci][row] = value.clone();
        }
    }
    (col_names, col_cells)
}

/// Renders a packed leaf key — `(predicate symbol << 1) | aggregated-bit` —
/// as an attribute name: the predicate name itself, or
/// `"<agg-label> <predicate>"` for a collapsed one-to-many. The single
/// naming rule shared by the hop-1 scatter and the multi-hop path renderer.
fn leaf_name(graph: &KnowledgeGraph, leaf: u32, agg: OneToManyAgg) -> String {
    let pred_name = graph.predicate_name(Sym::from_index((leaf >> 1) as usize));
    if leaf & 1 == 0 {
        pred_name.to_string()
    } else {
        format!("{} {}", agg.label(), pred_name)
    }
}

/// The symbol-keyed properties of one entity, shared by every BFS node that
/// reaches it: `attrs` carries `(leaf key, value)` pairs where the leaf key
/// packs `(predicate symbol, plain | aggregated)`, and `links` carries the
/// entity-valued hops in traversal order.
struct NodeProps {
    attrs: Vec<(u32, Value)>,
    links: Vec<(Sym, Sym)>,
}

fn expand_node(graph: &KnowledgeGraph, entity: Sym, agg: OneToManyAgg) -> NodeProps {
    parallel::fault_point!("kg.extract.expand");
    let idxs = graph.properties_of(entity);
    let mut attrs = Vec::with_capacity(idxs.len());
    let mut links = Vec::new();
    let mut i = 0;
    while i < idxs.len() {
        let pred = graph.triple_pred(idxs[i]);
        let mut j = i + 1;
        while j < idxs.len() && graph.triple_pred(idxs[j]) == pred {
            j += 1;
        }
        let run = &idxs[i..j];
        if let [single] = run {
            let obj = graph.triple_object(*single);
            attrs.push((pred.id() << 1, graph.object_value(obj)));
            if let StoredObject::Entity(e) = obj {
                links.push((pred, *e));
            }
        } else {
            attrs.push(((pred.id() << 1) | 1, agg.apply_stored(graph, run)));
            if run.iter().all(|&t| graph.triple_object(t).is_entity()) {
                for &t in run {
                    if let StoredObject::Entity(e) = graph.triple_object(t) {
                        links.push((pred, *e));
                    }
                }
            }
        }
        i = j;
    }
    NodeProps { attrs, links }
}

/// The multi-hop path, memoized at the *node* level: every entity reachable
/// within `hops` is expanded exactly once (level-synchronous BFS, each
/// level's new entities fanned out in parallel), then each root's attribute
/// fold walks the memoized nodes. Attribute identities are
/// `(prefix path id, leaf key)` pairs — dotted names are materialised once
/// per distinct attribute, not per entity.
fn scatter_multi_hop(
    graph: &KnowledgeGraph,
    config: ExtractionConfig,
    distinct: &[Sym],
    row_entity: &[Option<u32>],
    n_rows: usize,
) -> (Vec<String>, Vec<Vec<Value>>) {
    let agg = config.one_to_many;

    // 1. Discover + expand: level 0 is the distinct roots; each next level
    //    is the not-yet-expanded link targets of the current one.
    let mut memo: HashMap<Sym, NodeProps> = HashMap::new();
    let mut level: Vec<Sym> = Vec::new();
    let mut seen: HashSet<Sym> = HashSet::new();
    for &root in distinct {
        if seen.insert(root) {
            level.push(root);
        }
    }
    // mesa-lint: hot-loop -- BFS frontier expansion; one cancellation check per level
    for hop in 0..config.hops.max(1) {
        // One cancellation check per BFS level: levels are the coarse unit
        // of extraction work, and the per-entity fan-out below re-checks at
        // every pool batch claim.
        parallel::checkpoint();
        if level.is_empty() {
            break;
        }
        let expanded: Vec<NodeProps> = parallel_map(&level, |_, &sym| expand_node(graph, sym, agg));
        let mut next: Vec<Sym> = Vec::new();
        if hop + 1 < config.hops.max(1) {
            for props in &expanded {
                for &(_, target) in &props.links {
                    if seen.insert(target) {
                        next.push(target);
                    }
                }
            }
        }
        for (sym, props) in level.iter().zip(expanded) {
            memo.insert(*sym, props);
        }
        level = next;
    }

    // 2. Fold per root over the memoized nodes, replicating the BFS of the
    //    string-keyed implementation: frontier entries carry an interned
    //    prefix path instead of a dotted string.
    let mut prefix_table: HashMap<(u32, Sym), u32> = HashMap::new();
    let mut prefix_info: Vec<(u32, Sym)> = vec![(0, Sym::from_index(0))]; // slot 0 = empty prefix
    let mut attr_slots: HashMap<(u32, u32), usize> = HashMap::new();
    let mut col_names: Vec<String> = Vec::new();
    let mut col_cells: Vec<Vec<Value>> = Vec::new();

    // Rows that share a root share its folded expansion.
    let mut root_rows: Vec<Vec<u32>> = vec![Vec::new(); distinct.len()];
    for (row, slot) in row_entity.iter().enumerate() {
        if let Some(slot) = slot {
            root_rows[*slot as usize].push(row as u32);
        }
    }

    let mut folded: Vec<(usize, Value)> = Vec::new();
    let mut fold_index: HashMap<(u32, u32), usize> = HashMap::new();
    for (root_idx, &root) in distinct.iter().enumerate() {
        folded.clear();
        fold_index.clear();
        let mut frontier: Vec<(u32, Sym)> = vec![(0, root)];
        for _hop in 0..config.hops.max(1) {
            let mut next_frontier = Vec::new();
            for &(prefix, ent) in &frontier {
                let Some(props) = memo.get(&ent) else {
                    continue;
                };
                for (leaf, value) in &props.attrs {
                    let attr = (prefix, *leaf);
                    // Numeric aggregation across several linked entities
                    // that share the same attribute (multi-valued hop):
                    // average them; otherwise first-wins.
                    match fold_index.get(&attr) {
                        Some(&slot) => {
                            let existing = &mut folded[slot].1;
                            if let (Some(a), Some(b)) = (existing.as_f64(), value.as_f64()) {
                                *existing = Value::Float((a + b) / 2.0);
                            }
                        }
                        None => {
                            let col = *attr_slots.entry(attr).or_insert_with(|| {
                                col_names.push(attr_name(graph, &prefix_info, attr, agg));
                                col_cells.push(vec![Value::Null; n_rows]);
                                col_names.len() - 1
                            });
                            fold_index.insert(attr, folded.len());
                            folded.push((col, value.clone()));
                        }
                    }
                }
                for &(pred, target) in &props.links {
                    let next_prefix = *prefix_table.entry((prefix, pred)).or_insert_with(|| {
                        prefix_info.push((prefix, pred));
                        (prefix_info.len() - 1) as u32
                    });
                    next_frontier.push((next_prefix, target));
                }
            }
            frontier = next_frontier;
            if frontier.is_empty() {
                break;
            }
        }
        // 3. Scatter the shared fold into every row linked to this root.
        for &row in &root_rows[root_idx] {
            for (col, value) in &folded {
                col_cells[*col][row as usize] = value.clone();
            }
        }
    }
    (col_names, col_cells)
}

/// Materialises the dotted name of a `(prefix path, leaf key)` attribute.
fn attr_name(
    graph: &KnowledgeGraph,
    prefix_info: &[(u32, Sym)],
    (prefix, leaf): (u32, u32),
    agg: OneToManyAgg,
) -> String {
    let mut segments: Vec<&str> = Vec::new();
    let mut cursor = prefix;
    while cursor != 0 {
        let (parent, pred) = prefix_info[cursor as usize];
        segments.push(graph.predicate_name(pred));
        cursor = parent;
    }
    segments.reverse();
    let leaf_name = leaf_name(graph, leaf, agg);
    segments.push(&leaf_name);
    segments.join(".")
}

/// Extracts KG attributes for the given distinct table values.
///
/// The returned table has one row per input value (in input order), a key
/// column named `key_column` holding the original value, and one column per
/// extracted property (sorted by name). Unlinked values have nulls
/// everywhere.
pub fn extract_attributes(
    graph: &KnowledgeGraph,
    values: &[String],
    key_column: &str,
    config: ExtractionConfig,
) -> Result<ExtractionResult> {
    graph.finalize();
    let linker = graph.linker();
    let mut stats = ExtractionStats {
        n_values: values.len(),
        ..Default::default()
    };

    // 1. Link every value; map rows to a dense index over distinct entities
    //    (first-appearance order) so the expansion below is memoized per
    //    entity, not per row.
    let mut dense: HashMap<Sym, u32> = HashMap::new();
    let mut distinct: Vec<Sym> = Vec::new();
    let mut row_entity: Vec<Option<u32>> = Vec::with_capacity(values.len());
    for value in values {
        match linker.link_id(value) {
            LinkId::Matched(sym) => {
                stats.n_linked += 1;
                let slot = *dense.entry(sym).or_insert_with(|| {
                    distinct.push(sym);
                    (distinct.len() - 1) as u32
                });
                row_entity.push(Some(slot));
            }
            LinkId::Ambiguous(_) => {
                stats.n_ambiguous += 1;
                row_entity.push(None);
            }
            LinkId::NotFound => {
                stats.n_not_found += 1;
                row_entity.push(None);
            }
        }
    }

    // 2.+3. One expansion per distinct entity (fanned out over scoped
    //    threads; degenerates to the serial loop for small inputs),
    //    scattered into dense per-column builders. The single-hop default
    //    stays symbol-keyed end to end; multi-hop composes dotted prefixes.
    let (mut col_names, mut col_cells) = if config.hops.max(1) == 1 {
        scatter_one_hop(graph, config, &distinct, &row_entity, values.len())
    } else {
        scatter_multi_hop(graph, config, &distinct, &row_entity, values.len())
    };

    // 4. Merge duplicate column names. Distinct attribute keys can render to
    //    the same name when a predicate is literally named like an
    //    aggregate (a plain `"avg X"` next to a one-to-many `"X"`); fold
    //    such collisions into one column with the cross-entity fold rule:
    //    first-wins per cell, averaging when both are numeric. This is a
    //    deliberate divergence from the string-keyed implementation, which
    //    mixed two accidental behaviours (silent last-wins overwrite when
    //    the collision happened within one BFS node, averaging across
    //    nodes); the datasets never trigger it, so the golden fixtures are
    //    unaffected.
    {
        let mut first_by_name: HashMap<String, usize> = HashMap::new();
        let mut keep: Vec<bool> = vec![true; col_names.len()];
        for i in 0..col_names.len() {
            match first_by_name.get(&col_names[i]) {
                None => {
                    first_by_name.insert(col_names[i].clone(), i);
                }
                Some(&j) => {
                    keep[i] = false;
                    let donor = std::mem::take(&mut col_cells[i]);
                    for (row, v) in donor.into_iter().enumerate() {
                        if matches!(v, Value::Null) {
                            continue;
                        }
                        let existing = &mut col_cells[j][row];
                        if matches!(existing, Value::Null) {
                            *existing = v;
                        } else if let (Some(a), Some(b)) = (existing.as_f64(), v.as_f64()) {
                            *existing = Value::Float((a + b) / 2.0);
                        }
                    }
                }
            }
        }
        if keep.iter().any(|k| !k) {
            let mut k = keep.iter();
            col_names.retain(|_| *k.next().unwrap());
            let mut k = keep.iter();
            col_cells.retain(|_| *k.next().unwrap());
        }
    }

    // 5. Assemble the universal relation: key column first, then the
    //    attribute columns sorted by name.
    let mut order: Vec<usize> = (0..col_names.len()).collect();
    order.sort_unstable_by(|&a, &b| col_names[a].cmp(&col_names[b]));
    let mut columns: Vec<Column> = Vec::with_capacity(col_names.len() + 1);
    columns.push(Column::from_str_values(
        key_column,
        values.iter().map(|v| Some(v.as_str())).collect(),
    ));
    for &i in &order {
        columns.push(Column::from_values(
            col_names[i].clone(),
            std::mem::take(&mut col_cells[i]),
        ));
    }
    stats.n_attributes = col_names.len();
    let table = DataFrame::from_columns(columns)?;
    Ok(ExtractionResult {
        table,
        key_column: key_column.to_string(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> KnowledgeGraph {
        let mut g = KnowledgeGraph::new();
        for (country, hdi, gdp) in [
            ("Germany", 0.95, 4.2),
            ("Italy", 0.89, 2.1),
            ("United States", 0.92, 23.0),
        ] {
            g.add_fact(country, "HDI", Object::number(hdi));
            g.add_fact(country, "GDP", Object::number(gdp));
        }
        g.add_fact("Germany", "leader", Object::entity("Olaf Scholz"));
        g.add_fact("Olaf Scholz", "age", Object::integer(65));
        g.add_fact("United States", "ethnic group", Object::entity("Group A"));
        g.add_fact("United States", "ethnic group", Object::entity("Group B"));
        g.add_fact("Group A", "population", Object::number(100.0));
        g.add_fact("Group B", "population", Object::number(300.0));
        g.add_alias("USA", "United States");
        g
    }

    fn values(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn one_hop_extraction() {
        let res = extract_attributes(
            &graph(),
            &values(&["Germany", "Italy", "USA", "Atlantis"]),
            "Country",
            ExtractionConfig::default(),
        )
        .unwrap();
        assert_eq!(res.table.n_rows(), 4);
        assert_eq!(res.stats.n_linked, 3);
        assert_eq!(res.stats.n_not_found, 1);
        assert!(res.table.has_column("HDI"));
        assert!(res.table.has_column("GDP"));
        assert_eq!(res.table.get(0, "HDI").unwrap(), Value::Float(0.95));
        assert_eq!(res.table.get(2, "GDP").unwrap(), Value::Float(23.0));
        // unlinked value has nulls
        assert_eq!(res.table.get(3, "HDI").unwrap(), Value::Null);
        // key column preserved
        assert_eq!(
            res.table.get(2, "Country").unwrap(),
            Value::Str("USA".into())
        );
        assert!(res.attribute_names().contains(&"HDI".to_string()));
        assert!(!res.attribute_names().contains(&"Country".to_string()));
    }

    #[test]
    fn two_hop_extraction_follows_links() {
        let cfg = ExtractionConfig {
            hops: 2,
            ..Default::default()
        };
        let res = extract_attributes(&graph(), &values(&["Germany"]), "Country", cfg).unwrap();
        // leader age reachable at hop 2
        assert!(
            res.table.has_column("leader.age"),
            "columns: {:?}",
            res.table.column_names()
        );
        assert_eq!(res.table.get(0, "leader.age").unwrap(), Value::Int(65));
        // hop-1 entity link also materialised as a categorical value
        assert_eq!(
            res.table.get(0, "leader").unwrap(),
            Value::Str("Olaf Scholz".into())
        );
    }

    #[test]
    fn one_to_many_aggregation() {
        let cfg = ExtractionConfig {
            hops: 2,
            one_to_many: OneToManyAgg::Mean,
        };
        let res =
            extract_attributes(&graph(), &values(&["United States"]), "Country", cfg).unwrap();
        // two ethnic groups, populations 100 and 300 averaged at hop 2
        assert!(res.table.has_column("ethnic group.population"));
        assert_eq!(
            res.table.get(0, "ethnic group.population").unwrap(),
            Value::Float(200.0)
        );
    }

    #[test]
    fn one_to_many_agg_variants() {
        let objs = [Object::number(1.0), Object::number(3.0)];
        let refs: Vec<&Object> = objs.iter().collect();
        assert_eq!(OneToManyAgg::Mean.apply(&refs), Value::Float(2.0));
        assert_eq!(OneToManyAgg::Max.apply(&refs), Value::Float(3.0));
        assert_eq!(OneToManyAgg::Min.apply(&refs), Value::Float(1.0));
        assert_eq!(OneToManyAgg::Count.apply(&refs), Value::Int(2));
        assert_eq!(OneToManyAgg::First.apply(&refs), Value::Float(1.0));
        let ents = [Object::entity("A"), Object::entity("B")];
        let erefs: Vec<&Object> = ents.iter().collect();
        assert_eq!(OneToManyAgg::Mean.apply(&erefs), Value::Null);
        assert_eq!(OneToManyAgg::Count.apply(&erefs), Value::Int(2));
        assert_eq!(OneToManyAgg::First.apply(&erefs), Value::Str("A".into()));
        assert_eq!(OneToManyAgg::First.apply(&[]), Value::Null);
    }

    #[test]
    fn agg_stored_matches_object_variant() {
        let g = graph();
        let us = g.entity_id("United States").unwrap();
        let idxs = g.properties_of(us);
        // the "ethnic group" run: two entity-valued objects
        let run: Vec<u32> = idxs
            .iter()
            .copied()
            .filter(|&t| g.predicate_name(g.triple_pred(t)) == "ethnic group")
            .collect();
        assert_eq!(run.len(), 2);
        assert_eq!(OneToManyAgg::Mean.apply_stored(&g, &run), Value::Null);
        assert_eq!(OneToManyAgg::Count.apply_stored(&g, &run), Value::Int(2));
        assert_eq!(
            OneToManyAgg::First.apply_stored(&g, &run),
            Value::Str("Group A".into())
        );
    }

    #[test]
    fn memoized_rows_share_expansion() {
        // "USA" (alias) and "United States" (exact) link to the same entity:
        // the expansion runs once and both rows carry identical values.
        let res = extract_attributes(
            &graph(),
            &values(&["United States", "USA", "United States"]),
            "Country",
            ExtractionConfig {
                hops: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(res.stats.n_linked, 3);
        for col in res.attribute_names() {
            let v0 = res.table.get(0, &col).unwrap();
            assert_eq!(v0, res.table.get(1, &col).unwrap(), "column {col}");
            assert_eq!(v0, res.table.get(2, &col).unwrap(), "column {col}");
        }
    }

    #[test]
    fn colliding_attribute_names_fold_into_one_column() {
        // A predicate literally named "avg score" collides with the
        // aggregated rendering of the one-to-many "score": both columns are
        // called "avg score" and fold into one by numeric averaging. (The
        // string-keyed implementation silently overwrote the earlier value
        // instead — an accident of BTreeMap::insert — so this locks in the
        // new, deliberate rule, not seed parity.)
        let mut g = KnowledgeGraph::new();
        g.add_fact("X", "score", Object::number(1.0));
        g.add_fact("X", "score", Object::number(3.0)); // -> "avg score" = 2.0
        g.add_fact("X", "avg score", Object::number(4.0));
        let res =
            extract_attributes(&g, &values(&["X"]), "Key", ExtractionConfig::default()).unwrap();
        assert_eq!(res.stats.n_attributes, 1);
        let folded = res.table.get(0, "avg score").unwrap();
        assert_eq!(folded, Value::Float(3.0)); // avg(2.0, 4.0)
    }

    #[test]
    fn stats_count_outcomes() {
        let mut g = graph();
        g.add_fact("Ronaldo L", "cups", Object::integer(3));
        g.add_fact("Ronaldo C", "cups", Object::integer(5));
        g.add_alias("Ronaldo", "Ronaldo L");
        g.add_alias("Ronaldo", "Ronaldo C");
        let res = extract_attributes(
            &g,
            &values(&["Germany", "Ronaldo", "Nowhere"]),
            "Name",
            ExtractionConfig::default(),
        )
        .unwrap();
        assert_eq!(res.stats.n_values, 3);
        assert_eq!(res.stats.n_linked, 1);
        assert_eq!(res.stats.n_ambiguous, 1);
        assert_eq!(res.stats.n_not_found, 1);
        assert!(res.stats.n_attributes >= 2);
    }

    #[test]
    fn empty_inputs() {
        let res =
            extract_attributes(&graph(), &[], "Country", ExtractionConfig::default()).unwrap();
        assert_eq!(res.table.n_rows(), 0);
        assert_eq!(res.stats.n_values, 0);
        let empty_graph = KnowledgeGraph::new();
        let res = extract_attributes(
            &empty_graph,
            &values(&["Germany"]),
            "Country",
            ExtractionConfig::default(),
        )
        .unwrap();
        assert_eq!(res.stats.n_not_found, 1);
        assert_eq!(res.stats.n_attributes, 0);
    }
}
